// Seeded multi-commit history synthesizer for the incremental engine's
// differential battery and the per-commit replay bench.
//
// A history is a set of "modules" — independently generated Mini-C programs
// (testgen.h) with per-module identifier/path prefixes so they always
// combine into one project — plus one `glue.c` whose functions call a
// stable `modN_entry` export of every live module. Commits then apply the
// edit shapes a real repository produces, which are exactly the cases the
// incremental engine has to survive:
//
//   * rewrite   — a module's whole body changes (new generator version);
//                 its entry body changes too, so glue callers are
//                 callee-affected;
//   * touch     — whitespace-only append (content hash changes, semantics
//                 do not);
//   * add       — a new module appears and glue grows a caller (file add);
//   * remove    — a module and its glue caller disappear (file delete);
//   * rename    — the module's file moves, content byte-identical
//                 (delete + write at the new path);
//   * signature — `modN_entry` flips between 1- and 2-parameter forms and
//                 glue is rewritten to match (cross-file signature change).
//
// Determinism contract: the same HistoryGenOptions yields a byte-identical
// Repository on every platform (vc::Rng only, no unordered iteration).
// Authors rotate and timestamps strictly increase so authorship, blame, and
// familiarity ranking all see realistic inputs.

#ifndef VALUECHECK_SRC_TESTING_HISTORY_GEN_H_
#define VALUECHECK_SRC_TESTING_HISTORY_GEN_H_

#include <cstdint>

#include "src/testing/testgen.h"
#include "src/vcs/repository.h"

namespace vc {
namespace testing {

struct HistoryGenOptions {
  uint64_t seed = 1;
  int commits = 50;          // total commits, including the initial one
  int initial_modules = 4;   // modules created by commit 0
  int max_modules = 64;      // adds stop here; removes stop at 1 live module
  int authors = 4;           // rotating author pool ("dev0".."devN")
  // Shape of each module's generated body (min/max_files forced to 1).
  GenOptions per_module;
};

// Synthesizes the full history into a fresh Repository. The result has
// exactly `options.commits` commits (commit 0 creates the initial modules
// and glue.c).
Repository GenerateHistory(const HistoryGenOptions& options);

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_HISTORY_GEN_H_

// Metamorphic mutation engine: semantics-preserving source transforms whose
// finding *fingerprint set* the analyzer must hold invariant.
//
// The transforms operate on rendered source text (TestProgram), not on the
// generator's internal state, so the same engine mutates both fuzzer-generated
// programs and real checked-in corpus files (fingerprint_metamorphic_test).
// Structure is recovered by a line-oriented scanner that understands the
// project's Mini-C style: top-level function definitions open with a
// column-zero `name(...) {` line and close with a column-zero `}`.
//
//   kPadding          — blank lines / comment lines inserted between
//                       statements (never inside block comments, never
//                       containing "unused", which is a prune keyword)
//   kReorderFunctions — top-level function definitions shuffled within each
//                       file (leading comments travel with their function)
//   kAlphaRename      — locals and parameters renamed, except slots named in
//                       the baseline findings (a finding's identity includes
//                       its slot name, so those must keep theirs)
//   kDeadCodePad      — self-contained clean functions appended (every
//                       definition used; no calls, so peer-definition prune
//                       statistics cannot shift)
//   kShuffleFiles     — file order permuted (findings merge deterministically
//                       in file order; the fingerprint set must not care)
//
// Every transform is deterministic for a given (program, seed).

#ifndef VALUECHECK_SRC_TESTING_MUTATOR_H_
#define VALUECHECK_SRC_TESTING_MUTATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/testing/testgen.h"

namespace vc {
namespace testing {

enum class Transform {
  kPadding,
  kReorderFunctions,
  kAlphaRename,
  kDeadCodePad,
  kShuffleFiles,
};

const char* TransformName(Transform transform);
std::vector<Transform> AllTransforms();

// Slots the rename transform must leave alone: (function, base slot name)
// pairs of every baseline candidate — renaming one of those would change the
// finding's identity, which is an expected fingerprint difference, not a bug.
struct ProtectedSlots {
  std::set<std::pair<std::string, std::string>> pairs;

  // Protects findings and raw candidates (a pruned candidate could otherwise
  // be renamed into or out of a prune pattern's keyword scan).
  static ProtectedSlots FromReport(const AnalysisReport& report);

  bool Contains(const std::string& function, const std::string& name) const {
    return pairs.count({function, name}) > 0;
  }
};

TestProgram ApplyTransform(const TestProgram& program, Transform transform, uint64_t seed,
                           const ProtectedSlots& protected_slots);

// Loads on-disk sources (path, content) into the mutator's program form —
// how the corpus metamorphic tests feed real files through the engine.
TestProgram ProgramFromSources(
    const std::vector<std::pair<std::string, std::string>>& sources);

}  // namespace testing
}  // namespace vc

#endif  // VALUECHECK_SRC_TESTING_MUTATOR_H_

#include "src/testing/minimizer.h"

#include <algorithm>

namespace vc {
namespace testing {

namespace {

class Reducer {
 public:
  Reducer(const ProgramPredicate& predicate, int max_runs)
      : predicate_(predicate), max_runs_(max_runs) {}

  int runs() const { return runs_; }
  bool Exhausted() const { return runs_ >= max_runs_; }

  bool Fails(const TestProgram& candidate) {
    if (Exhausted()) {
      return false;
    }
    ++runs_;
    return predicate_(candidate);
  }

 private:
  const ProgramPredicate& predicate_;
  int max_runs_;
  int runs_ = 0;
};

// Try removing each file (largest first) as long as at least one remains.
bool ReduceFiles(TestProgram& program, Reducer& reducer) {
  bool progress = false;
  for (size_t i = 0; i < program.files.size() && program.files.size() > 1;) {
    TestProgram candidate = program;
    candidate.files.erase(candidate.files.begin() + static_cast<long>(i));
    if (reducer.Fails(candidate)) {
      program = std::move(candidate);
      progress = true;
    } else {
      ++i;
    }
    if (reducer.Exhausted()) {
      break;
    }
  }
  return progress;
}

// ddmin over one file's lines: chunk sizes halving from n/2 to 1.
bool ReduceLines(TestProgram& program, size_t file_index, Reducer& reducer) {
  bool progress = false;
  size_t chunk = std::max<size_t>(1, program.files[file_index].lines.size() / 2);
  while (chunk >= 1) {
    size_t offset = 0;
    while (offset < program.files[file_index].lines.size()) {
      const std::vector<std::string>& lines = program.files[file_index].lines;
      size_t len = std::min(chunk, lines.size() - offset);
      TestProgram candidate = program;
      std::vector<std::string>& cand_lines = candidate.files[file_index].lines;
      cand_lines.erase(cand_lines.begin() + static_cast<long>(offset),
                       cand_lines.begin() + static_cast<long>(offset + len));
      if (!cand_lines.empty() && reducer.Fails(candidate)) {
        program = std::move(candidate);
        progress = true;
        // Same offset now holds the next chunk; retry there.
      } else {
        offset += len;
      }
      if (reducer.Exhausted()) {
        return progress;
      }
    }
    if (chunk == 1) {
      break;
    }
    chunk /= 2;
  }
  return progress;
}

}  // namespace

TestProgram MinimizeProgram(const TestProgram& failing, const ProgramPredicate& still_fails,
                            MinimizeStats* stats, int max_predicate_runs) {
  TestProgram best = failing;
  Reducer reducer(still_fails, max_predicate_runs);

  bool progress = true;
  while (progress && !reducer.Exhausted()) {
    progress = false;
    progress |= ReduceFiles(best, reducer);
    for (size_t f = 0; f < best.files.size() && !reducer.Exhausted(); ++f) {
      progress |= ReduceLines(best, f, reducer);
    }
  }

  // Drop files reduced to nothing but blank lines.
  if (best.files.size() > 1) {
    for (size_t i = 0; i < best.files.size() && best.files.size() > 1;) {
      bool empty = true;
      for (const std::string& line : best.files[i].lines) {
        if (!line.empty() && line.find_first_not_of(" \t") != std::string::npos) {
          empty = false;
          break;
        }
      }
      if (empty) {
        TestProgram candidate = best;
        candidate.files.erase(candidate.files.begin() + static_cast<long>(i));
        if (reducer.Fails(candidate)) {
          best = std::move(candidate);
          continue;
        }
      }
      ++i;
    }
  }

  if (stats != nullptr) {
    stats->predicate_runs = reducer.runs();
    stats->initial_lines = failing.TotalLines();
    stats->final_lines = best.TotalLines();
  }
  return best;
}

}  // namespace testing
}  // namespace vc

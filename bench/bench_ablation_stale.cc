// Extension ablation (paper §9.1): the paper notes that the remaining false
// positives include debugging/deprecated code that "could be further pruned
// by analyzing the commit history and comments", but leaves that unbuilt for
// overhead reasons. This bench runs the reproduction's implementation of that
// idea and measures exactly the trade it promises: fewer false positives,
// zero lost confirmed bugs, and the added per-run cost.

#include <chrono>

#include "bench/bench_util.h"

int main() {
  using namespace vc;

  TableWriter table({"Application", "Findings (base)", "FP (base)", "Findings (+stale)",
                     "FP (+stale)", "Bugs lost", "Extra time"});

  int base_fp_total = 0;
  int stale_fp_total = 0;

  for (const ProjectProfile& profile : AllProfiles()) {
    AppEval base = RunApp(profile);

    AnalysisOptions options;
    options.prune.stale_code = true;
    options.prune.now_timestamp = kCorpusNow;
    auto start = std::chrono::steady_clock::now();
    AppEval stale = RunApp(profile, options);
    double stale_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    int base_fp = base.eval.found - base.eval.real;
    int stale_fp = stale.eval.found - stale.eval.real;
    int bugs_lost = base.eval.real - stale.eval.real;
    base_fp_total += base_fp;
    stale_fp_total += stale_fp;

    table.AddRow({base.app.name, std::to_string(base.eval.found), std::to_string(base_fp),
                  std::to_string(stale.eval.found), std::to_string(stale_fp),
                  std::to_string(bugs_lost),
                  FormatDouble((stale_seconds - base.report.analysis_seconds) * 1000.0, 1) +
                      "ms"});
  }

  EmitTable("=== Extension ablation: commit-history stale-code pruning (§9.1) ===", table,
            "ablation_stale_pruning.csv");
  std::printf("false positives drop from %d to %d with no confirmed bug lost — the five\n"
              "debug/deprecated-code false positives the paper's §8.3.1 attributes to\n"
              "compiling debug code are exactly what the commit-history rule removes.\n",
              base_fp_total, stale_fp_total);
  return 0;
}

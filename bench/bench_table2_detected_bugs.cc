// Reproduces Table 2 (bugs newly detected per application) and Table 3's
// bug-kind breakdown (missing-check vs semantic) from the paper's §8.2.
//
// Paper reference:          detected / confirmed
//   Linux        63 / 44    NFS-ganesha  22 / 18
//   MySQL        99 / 74    OpenSSL      26 / 18
//   Total       210 / 154   (134 missing-check, 20 semantic)

#include "bench/bench_util.h"

int main() {
  using namespace vc;

  TableWriter table2({"Application", "#Detected Bugs", "#Confirmed Bugs"});
  TableWriter table3({"Application", "Missing Check", "Semantic"});
  int total_detected = 0;
  int total_confirmed = 0;
  int total_missing = 0;
  int total_semantic = 0;

  for (AppEval& run : RunAllApps()) {
    int detected = static_cast<int>(run.report.findings.size());
    int confirmed = run.eval.real;
    total_detected += detected;
    total_confirmed += confirmed;
    table2.AddRow({run.app.name, std::to_string(detected), std::to_string(confirmed)});

    int missing = 0;
    int semantic = 0;
    for (const UnusedDefCandidate& finding : run.report.findings) {
      const GtSite* site = run.app.truth.Match(finding.file, finding.def_loc.line);
      if (site == nullptr || !site->is_real_bug) {
        continue;
      }
      (site->missing_check ? missing : semantic) += 1;
    }
    total_missing += missing;
    total_semantic += semantic;
    table3.AddRow({run.app.name, std::to_string(missing), std::to_string(semantic)});
  }
  table2.AddRow({"Total", std::to_string(total_detected), std::to_string(total_confirmed)});
  table3.AddRow({"Total", std::to_string(total_missing), std::to_string(total_semantic)});

  EmitTable("=== Table 2: bugs newly detected by ValueCheck ===", table2,
            "table_2_detected_bugs.csv");
  std::printf("paper: Linux 63/44, NFS-ganesha 22/18, MySQL 99/74, OpenSSL 26/18, "
              "total 210/154\n\n");

  EmitTable("=== Table 3: confirmed bugs by kind ===", table3, "table_3_bug_kinds.csv");
  std::printf("paper: 134 missing-check, 20 semantic of 154 confirmed\n");
  return 0;
}

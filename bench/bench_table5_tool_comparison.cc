// Reproduces Table 5: unused-definition bugs detected by Clang, fb-infer,
// Smatch, Coverity Scan, and ValueCheck on all four applications.
//
// Paper reference (found/real/FP%):
//   Clang            0 everywhere
//   Infer-unused     -* on Linux; 8/2/75%, 45/9/80%, 13/3/77%  (total 66/14/79%)
//   Smatch-unused    147/28/81% on Linux; -* elsewhere
//   Coverity-unused  157/56/64%, 3/3/0%, 4/1/75%, 6/4/33%      (total 170/64/62%)
//   ValueCheck       63/44/30%, 22/18/18%, 99/74/25%, 26/18/31% (210/154/26%)

#include "bench/bench_util.h"

int main() {
  using namespace vc;

  // (display name, registered checker) pairs, in the paper's row order.
  const std::vector<std::pair<std::string, std::string>> tools = {
      {"Clang", "baseline-clang"},
      {"Infer-unused", "baseline-infer"},
      {"Smatch-unused", "baseline-smatch"},
      {"Coverity-unused", "baseline-coverity"},
  };

  std::vector<AppEval> runs = RunAllApps();

  // One framework run per app with all four baseline checkers; each tool's
  // column is its slice of that report. Baselines are scored on their raw
  // envelope: no cross-scope filter, no ranking.
  std::vector<AnalysisReport> baseline_reports;
  for (AppEval& run : runs) {
    AnalysisOptions options;
    for (const auto& tool : tools) {
      options.checkers.push_back(tool.second);
    }
    options.traits = run.app.traits;
    options.cross_scope_only = false;
    options.ranking.enabled = false;
    baseline_reports.push_back(Analysis(options).Run(run.project));
  }

  TableWriter table({"Tool", "Linux", "NFS-g", "MySQL", "OpenSSL", "Total"});
  auto cell = [](const ToolEval& eval) -> std::string {
    if (!eval.ok) {
      return "-*";
    }
    if (eval.found == 0) {
      return "0";
    }
    return std::to_string(eval.found) + "/" + std::to_string(eval.real) + "/" +
           FormatPercent(eval.FpRate());
  };

  for (const auto& tool : tools) {
    std::vector<std::string> row = {tool.first};
    int found = 0;
    int real = 0;
    bool any = false;
    for (size_t i = 0; i < runs.size(); ++i) {
      ToolEval eval =
          EvaluateChecker(runs[i].app.truth, tool.first, baseline_reports[i], tool.second);
      row.push_back(cell(eval));
      if (eval.ok) {
        found += eval.found;
        real += eval.real;
        any = true;
      }
    }
    ToolEval total;
    total.ok = any;
    total.found = found;
    total.real = real;
    row.push_back(cell(total));
    table.AddRow(row);
  }

  {
    std::vector<std::string> row = {"ValueCheck"};
    int found = 0;
    int real = 0;
    for (AppEval& run : runs) {
      row.push_back(cell(run.eval));
      found += run.eval.found;
      real += run.eval.real;
    }
    ToolEval total;
    total.found = found;
    total.real = real;
    row.push_back(cell(total));
    table.AddRow(row);
  }

  EmitTable("=== Table 5: tool comparison (found/real/FP%; -* = analysis error) ===", table,
            "table_5_tool_comparison.csv");
  std::printf("paper:  Clang 0; Infer -*,8/2/75%%,45/9/80%%,13/3/77%%; Smatch 147/28/81%% "
              "(Linux only);\n        Coverity 157/56/64%%,3/3/0%%,4/1/75%%,6/4/33%%; "
              "ValueCheck 210/154/26%% total\n");
  return 0;
}

// Reproduces Table 5: unused-definition bugs detected by Clang, fb-infer,
// Smatch, Coverity Scan, and ValueCheck on all four applications.
//
// Paper reference (found/real/FP%):
//   Clang            0 everywhere
//   Infer-unused     -* on Linux; 8/2/75%, 45/9/80%, 13/3/77%  (total 66/14/79%)
//   Smatch-unused    147/28/81% on Linux; -* elsewhere
//   Coverity-unused  157/56/64%, 3/3/0%, 4/1/75%, 6/4/33%      (total 170/64/62%)
//   ValueCheck       63/44/30%, 22/18/18%, 99/74/25%, 26/18/31% (210/154/26%)

#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/clang_unused.h"
#include "src/baselines/coverity_unused.h"
#include "src/baselines/infer_unused.h"
#include "src/baselines/smatch_unused.h"

int main() {
  using namespace vc;

  std::vector<std::unique_ptr<BugFinder>> tools;
  tools.push_back(std::make_unique<ClangUnused>());
  tools.push_back(std::make_unique<InferUnused>());
  tools.push_back(std::make_unique<SmatchUnused>());
  tools.push_back(std::make_unique<CoverityUnused>());

  std::vector<AppEval> runs = RunAllApps();

  TableWriter table({"Tool", "Linux", "NFS-g", "MySQL", "OpenSSL", "Total"});
  auto cell = [](const ToolEval& eval) -> std::string {
    if (!eval.ok) {
      return "-*";
    }
    if (eval.found == 0) {
      return "0";
    }
    return std::to_string(eval.found) + "/" + std::to_string(eval.real) + "/" +
           FormatPercent(eval.FpRate());
  };

  for (const auto& tool : tools) {
    std::vector<std::string> row = {tool->Name()};
    int found = 0;
    int real = 0;
    bool any = false;
    for (AppEval& run : runs) {
      BaselineResult result = tool->Find(run.project, run.app.traits);
      ToolEval eval = EvaluateBaseline(run.app.truth, tool->Name(), result);
      row.push_back(cell(eval));
      if (eval.ok) {
        found += eval.found;
        real += eval.real;
        any = true;
      }
    }
    ToolEval total;
    total.ok = any;
    total.found = found;
    total.real = real;
    row.push_back(cell(total));
    table.AddRow(row);
  }

  {
    std::vector<std::string> row = {"ValueCheck"};
    int found = 0;
    int real = 0;
    for (AppEval& run : runs) {
      row.push_back(cell(run.eval));
      found += run.eval.found;
      real += run.eval.real;
    }
    ToolEval total;
    total.found = found;
    total.real = real;
    row.push_back(cell(total));
    table.AddRow(row);
  }

  EmitTable("=== Table 5: tool comparison (found/real/FP%; -* = analysis error) ===", table,
            "table_5_tool_comparison.csv");
  std::printf("paper:  Clang 0; Infer -*,8/2/75%%,45/9/80%%,13/3/77%%; Smatch 147/28/81%% "
              "(Linux only);\n        Coverity 157/56/64%%,3/3/0%%,4/1/75%%,6/4/33%%; "
              "ValueCheck 210/154/26%% total\n");
  return 0;
}

// Familiarity-model ablation (paper §9.2): the DOK model needs developer
// self-ratings to calibrate its weights; the EA alternative works from commit
// messages alone. The paper argues EA "may be less accurate but do[es] not
// require the original developers to participate" — this bench measures that
// trade on the synthesized corpora: top-K bug yield and precision for DOK
// (paper-calibrated weights), DOK (locally re-fit weights), and EA.

#include "bench/bench_util.h"
#include "src/familiarity/dok_model.h"
#include "src/support/rng.h"

namespace {

int BugsInTopK(const vc::AppEval& run, size_t k) {
  int real = 0;
  for (const vc::UnusedDefCandidate& cand : run.report.Top(k)) {
    real += IsRealBug(run, cand) ? 1 : 0;
  }
  return real;
}

}  // namespace

int main() {
  using namespace vc;

  // Re-fit DOK weights the way the paper does (§6): sample 40 lines per
  // application, synthesize self-ratings from the ground-truth model plus
  // reviewer noise, and run least squares.
  Rng rng(0xd0f17);
  std::vector<RatingSample> samples;
  for (const ProjectProfile& profile : AllProfiles()) {
    GeneratedApp app = GenerateApp(profile);
    std::vector<std::string> files = app.repo.ListFiles();
    for (int i = 0; i < 40 && !files.empty(); ++i) {
      const std::string& path = files[rng.NextBelow(files.size())];
      const auto& blame = app.repo.Blame(path);
      if (blame.empty()) {
        continue;
      }
      AuthorId author = blame[rng.NextBelow(blame.size())].author;
      RatingSample sample;
      sample.features = ComputeDokFeatures(app.repo, author, path);
      sample.rating = DokScore(sample.features) + rng.NextGaussian(0.0, 0.3);
      samples.push_back(sample);
    }
  }
  std::optional<DokWeights> fitted = FitDokWeights(samples);

  TableWriter weights_table({"Weight", "Paper", "Re-fit (this corpus)"});
  if (fitted.has_value()) {
    weights_table.AddRow({"a0", "3.1", FormatDouble(fitted->a0, 2)});
    weights_table.AddRow({"a_FA", "1.2", FormatDouble(fitted->fa, 2)});
    weights_table.AddRow({"a_DL", "0.2", FormatDouble(fitted->dl, 2)});
    weights_table.AddRow({"a_AC", "0.5", FormatDouble(fitted->ac, 2)});
  }
  EmitTable("=== §6 calibration: DOK weights re-fit from sampled self-ratings ===",
            weights_table, "ablation_dok_fit.csv");

  // Rank with each model and compare.
  TableWriter table({"App.", "DOK top-20 bugs", "DOK(refit) top-20", "EA top-20",
                     "DOK top-10 prec", "EA top-10 prec"});
  int dok_total = 0;
  int refit_total = 0;
  int ea_total = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    AppEval dok = RunApp(profile);

    AnalysisOptions refit_options;
    if (fitted.has_value()) {
      refit_options.ranking.weights = *fitted;
    }
    AppEval refit = RunApp(profile, refit_options);

    AnalysisOptions ea_options;
    ea_options.ranking.use_ea_model = true;
    AppEval ea = RunApp(profile, ea_options);

    int dok20 = BugsInTopK(dok, 20);
    int refit20 = BugsInTopK(refit, 20);
    int ea20 = BugsInTopK(ea, 20);
    dok_total += dok20;
    refit_total += refit20;
    ea_total += ea20;
    table.AddRow({profile.name, std::to_string(dok20), std::to_string(refit20),
                  std::to_string(ea20),
                  FormatPercent(BugsInTopK(dok, 10) / 10.0),
                  FormatPercent(BugsInTopK(ea, 10) / 10.0)});
  }
  table.AddRow({"Total", std::to_string(dok_total), std::to_string(refit_total),
                std::to_string(ea_total), "", ""});

  EmitTable("=== §9.2 ablation: DOK vs re-fit DOK vs EA familiarity models ===", table,
            "ablation_models.csv");
  std::printf("expected shape: the re-fit weights track the paper's, and EA (no developer\n"
              "participation needed) ranks slightly worse than DOK but far better than\n"
              "no ranking at all — the trade §9.2 describes.\n");
  return 0;
}

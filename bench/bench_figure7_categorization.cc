// Reproduces Figure 7: the 154 confirmed bugs categorized by (a) software
// component, (b) security severity, and (c) days the bug sat in the code base
// before detection. Ages are computed from blame — the commit that introduced
// the defective line — exactly as the VCS substrate would answer for git.
//
// Paper reference: 38% file system, 17% security modules; 15% high / 59%
// medium / 26% low severity; > 80% older than 1000 days.

#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace vc;

  std::map<std::string, int> by_component;
  std::map<std::string, int> by_severity;
  std::map<std::string, int> by_age;
  int confirmed = 0;
  int over_1000_days = 0;

  for (AppEval& run : RunAllApps()) {
    for (const UnusedDefCandidate& finding : run.report.findings) {
      const GtSite* site = run.app.truth.Match(finding.file, finding.def_loc.line);
      if (site == nullptr || !site->is_real_bug) {
        continue;
      }
      ++confirmed;
      ++by_component[site->component];
      ++by_severity[site->severity];

      const std::vector<LineOrigin>& blame = run.app.repo.Blame(site->file);
      int age_days = 0;
      if (site->line - 1 < static_cast<int>(blame.size())) {
        int64_t introduced = run.app.repo.GetCommit(blame[site->line - 1].commit).timestamp;
        age_days = static_cast<int>((kCorpusNow - introduced) / kSecondsPerDay);
      }
      over_1000_days += age_days > 1000 ? 1 : 0;
      const char* bucket = age_days <= 200    ? "0-200"
                           : age_days <= 500  ? "201-500"
                           : age_days <= 1000 ? "501-1000"
                           : age_days <= 2000 ? "1001-2000"
                                              : ">2000";
      ++by_age[bucket];
    }
  }

  auto emit = [&](const char* title, const std::map<std::string, int>& buckets,
                  const std::string& csv) {
    TableWriter table({"Category", "#Bugs", "%"});
    for (const auto& [key, count] : buckets) {
      table.AddRow({key, std::to_string(count),
                    FormatPercent(static_cast<double>(count) / confirmed)});
    }
    EmitTable(title, table, csv);
  };

  std::printf("Figure 7 over %d confirmed bugs\n\n", confirmed);
  emit("=== Figure 7a: distribution across components ===", by_component,
       "figure_7a_components.csv");
  std::printf("paper: 38%% file system, 17%% security modules\n\n");
  emit("=== Figure 7b: security severity ===", by_severity, "figure_7b_severity.csv");
  std::printf("paper: 15%% high, 59%% medium, 26%% low\n\n");
  emit("=== Figure 7c: days before a bug is detected ===", by_age, "figure_7c_age.csv");
  std::printf("paper: more than 80%% of bugs persisted over 1000 days — here: %s\n",
              FormatPercent(static_cast<double>(over_1000_days) / confirmed).c_str());
  return 0;
}

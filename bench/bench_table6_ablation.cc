// Reproduces Table 6: the contribution of cross-scope authorship and of the
// DOK familiarity model (and each of its factors) to bug yield in the top 20
// reported findings per application.
//
// Paper reference (total bugs in top-20 across the four applications):
//   full ValueCheck 74 | w/o Authorship 28 | w/o Familiarity 58
//   w/o AC 73 | w/o DL 69 | w/o FA 71

#include <cmath>

#include "bench/bench_util.h"

namespace {

int BugsInTop20(const vc::AppEval& run) {
  int real = 0;
  for (const vc::UnusedDefCandidate& cand : run.report.Top(20)) {
    real += IsRealBug(run, cand) ? 1 : 0;
  }
  return real;
}

}  // namespace

int main() {
  using namespace vc;

  struct Group {
    const char* name;
    AnalysisOptions options;
  };
  std::vector<Group> groups;
  groups.push_back({"ValueCheck", {}});
  {
    AnalysisOptions o;
    o.cross_scope_only = false;
    groups.push_back({"w/o Authorship", o});
  }
  {
    AnalysisOptions o;
    o.ranking.enabled = false;
    groups.push_back({"w/o Familiarity", o});
  }
  {
    AnalysisOptions o;
    o.ranking.weights = DokWeights().WithoutAc();
    groups.push_back({"w/o AC", o});
  }
  {
    AnalysisOptions o;
    o.ranking.weights = DokWeights().WithoutDl();
    groups.push_back({"w/o DL", o});
  }
  {
    AnalysisOptions o;
    o.ranking.weights = DokWeights().WithoutFa();
    groups.push_back({"w/o FA", o});
  }

  TableWriter table({"App.", "ValueCheck", "w/o Authorship", "w/o Familiarity", "w/o AC",
                     "w/o DL", "w/o FA"});
  std::vector<int> totals(groups.size(), 0);
  std::vector<std::vector<int>> per_app;

  for (const ProjectProfile& profile : AllProfiles()) {
    std::vector<int> row;
    for (size_t g = 0; g < groups.size(); ++g) {
      AppEval run = RunApp(profile, groups[g].options);
      int bugs = BugsInTop20(run);
      row.push_back(bugs);
      totals[g] += bugs;
    }
    per_app.push_back(row);
  }

  auto profiles = AllProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    std::vector<std::string> cells = {profiles[i].name};
    for (int v : per_app[i]) {
      cells.push_back(std::to_string(v));
    }
    table.AddRow(cells);
  }
  std::vector<std::string> total_row = {"Total"};
  for (size_t g = 0; g < groups.size(); ++g) {
    std::string cell = std::to_string(totals[g]);
    if (g > 0 && totals[0] > 0) {
      int delta = static_cast<int>(
          std::lround(100.0 * (totals[g] - totals[0]) / static_cast<double>(totals[0])));
      cell += " (" + std::to_string(delta) + "%)";
    }
    total_row.push_back(cell);
  }
  table.AddRow(total_row);

  EmitTable("=== Table 6: effect of authorship and the DOK model (bugs in top-20) ===", table,
            "table_6_dok_effect.csv");
  std::printf("paper totals: 74 | 28 (-62%%) | 58 (-16%%) | 73 (-1%%) | 69 (-7%%) | 71 (-4%%)\n");
  return 0;
}

// Reproduces Table 4: per-strategy prune-rate breakdown, plus the pruning
// quality experiments of §8.3 — false-positive rate of the final report,
// recall on the 39 known prior bugs (37/39 in the paper), and the sampled
// false-negative rate of pruning (real bugs wrongly pruned, < 10% per app).

#include <set>

#include "bench/bench_util.h"
#include "src/support/rng.h"

int main() {
  using namespace vc;

  TableWriter table4({"App.", "#Original", "Config Dep.", "Cursor", "Unused Hints",
                      "Peer Def.", "Total Pruned", "#After", "%Prune FN (sampled)"});

  int prior_total = 0;
  int prior_detected = 0;
  Rng sampler(0xfeed);

  for (AppEval& run : RunAllApps()) {
    const PruneStats& stats = run.report.prune_stats;

    // §8.3.4: sample up to 100 pruned candidates and count real bugs among
    // them (the generator plants peer-pruning losses; everything else pruned
    // is benign by construction, like the paper's < 10% finding).
    std::vector<const GtSite*> pruned_sites;
    for (const GtSite& site : run.app.truth.sites()) {
      if (site.expect_pruned) {
        pruned_sites.push_back(&site);
      }
    }
    sampler.Shuffle(pruned_sites);
    int sample_n = std::min<int>(100, static_cast<int>(pruned_sites.size()));
    int sampled_real = 0;
    for (int i = 0; i < sample_n; ++i) {
      sampled_real += pruned_sites[static_cast<size_t>(i)]->is_real_bug ? 1 : 0;
    }
    double fn_rate = sample_n > 0 ? static_cast<double>(sampled_real) / sample_n : 0.0;

    auto pct = [&](int n) {
      return std::to_string(n) + " (" +
             FormatPercent(static_cast<double>(n) / stats.original, 2) + ")";
    };
    table4.AddRow({run.app.name, std::to_string(stats.original),
                   pct(stats.config_dependency), pct(stats.cursor), pct(stats.unused_hints),
                   pct(stats.peer_definition), pct(stats.TotalPruned()),
                   std::to_string(stats.remaining), FormatPercent(fn_rate)});

    // §8.3.2 recall bookkeeping.
    std::set<std::pair<std::string, int>> found;
    for (const UnusedDefCandidate& cand : run.report.findings) {
      found.insert({cand.file, cand.def_loc.line});
    }
    for (const GtSite& site : run.app.truth.sites()) {
      if (site.prior_bug) {
        ++prior_total;
        prior_detected += found.count({site.file, site.line}) > 0 ? 1 : 0;
      }
    }
  }

  EmitTable("=== Table 4: prune-rate breakdown ===", table4, "table_4_prune_rate.csv");
  std::printf("paper: Linux 259->63 (1/22/46/127), NFS-g 898->22 (7/7/839/23),\n"
              "       MySQL 7743->99 (37/83/3031/4493), OpenSSL 642->26 (18/74/322/202)\n\n");

  // §8.3.1 false positives of the final report.
  TableWriter fp({"Application", "#Found", "#Real", "%Bug FP"});
  int found_total = 0;
  int real_total = 0;
  for (AppEval& run : RunAllApps()) {
    fp.AddRow({run.app.name, std::to_string(run.eval.found), std::to_string(run.eval.real),
               FormatPercent(run.eval.FpRate())});
    found_total += run.eval.found;
    real_total += run.eval.real;
  }
  fp.AddRow({"Total", std::to_string(found_total), std::to_string(real_total),
             FormatPercent(1.0 - static_cast<double>(real_total) / found_total)});
  EmitTable("=== §8.3.1: false-positive rate of the final report ===", fp,
            "section_8_3_false_positives.csv");
  std::printf("paper: 18%%-31%% per application, 26%% overall\n\n");

  // §8.3.2 recall.
  std::printf("=== §8.3.2: recall on the known prior-bug set ===\n");
  std::printf("detected %d of %d prior bugs (paper: 37 of 39; both misses are "
              "peer-definition pruning losses)\n",
              prior_detected, prior_total);
  return 0;
}

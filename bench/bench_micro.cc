// Micro-benchmarks (google-benchmark) for the analysis substrates: parsing,
// IR lowering, liveness fix points, Andersen's points-to, Myers diff, and
// blame replay. These are ablation-style measurements for DESIGN.md's design
// choices (per-function analysis, snapshot storage with diff-based blame).

#include <benchmark/benchmark.h>

#include "src/core/detector.h"
#include "src/core/project.h"
#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"
#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/pointer/andersen.h"
#include "src/support/rng.h"
#include "src/vcs/diff.h"
#include "src/vcs/repository.h"

namespace {

// A function with `blocks` if/else diamonds and a loop, all variables used.
std::string SyntheticFunction(int index, int blocks) {
  std::string t = std::to_string(index);
  std::string code = "int fn_" + t + "(int a, int b) {\n  int acc_" + t + " = a;\n";
  for (int i = 0; i < blocks; ++i) {
    code += "  if (acc_" + t + " > " + std::to_string(i) + ") {\n";
    code += "    acc_" + t + " = acc_" + t + " + b;\n";
    code += "  } else {\n";
    code += "    acc_" + t + " = acc_" + t + " - 1;\n";
    code += "  }\n";
  }
  code += "  while (acc_" + t + " > b) {\n    acc_" + t + " = acc_" + t + " - b;\n  }\n";
  code += "  return acc_" + t + ";\n}\n";
  return code;
}

std::string SyntheticModule(int functions, int blocks_each) {
  std::string code;
  for (int i = 0; i < functions; ++i) {
    code += SyntheticFunction(i, blocks_each);
  }
  return code;
}

void BM_ParseModule(benchmark::State& state) {
  std::string code = SyntheticModule(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    vc::SourceManager sm;
    vc::DiagnosticEngine diags;
    vc::TranslationUnit unit = vc::ParseString(sm, "bench.c", code, diags);
    benchmark::DoNotOptimize(unit.functions.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ParseModule)->Arg(10)->Arg(100);

void BM_LowerModule(benchmark::State& state) {
  vc::SourceManager sm;
  vc::DiagnosticEngine diags;
  std::string code = SyntheticModule(static_cast<int>(state.range(0)), 6);
  vc::TranslationUnit unit = vc::ParseString(sm, "bench.c", code, diags);
  for (auto _ : state) {
    auto module = vc::LowerUnit(unit);
    benchmark::DoNotOptimize(module->functions.size());
  }
}
BENCHMARK(BM_LowerModule)->Arg(10)->Arg(100);

void BM_LivenessFixPoint(benchmark::State& state) {
  vc::SourceManager sm;
  vc::DiagnosticEngine diags;
  std::string code = SyntheticFunction(0, static_cast<int>(state.range(0)));
  vc::TranslationUnit unit = vc::ParseString(sm, "bench.c", code, diags);
  auto module = vc::LowerUnit(unit);
  const vc::IrFunction& func = *module->functions.front();
  for (auto _ : state) {
    vc::LivenessResult result = vc::ComputeLiveness(func);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_LivenessFixPoint)->Arg(8)->Arg(64);

void BM_DefineSets(benchmark::State& state) {
  vc::SourceManager sm;
  vc::DiagnosticEngine diags;
  std::string code = SyntheticFunction(0, static_cast<int>(state.range(0)));
  vc::TranslationUnit unit = vc::ParseString(sm, "bench.c", code, diags);
  auto module = vc::LowerUnit(unit);
  const vc::IrFunction& func = *module->functions.front();
  for (auto _ : state) {
    vc::DefineSetResult result = vc::ComputeDefineSets(func);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_DefineSets)->Arg(8)->Arg(64);

void BM_AndersenPointsTo(benchmark::State& state) {
  // Pointer-heavy function: a chain of copies and swaps.
  std::string code = "int pf(int n) {\n  int x = 1;\n  int y = 2;\n";
  code += "  int *p = &x;\n  int *q = &y;\n";
  for (int i = 0; i < state.range(0); ++i) {
    code += "  if (n > " + std::to_string(i) + ") {\n    int *t" + std::to_string(i) +
            " = p;\n    p = q;\n    q = t" + std::to_string(i) + ";\n  }\n";
  }
  code += "  return *p + *q;\n}\n";
  vc::SourceManager sm;
  vc::DiagnosticEngine diags;
  vc::TranslationUnit unit = vc::ParseString(sm, "bench.c", code, diags);
  auto module = vc::LowerUnit(unit);
  const vc::IrFunction& func = *module->functions.front();
  for (auto _ : state) {
    vc::PointsTo pts(func);
    benchmark::DoNotOptimize(pts.iterations());
  }
}
BENCHMARK(BM_AndersenPointsTo)->Arg(4)->Arg(32);

void BM_DetectModule(benchmark::State& state) {
  vc::Project project = vc::Project::FromSources(
      {{"bench.c", SyntheticModule(static_cast<int>(state.range(0)), 6)}});
  for (auto _ : state) {
    auto candidates = vc::DetectAll(project);
    benchmark::DoNotOptimize(candidates.size());
  }
}
BENCHMARK(BM_DetectModule)->Arg(10)->Arg(100);

void BM_MyersDiff(benchmark::State& state) {
  vc::Rng rng(7);
  std::vector<std::string> a;
  for (int i = 0; i < state.range(0); ++i) {
    a.push_back("line_" + std::to_string(rng.NextInRange(0, 50)));
  }
  std::vector<std::string> b = a;
  for (int i = 0; i < state.range(0) / 10 + 1; ++i) {
    b.insert(b.begin() + static_cast<long>(rng.NextBelow(b.size() + 1)),
             "inserted_" + std::to_string(i));
  }
  std::vector<std::string_view> av(a.begin(), a.end());
  std::vector<std::string_view> bv(b.begin(), b.end());
  for (auto _ : state) {
    auto edits = vc::DiffLines(av, bv);
    benchmark::DoNotOptimize(edits.size());
  }
}
BENCHMARK(BM_MyersDiff)->Arg(100)->Arg(1000);

void BM_BlameReplay(benchmark::State& state) {
  vc::Repository repo;
  vc::AuthorId author = repo.AddAuthor("dev");
  std::string content;
  for (int commit = 0; commit < state.range(0); ++commit) {
    content += "line_of_commit_" + std::to_string(commit) + "\n";
    repo.AddCommit(author, 1000 + commit, "evolve", {{"f.c", content}});
  }
  for (auto _ : state) {
    auto blame = repo.BlameAt("f.c", repo.NumCommits() - 1);
    benchmark::DoNotOptimize(blame.size());
  }
}
BENCHMARK(BM_BlameReplay)->Arg(20)->Arg(100);

}  // namespace

BENCHMARK_MAIN();

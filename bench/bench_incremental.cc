// Incremental engine benchmark: replays a synthesized commit history (the
// same generator tools/check.sh's incremental smoke and the equivalence
// battery use) through one warm vc::IncrementalEngine and compares per-commit
// cost against full from-scratch runs at sampled commits. The claims under
// test are the paper's §8.6 shape on top of this repo's engine:
//
//   - the median incremental commit is an order of magnitude (>= 10x on a
//     paper-scale history) cheaper than the median full run,
//   - the detect cache serves the overwhelming majority of functions
//     (> 90% carry rate once the history is long enough to amortize the
//     cold start), and
//   - every sampled commit is byte-identical (CSV rendering) between the
//     incremental replay and a fresh full run — the bench refuses to report
//     a speedup it cannot prove equivalent.
//
// Emits result/BENCH_incremental.json (schema 1), a CSV twin of the sampled
// points, and one run-ledger record per sampled commit (metrics.incremental
// populated via FillIncrementalMetrics) so the HTML dashboard can chart
// full-vs-incremental trends bench-to-bench.
//
// VC_BENCH_INC_COMMITS overrides the history length (default 1000; CI-sized
// smokes can set 60), VC_BENCH_INC_STRIDE the full-run sampling stride
// (default commits/20).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/incremental.h"
#include "src/core/run_diff.h"
#include "src/support/json_writer.h"
#include "src/support/run_ledger.h"
#include "src/testing/history_gen.h"

namespace {

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  size_t mid = values.size() / 2;
  if (values.size() % 2 == 1) {
    return values[mid];
  }
  return (values[mid - 1] + values[mid]) / 2.0;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

int main() {
  using namespace vc;

  const int commits = EnvInt("VC_BENCH_INC_COMMITS", 1000);
  const int stride = EnvInt("VC_BENCH_INC_STRIDE", std::max(1, commits / 20));

  testing::HistoryGenOptions gen;
  gen.seed = 1;
  gen.commits = commits;
  // Paper-scale shape: enough sizeable modules that a full run is dominated
  // by parse+detect over the whole tree while a typical commit touches one
  // module — the regime the >= 10x / > 90%-carry acceptance targets assume.
  gen.initial_modules = 36;
  gen.max_modules = 128;
  gen.per_module.max_functions_per_file = 10;
  gen.per_module.max_stmts_per_function = 16;
  std::printf("synthesizing %d-commit history (seed %llu)...\n", commits,
              static_cast<unsigned long long>(gen.seed));
  Repository repo = testing::GenerateHistory(gen);

  AnalysisOptions options;
  options.checkers = {"unused-def"};
  IncrementalEngine engine(options);
  Analysis full(options);

  struct SampledPoint {
    int commit = 0;
    double full_seconds = 0.0;
    double inc_seconds = 0.0;
    int files_reparsed = 0;
    int functions_dirty = 0;
    int functions_total = 0;
    size_t findings = 0;
  };
  std::vector<SampledPoint> samples;
  std::vector<double> inc_seconds_all;
  std::vector<double> dirty_fractions;
  int64_t files_reparsed_total = 0;
  int64_t files_changed_total = 0;
  bool equivalent = true;
  int first_divergence = -1;

  RunLedger ledger(ResultPath("ledger"));
  int64_t bench_start_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::system_clock::now().time_since_epoch())
                               .count();

  for (CommitId commit = 0; commit < repo.NumCommits(); ++commit) {
    IncrementalResult result = engine.AnalyzeCommit(repo, commit);
    inc_seconds_all.push_back(result.seconds);
    files_reparsed_total += result.files_reparsed;
    files_changed_total += result.files_changed;
    if (result.functions_total > 0) {
      dirty_fractions.push_back(static_cast<double>(result.functions_dirty) /
                                static_cast<double>(result.functions_total));
    }

    // Full-run comparison + equivalence proof on the sampled commits (every
    // commit would turn the bench quadratic; the battery in tests/ already
    // proves per-commit equivalence exhaustively on smaller histories).
    const bool sampled = commit % stride == 0 || commit + 1 == repo.NumCommits();
    if (!sampled) {
      continue;
    }
    auto start = std::chrono::steady_clock::now();
    AnalysisReport fresh = full.RunOnRepository(repo.PrefixCopy(commit));
    double full_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (equivalent && result.report.ToCsv() != fresh.ToCsv()) {
      equivalent = false;
      first_divergence = commit;
    }

    SampledPoint point;
    point.commit = commit;
    point.full_seconds = full_seconds;
    point.inc_seconds = result.seconds;
    point.files_reparsed = result.files_reparsed;
    point.functions_dirty = result.functions_dirty;
    point.functions_total = result.functions_total;
    point.findings = result.findings().size();
    samples.push_back(point);

    RunRecord record;
    record.timestamp_ms = bench_start_ms;
    record.label = "bench:incremental c" + std::to_string(commit);
    record.options_summary = "bench commits=" + std::to_string(commits);
    record.jobs = options.jobs;
    record.metrics.collected = true;
    record.metrics.analysis_seconds = full_seconds;
    FillIncrementalMetrics(result, record.metrics);
    std::string ledger_error;
    if (ledger.Append(std::move(record), &ledger_error).empty()) {
      std::printf("(ledger append failed: %s)\n", ledger_error.c_str());
    }
  }

  const CacheStats cache = engine.cache_stats();
  const double median_inc = Median(inc_seconds_all);
  std::vector<double> full_seconds_sampled;
  for (const SampledPoint& point : samples) {
    full_seconds_sampled.push_back(point.full_seconds);
  }
  const double median_full = Median(full_seconds_sampled);
  const double speedup = median_inc > 0.0 ? median_full / median_inc : 0.0;
  const double detect_hit_rate = cache.DetectHitRate();
  const double mean_dirty_fraction =
      dirty_fractions.empty()
          ? 0.0
          : std::accumulate(dirty_fractions.begin(), dirty_fractions.end(), 0.0) /
                static_cast<double>(dirty_fractions.size());

  TableWriter table({"Commit", "Full Time", "Incremental", "Reparsed", "Dirty Fns",
                     "Total Fns", "Findings"});
  for (const SampledPoint& point : samples) {
    table.AddRow({std::to_string(point.commit), FormatDouble(point.full_seconds * 1000, 2) + "ms",
                  FormatDouble(point.inc_seconds * 1000, 2) + "ms",
                  std::to_string(point.files_reparsed), std::to_string(point.functions_dirty),
                  std::to_string(point.functions_total), std::to_string(point.findings)});
  }
  EmitTable("=== Incremental engine: full vs per-commit replay (sampled) ===", table,
            "BENCH_incremental_sweep.csv");

  std::printf("replayed %d commit(s): median incremental %.2fms vs median full %.2fms "
              "(%.1fx), detect cache %.1f%% carried, mean dirty slice %.1f%%\n",
              repo.NumCommits(), median_inc * 1000, median_full * 1000, speedup,
              detect_hit_rate * 100, mean_dirty_fraction * 100);
  if (!equivalent) {
    std::printf("EQUIVALENCE FAILURE at commit %d — the speedup above is void.\n",
                first_divergence);
  }

  JsonWriter json;
  json.BeginObject();
  json.String("bench", "incremental");
  // v1: whole-history replay with sampled full-run comparison; per-point
  // full/incremental seconds, dirty-slice sizes, cumulative cache stats,
  // and the equivalence verdict the speedup is conditional on.
  json.Int("schema_version", 1);
  json.Int("commits", repo.NumCommits());
  json.Int("sample_stride", stride);
  json.Bool("equivalent", equivalent);
  json.Int("first_divergence", first_divergence);
  json.Double("median_full_seconds", median_full);
  json.Double("median_incremental_seconds", median_inc);
  json.Double("median_speedup", speedup);
  json.Double("mean_dirty_fraction", mean_dirty_fraction);
  json.Int("files_changed_total", files_changed_total);
  json.Int("files_reparsed_total", files_reparsed_total);
  json.Key("cache").BeginObject();
  json.Int("parse_hits", static_cast<int64_t>(cache.parse_hits));
  json.Int("parse_misses", static_cast<int64_t>(cache.parse_misses));
  json.Int("detect_carried", static_cast<int64_t>(cache.detect_carried));
  json.Int("detect_recomputed", static_cast<int64_t>(cache.detect_recomputed));
  json.Double("detect_hit_rate", detect_hit_rate);
  json.Int("disk_loads", static_cast<int64_t>(cache.disk_loads));
  json.Int("disk_stores", static_cast<int64_t>(cache.disk_stores));
  json.Int("disk_corrupt", static_cast<int64_t>(cache.disk_corrupt));
  json.EndObject();
  json.Key("samples").BeginArray();
  for (const SampledPoint& point : samples) {
    json.BeginObject();
    json.Int("commit", point.commit);
    json.Double("full_seconds", point.full_seconds);
    json.Double("incremental_seconds", point.inc_seconds);
    json.Int("files_reparsed", point.files_reparsed);
    json.Int("functions_dirty", point.functions_dirty);
    json.Int("functions_total", point.functions_total);
    json.Int("findings", static_cast<int64_t>(point.findings));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::string json_path = ResultPath("BENCH_incremental.json");
  if (FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
    std::printf("(json: %s)\n", json_path.c_str());
  }
  return equivalent ? 0 : 1;
}

// Reproduces Table 7: whole-codebase analysis time per application plus the
// average per-commit incremental time (§8.6). Absolute numbers are machine-
// and substrate-dependent (the paper's own artifact says as much); the shape
// to check is (a) full analysis scales with code size, Linux largest, and
// (b) incremental analysis is orders of magnitude cheaper per commit.

#include <chrono>

#include "bench/bench_util.h"
#include "src/core/incremental.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 60.0) {
    int minutes = static_cast<int>(seconds / 60.0);
    return std::to_string(minutes) + "m" + vc::FormatDouble(seconds - minutes * 60, 1) + "s";
  }
  if (seconds >= 1.0) {
    return vc::FormatDouble(seconds, 2) + "s";
  }
  return vc::FormatDouble(seconds * 1000.0, 2) + "ms";
}

}  // namespace

int main() {
  using namespace vc;

  TableWriter table({"Application", "#LOC", "#Commits", "Full Time", "Incremental Time"});
  double total_full = 0.0;
  double total_inc = 0.0;
  int total_loc = 0;

  for (const ProjectProfile& profile : AllProfiles()) {
    GeneratedApp app = GenerateApp(profile);

    // Full analysis: best of 3 (parse + lower + detect + authorship + prune
    // + rank, from the repository head).
    double best = 1e9;
    ValueCheckReport report;
    int loc = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      Project project = Project::FromRepository(app.repo);
      report = RunValueCheck(project, &app.repo);
      best = std::min(best, Seconds(start));
      loc = project.TotalLines();
    }

    // Incremental: average over the last 20 commits (the paper uses the
    // first 20 commits of 2022 on each application).
    int commits = app.repo.NumCommits();
    int first = std::max(0, commits - 20);
    double inc_total = 0.0;
    int inc_count = 0;
    for (CommitId commit = first; commit < commits; ++commit) {
      IncrementalResult result = AnalyzeCommit(app.repo, commit);
      inc_total += result.seconds;
      ++inc_count;
    }
    double inc_avg = inc_count > 0 ? inc_total / inc_count : 0.0;

    table.AddRow({app.name, std::to_string(loc), std::to_string(commits),
                  FormatSeconds(best), FormatSeconds(inc_avg)});
    total_full += best;
    total_inc += inc_avg;
    total_loc += loc;
  }
  table.AddRow({"Total", std::to_string(total_loc), "", FormatSeconds(total_full),
                FormatSeconds(total_inc)});

  EmitTable("=== Table 7: scalability (full vs per-commit incremental analysis) ===", table,
            "table_7_time_analysis.csv");
  std::printf("paper (on 31.3M LOC of real code with LLVM+SVF): 50m51s full, <5s per "
              "commit incremental.\n");
  std::printf("The synthesized corpora are ~%dK lines, so absolute times differ; the "
              "full/incremental\nratio and size ordering are the reproduced shape.\n",
              total_loc / 1000);
  return 0;
}

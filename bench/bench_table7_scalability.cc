// Reproduces Table 7: whole-codebase analysis time per application plus the
// average per-commit incremental time (§8.6). Absolute numbers are machine-
// and substrate-dependent (the paper's own artifact says as much); the shape
// to check is (a) full analysis scales with code size, Linux largest, and
// (b) incremental analysis is orders of magnitude cheaper per commit.
//
// On top of the paper table, this bench sweeps the parallel engine's --jobs
// degree over the full corpus and emits a speedup table plus a
// result/BENCH_scalability.json artifact. Speedup is bounded by the hardware:
// on a single-core container every jobs value measures ~1x; on an N-core
// machine parse/lower and detection scale with min(jobs, N).

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/support/json_writer.h"
#include "src/support/run_ledger.h"
#include "src/support/thread_pool.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 60.0) {
    int minutes = static_cast<int>(seconds / 60.0);
    return std::to_string(minutes) + "m" + vc::FormatDouble(seconds - minutes * 60, 1) + "s";
  }
  if (seconds >= 1.0) {
    return vc::FormatDouble(seconds, 2) + "s";
  }
  return vc::FormatDouble(seconds * 1000.0, 2) + "ms";
}

// One full pipeline pass over every application at the given jobs degree.
// Timing comes from the pipeline's own StageMetrics (collect_metrics) rather
// than bench-side timers, so the sweep reports exactly what the tool reports.
struct SweepPoint {
  double seconds = 0.0;        // corpus total of per-run analysis_seconds
  double parse_seconds = 0.0;
  double detect_seconds = 0.0;
  double prune_seconds = 0.0;
  double rank_seconds = 0.0;
  vc::ThreadPoolStats pool;    // corpus total pool activity (flows summed)
  // Memory accounting totals (schema v3): exact byte counts summed over the
  // corpus — identical at every jobs value — plus the process peak RSS
  // observed by the end of the sweep point (monotone, machine-dependent).
  uint64_t mem_tracked_bytes = 0;
  uint64_t mem_tracked_objects = 0;
  uint64_t mem_peak_rss_bytes = 0;
};

SweepPoint FullCorpusPoint(const std::vector<vc::GeneratedApp>& apps, int jobs) {
  vc::AnalysisOptions options;
  options.jobs = jobs;
  options.collect_metrics = true;
  vc::Analysis analysis(options);
  SweepPoint point;
  for (const vc::GeneratedApp& app : apps) {
    vc::AnalysisReport report = analysis.RunOnRepository(app.repo);
    if (report.findings.empty() && report.raw_candidates.empty()) {
      std::printf("(unexpected empty report)\n");
    }
    point.seconds += report.analysis_seconds;
    point.parse_seconds += report.stage.parse_seconds;
    point.detect_seconds += report.stage.detect_seconds;
    point.prune_seconds += report.stage.prune_seconds;
    point.rank_seconds += report.stage.rank_seconds;
    point.pool.parallel_fors += report.stage.pool.parallel_fors;
    point.pool.tasks_executed += report.stage.pool.tasks_executed;
    point.pool.chunks_executed += report.stage.pool.chunks_executed;
    point.pool.steals += report.stage.pool.steals;
    point.pool.queue_depth_hwm =
        std::max(point.pool.queue_depth_hwm, report.stage.pool.queue_depth_hwm);
    point.pool.worker_idle_seconds += report.stage.pool.worker_idle_seconds;
    point.pool.workers = report.stage.pool.workers;
    if (report.memory.collected) {
      point.mem_tracked_bytes += report.memory.TrackedBytes();
      point.mem_tracked_objects += report.memory.TrackedObjects();
      point.mem_peak_rss_bytes =
          std::max(point.mem_peak_rss_bytes, report.memory.peak_rss_bytes);
    }
  }
  return point;
}

}  // namespace

int main() {
  using namespace vc;

  TableWriter table({"Application", "#LOC", "#Commits", "Full Time", "Incremental Time"});
  double total_full = 0.0;
  double total_inc = 0.0;
  int total_loc = 0;

  std::vector<GeneratedApp> apps;
  for (const ProjectProfile& profile : AllProfiles()) {
    apps.push_back(GenerateApp(profile));
  }

  Analysis analysis;  // serial baseline, default options
  for (GeneratedApp& app : apps) {
    // Full analysis: best of 3 (parse + lower + detect + authorship + prune
    // + rank, from the repository head).
    double best = 1e9;
    int loc = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      AnalysisReport report = analysis.RunOnRepository(app.repo);
      best = std::min(best, Seconds(start));
      loc = report.owned_project->TotalLines();
    }

    // Incremental: average over the last 20 commits (the paper uses the
    // first 20 commits of 2022 on each application).
    int commits = app.repo.NumCommits();
    int first = std::max(0, commits - 20);
    double inc_total = 0.0;
    int inc_count = 0;
    for (CommitId commit = first; commit < commits; ++commit) {
      IncrementalResult result = analysis.RunOnCommit(app.repo, commit);
      inc_total += result.seconds;
      ++inc_count;
    }
    double inc_avg = inc_count > 0 ? inc_total / inc_count : 0.0;

    table.AddRow({app.name, std::to_string(loc), std::to_string(commits),
                  FormatSeconds(best), FormatSeconds(inc_avg)});
    total_full += best;
    total_inc += inc_avg;
    total_loc += loc;
  }
  table.AddRow({"Total", std::to_string(total_loc), "", FormatSeconds(total_full),
                FormatSeconds(total_inc)});

  EmitTable("=== Table 7: scalability (full vs per-commit incremental analysis) ===", table,
            "table_7_time_analysis.csv");
  std::printf("paper (on 31.3M LOC of real code with LLVM+SVF): 50m51s full, <5s per "
              "commit incremental.\n");
  std::printf("The synthesized corpora are ~%dK lines, so absolute times differ; the "
              "full/incremental\nratio and size ordering are the reproduced shape.\n\n",
              total_loc / 1000);

  // --- Parallel engine sweep -------------------------------------------------
  int hardware = ResolveJobs(0);
  TableWriter sweep_table(
      {"jobs", "Full Time", "Speedup vs jobs=1", "parse", "detect", "steals", "idle",
       "tracked MB"});
  JsonWriter json;
  json.BeginObject();
  json.String("bench", "scalability");
  // v1 carried only jobs/seconds/speedup per sweep point; v2 added the
  // pipeline's own per-stage seconds and thread-pool activity (StageMetrics);
  // v3 adds the memory block (exact tracked bytes/objects + sampled peak RSS).
  json.Int("schema_version", 3);
  json.Int("hardware_threads", hardware);
  json.Int("total_loc", total_loc);
  json.Key("sweep").BeginArray();

  // Each sweep point also lands in the run ledger under result/, so
  // `valuecheck history --ledger result/ledger` and `report --html` can chart
  // bench-to-bench perf trends the same way they chart analysis reruns.
  RunLedger ledger(ResultPath("ledger"));
  int64_t bench_start_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::system_clock::now().time_since_epoch())
                               .count();

  double serial_seconds = 0.0;
  for (int jobs : {1, 2, 4, 8}) {
    SweepPoint point = FullCorpusPoint(apps, jobs);
    RunRecord record;
    record.timestamp_ms = bench_start_ms;
    record.label = "bench:scalability jobs=" + std::to_string(jobs);
    record.options_summary = "bench";
    record.jobs = jobs;
    record.metrics.collected = true;
    record.metrics.analysis_seconds = point.seconds;
    record.metrics.parse_seconds = point.parse_seconds;
    record.metrics.detect_seconds = point.detect_seconds;
    record.metrics.prune_seconds = point.prune_seconds;
    record.metrics.rank_seconds = point.rank_seconds;
    record.metrics.pool_workers = point.pool.workers;
    record.metrics.pool_tasks = static_cast<int64_t>(point.pool.tasks_executed);
    record.metrics.pool_steals = static_cast<int64_t>(point.pool.steals);
    record.metrics.pool_idle_seconds = point.pool.worker_idle_seconds;
    record.metrics.mem_collected = point.mem_tracked_bytes > 0;
    record.metrics.mem_tracked_bytes = static_cast<int64_t>(point.mem_tracked_bytes);
    record.metrics.mem_peak_rss_bytes = static_cast<int64_t>(point.mem_peak_rss_bytes);
    std::string ledger_error;
    if (ledger.Append(std::move(record), &ledger_error).empty()) {
      std::printf("(ledger append failed: %s)\n", ledger_error.c_str());
    }
    if (jobs == 1) {
      serial_seconds = point.seconds;
    }
    double speedup = point.seconds > 0.0 ? serial_seconds / point.seconds : 0.0;
    sweep_table.AddRow({std::to_string(jobs), FormatSeconds(point.seconds),
                        FormatDouble(speedup, 2) + "x", FormatSeconds(point.parse_seconds),
                        FormatSeconds(point.detect_seconds),
                        std::to_string(point.pool.steals),
                        FormatSeconds(point.pool.worker_idle_seconds),
                        FormatDouble(static_cast<double>(point.mem_tracked_bytes) / 1e6, 1)});
    json.BeginObject();
    json.Int("jobs", jobs);
    json.Double("seconds", point.seconds);
    json.Double("speedup", speedup);
    json.Key("stages").BeginObject();
    json.Double("parse_seconds", point.parse_seconds);
    json.Double("detect_seconds", point.detect_seconds);
    json.Double("prune_seconds", point.prune_seconds);
    json.Double("rank_seconds", point.rank_seconds);
    json.EndObject();
    json.Key("thread_pool").BeginObject();
    json.Int("workers", point.pool.workers);
    json.Int("parallel_fors", static_cast<int64_t>(point.pool.parallel_fors));
    json.Int("tasks_executed", static_cast<int64_t>(point.pool.tasks_executed));
    json.Int("chunks_executed", static_cast<int64_t>(point.pool.chunks_executed));
    json.Int("steals", static_cast<int64_t>(point.pool.steals));
    json.Int("queue_depth_hwm", static_cast<int64_t>(point.pool.queue_depth_hwm));
    json.Double("worker_idle_seconds", point.pool.worker_idle_seconds);
    json.EndObject();
    json.Key("memory").BeginObject();
    json.Int("tracked_bytes", static_cast<int64_t>(point.mem_tracked_bytes));
    json.Int("tracked_objects", static_cast<int64_t>(point.mem_tracked_objects));
    json.Int("peak_rss_bytes", static_cast<int64_t>(point.mem_peak_rss_bytes));
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  EmitTable("=== Parallel engine: full-corpus analysis time vs --jobs ===", sweep_table,
            "BENCH_scalability_sweep.csv");
  std::string json_path = ResultPath("BENCH_scalability.json");
  if (FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
    std::printf("(json: %s)\n", json_path.c_str());
  }
  std::printf("hardware threads available: %d — speedup saturates at min(jobs, threads).\n",
              hardware);
  return 0;
}

// Reproduces Table 7: whole-codebase analysis time per application plus the
// average per-commit incremental time (§8.6). Absolute numbers are machine-
// and substrate-dependent (the paper's own artifact says as much); the shape
// to check is (a) full analysis scales with code size, Linux largest, and
// (b) incremental analysis is orders of magnitude cheaper per commit.
//
// On top of the paper table, this bench sweeps the parallel engine's --jobs
// degree over paper-shaped synthesized corpora (corpusgen's many-small-files
// "linux-like" and fewer-huge-files "mysql-like" profiles) with best-of-N
// timing, and emits speedup + utilization + imbalance per sweep point into
// result/BENCH_scalability.json (schema 3) and the run ledger. Speedup is
// bounded by the hardware: on a machine with fewer than 2 cores every point
// is recorded with "underprovisioned": true instead of pretending the flat
// curve means anything. Scale defaults to "small"; set VC_BENCH_SCALE to
// medium (>100k LOC) or large (>1M LOC) for real sweeps.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/incremental.h"
#include "src/support/json_writer.h"
#include "src/support/run_ledger.h"
#include "src/support/span_analysis.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/testing/corpusgen.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 60.0) {
    int minutes = static_cast<int>(seconds / 60.0);
    return std::to_string(minutes) + "m" + vc::FormatDouble(seconds - minutes * 60, 1) + "s";
  }
  if (seconds >= 1.0) {
    return vc::FormatDouble(seconds, 2) + "s";
  }
  return vc::FormatDouble(seconds * 1000.0, 2) + "ms";
}

// One sweep point: best-of-N wall time over a corpusgen profile at one jobs
// degree, plus span analytics (utilization, imbalance, critical path) from
// one additional traced rep — the traced rep is excluded from the timing so
// instrumentation overhead never shows up in the speedup curve.
struct SweepPoint {
  int jobs = 1;
  int repeats = 0;
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  size_t findings = 0;
  double parse_seconds = 0.0;   // of the best-effort final traced rep
  double detect_seconds = 0.0;
  vc::ThreadPoolStats pool;     // per-run delta of the traced rep
  vc::PerfReport perf;
};

SweepPoint MeasurePoint(
    const std::vector<std::pair<std::string, std::string>>& sources, int jobs,
    int repeats, int hardware) {
  vc::AnalysisOptions options;
  options.jobs = jobs;
  options.collect_metrics = true;
  options.checkers = {"unused-def"};
  vc::Analysis analysis(options);

  SweepPoint point;
  point.jobs = jobs;
  point.repeats = repeats;
  auto timing = vc::BestOfN(repeats, [&] {
    vc::AnalysisReport report = analysis.RunOnSources(sources);
    point.findings = report.findings.size();
  });
  point.best_seconds = timing.first;
  point.mean_seconds = timing.second;

  // Traced rep for the span analytics.
  vc::TraceCollector& collector = vc::TraceCollector::Global();
  collector.Enable();
  vc::AnalysisReport traced = analysis.RunOnSources(sources);
  collector.Disable();
  point.parse_seconds = traced.stage.parse_seconds;
  point.detect_seconds = traced.stage.detect_seconds;
  point.pool = traced.stage.pool;
  vc::PerfInputs inputs;
  inputs.wall_seconds = traced.analysis_seconds;
  inputs.jobs = jobs;
  inputs.hardware_threads = hardware;
  inputs.dropped_spans = collector.dropped_count();
  inputs.pool = &point.pool;
  point.perf = vc::AnalyzeSpans(collector.SnapshotEvents(), inputs);
  collector.Clear();
  return point;
}

}  // namespace

int main() {
  using namespace vc;

  TableWriter table({"Application", "#LOC", "#Commits", "Full Time", "Incremental Time"});
  double total_full = 0.0;
  double total_inc = 0.0;
  int total_loc = 0;

  std::vector<GeneratedApp> apps;
  for (const ProjectProfile& profile : AllProfiles()) {
    apps.push_back(GenerateApp(profile));
  }

  Analysis analysis;  // serial baseline, default options
  for (GeneratedApp& app : apps) {
    // Full analysis: best of 3 (parse + lower + detect + authorship + prune
    // + rank, from the repository head).
    double best = 1e9;
    int loc = 0;
    for (int rep = 0; rep < 3; ++rep) {
      auto start = std::chrono::steady_clock::now();
      AnalysisReport report = analysis.RunOnRepository(app.repo);
      best = std::min(best, Seconds(start));
      loc = report.owned_project->TotalLines();
    }

    // Incremental: average over the last 20 commits (the paper uses the
    // first 20 commits of 2022 on each application).
    int commits = app.repo.NumCommits();
    int first = std::max(0, commits - 20);
    double inc_total = 0.0;
    int inc_count = 0;
    for (CommitId commit = first; commit < commits; ++commit) {
      IncrementalResult result = analysis.RunOnCommit(app.repo, commit);
      inc_total += result.seconds;
      ++inc_count;
    }
    double inc_avg = inc_count > 0 ? inc_total / inc_count : 0.0;

    table.AddRow({app.name, std::to_string(loc), std::to_string(commits),
                  FormatSeconds(best), FormatSeconds(inc_avg)});
    total_full += best;
    total_inc += inc_avg;
    total_loc += loc;
  }
  table.AddRow({"Total", std::to_string(total_loc), "", FormatSeconds(total_full),
                FormatSeconds(total_inc)});

  EmitTable("=== Table 7: scalability (full vs per-commit incremental analysis) ===", table,
            "table_7_time_analysis.csv");
  std::printf("paper (on 31.3M LOC of real code with LLVM+SVF): 50m51s full, <5s per "
              "commit incremental.\n");
  std::printf("The synthesized corpora are ~%dK lines, so absolute times differ; the "
              "full/incremental\nratio and size ordering are the reproduced shape.\n\n",
              total_loc / 1000);

  // --- Parallel engine sweep over paper-shaped corpora -----------------------
  // HardwareThreads() is std::thread::hardware_concurrency() with the
  // documented unknown->1 fallback; a <2-core machine cannot show speedup,
  // so every point carries an explicit underprovisioned flag instead of a
  // silently flat curve.
  int hardware = HardwareThreads();
  bool underprovisioned = hardware < 2;
  const char* scale_env = std::getenv("VC_BENCH_SCALE");
  std::string scale = scale_env != nullptr ? scale_env : "small";
  const int kRepeats = 3;

  if (underprovisioned) {
    std::printf("WARNING: only %d hardware thread(s) — sweep points are recorded as "
                "underprovisioned; speedups are not meaningful on this machine.\n\n",
                hardware);
  }

  TableWriter sweep_table({"Profile", "#LOC", "jobs", "Best Time", "Speedup", "Util",
                           "Imbalance", "Critical Path", "steals"});
  JsonWriter json;
  json.BeginObject();
  json.String("bench", "scalability");
  // v1 carried only jobs/seconds/speedup per sweep point; v2 added per-stage
  // seconds and thread-pool activity; v3 sweeps corpusgen profiles with
  // best-of-N timing and adds real hardware_threads, the underprovisioned
  // flag, and span-analytics (utilization/imbalance/critical-path) per point.
  json.Int("schema_version", 3);
  json.Int("hardware_threads", hardware);
  json.Bool("underprovisioned", underprovisioned);
  json.String("scale", scale);
  json.Int("repeats", kRepeats);
  json.Int("paper_table_loc", total_loc);
  json.Key("profiles").BeginArray();

  // Each sweep point also lands in the run ledger under result/, so
  // `valuecheck history --ledger result/ledger` and `report --html` can chart
  // bench-to-bench perf trends the same way they chart analysis reruns.
  RunLedger ledger(ResultPath("ledger"));
  int64_t bench_start_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::system_clock::now().time_since_epoch())
                               .count();

  for (const std::string& profile_name : testing::CorpusProfileNames()) {
    testing::CorpusProfile profile;
    if (!testing::MakeCorpusProfile(profile_name, scale, 1, &profile)) {
      std::printf("(unknown scale '%s', falling back to small)\n", scale.c_str());
      testing::MakeCorpusProfile(profile_name, "small", 1, &profile);
    }
    auto sources = testing::GenerateCorpusSources(profile);
    int64_t loc = 0;
    for (const auto& [path, content] : sources) {
      loc += static_cast<int64_t>(std::count(content.begin(), content.end(), '\n'));
    }
    std::printf("profile %s/%s: %d files, %lld lines\n", profile.name.c_str(),
                profile.scale.c_str(), profile.files, static_cast<long long>(loc));

    json.BeginObject();
    json.String("profile", profile.name);
    json.Int("files", profile.files);
    json.Int("loc", loc);
    json.Key("sweep").BeginArray();

    double serial_best = 0.0;
    size_t serial_findings = 0;
    for (int jobs : {1, 2, 4, 8}) {
      SweepPoint point = MeasurePoint(sources, jobs, kRepeats, hardware);
      if (jobs == 1) {
        serial_best = point.best_seconds;
        serial_findings = point.findings;
      } else if (point.findings != serial_findings) {
        std::printf("(WARNING: findings differ across jobs: %zu at jobs=1, %zu at "
                    "jobs=%d — determinism regression)\n",
                    serial_findings, point.findings, jobs);
      }
      double speedup =
          point.best_seconds > 0.0 ? serial_best / point.best_seconds : 0.0;

      sweep_table.AddRow(
          {profile.name, std::to_string(loc), std::to_string(jobs),
           FormatSeconds(point.best_seconds), FormatDouble(speedup, 2) + "x",
           FormatDouble(point.perf.mean_utilization, 2),
           FormatDouble(point.perf.imbalance_ratio, 2),
           FormatSeconds(point.perf.critical_path_seconds),
           std::to_string(point.pool.steals)});

      json.BeginObject();
      json.Int("jobs", jobs);
      json.Double("seconds", point.best_seconds);
      json.Double("mean_seconds", point.mean_seconds);
      json.Int("repeats", point.repeats);
      json.Double("speedup", speedup);
      json.Bool("underprovisioned", underprovisioned);
      json.Double("utilization", point.perf.mean_utilization);
      json.Double("imbalance_ratio", point.perf.imbalance_ratio);
      json.Double("critical_path_seconds", point.perf.critical_path_seconds);
      json.Double("serial_fraction", point.perf.serial_fraction);
      json.Int("findings", static_cast<int64_t>(point.findings));
      json.Key("stages").BeginObject();
      json.Double("parse_seconds", point.parse_seconds);
      json.Double("detect_seconds", point.detect_seconds);
      json.EndObject();
      json.Key("thread_pool").BeginObject();
      json.Int("workers", point.pool.workers);
      json.Int("parallel_fors", static_cast<int64_t>(point.pool.parallel_fors));
      json.Int("chunks_executed", static_cast<int64_t>(point.pool.chunks_executed));
      json.Int("steals", static_cast<int64_t>(point.pool.steals));
      json.Double("worker_idle_seconds", point.pool.worker_idle_seconds);
      json.EndObject();
      json.EndObject();

      RunRecord record;
      record.timestamp_ms = bench_start_ms;
      record.label = "bench:scalability " + profile.name + "/" + profile.scale +
                     " jobs=" + std::to_string(jobs);
      record.options_summary = underprovisioned ? "bench underprovisioned" : "bench";
      record.jobs = jobs;
      record.metrics.collected = true;
      record.metrics.analysis_seconds = point.best_seconds;
      record.metrics.parse_seconds = point.parse_seconds;
      record.metrics.detect_seconds = point.detect_seconds;
      record.metrics.pool_workers = point.pool.workers;
      record.metrics.pool_tasks = static_cast<int64_t>(point.pool.tasks_executed);
      record.metrics.pool_steals = static_cast<int64_t>(point.pool.steals);
      record.metrics.pool_idle_seconds = point.pool.worker_idle_seconds;
      record.metrics.perf_collected = true;
      record.metrics.perf_wall_seconds = point.perf.wall_seconds;
      record.metrics.perf_critical_path_seconds = point.perf.critical_path_seconds;
      record.metrics.perf_serial_fraction = point.perf.serial_fraction;
      record.metrics.perf_utilization = point.perf.mean_utilization;
      record.metrics.perf_max_busy_seconds = point.perf.max_busy_seconds;
      record.metrics.perf_mean_busy_seconds = point.perf.mean_busy_seconds;
      record.metrics.perf_imbalance_ratio = point.perf.imbalance_ratio;
      std::string ledger_error;
      if (ledger.Append(std::move(record), &ledger_error).empty()) {
        std::printf("(ledger append failed: %s)\n", ledger_error.c_str());
      }
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  EmitTable("=== Parallel engine: corpus-profile analysis time vs --jobs ===", sweep_table,
            "BENCH_scalability_sweep.csv");
  std::string json_path = ResultPath("BENCH_scalability.json");
  if (FILE* out = std::fopen(json_path.c_str(), "w")) {
    std::fputs(json.str().c_str(), out);
    std::fclose(out);
    std::printf("(json: %s)\n", json_path.c_str());
  }
  std::printf("hardware threads available: %d — speedup saturates at min(jobs, threads).\n",
              hardware);
  return 0;
}

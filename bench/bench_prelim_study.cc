// Reproduces the preliminary study of §3.1 that motivates the cross-scope
// design: snapshot a project's history at 2019 and 2021, run the original
// (authorship-free) liveness analysis on both, diff the unused-definition
// sets, randomly sample 60 of the removed ones, classify each by the commit
// message that removed it, and check how many of the bug-related ones cross
// author scopes.
//
// Paper reference: 325 differential unused definitions; 60 sampled; 42
// bug-related; 39 of the 42 cross author scopes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/corpus/prelim_study.h"

int main() {
  using namespace vc;

  PrelimStudySpec spec;  // paper-scale defaults
  std::printf("Generating two-snapshot history (%d removable unused definitions)...\n",
              spec.total_differential);
  PrelimStudyData data = GeneratePrelimStudy(spec);
  std::printf("  %d commits between the 2019 and 2021 markers\n\n",
              data.snapshot_2021 - data.snapshot_2019);

  PrelimStudyOutcome outcome = RunPrelimStudy(data, spec);

  TableWriter table({"Metric", "Measured", "Paper"});
  table.AddRow({"Differential unused definitions", std::to_string(outcome.differential),
                "325"});
  table.AddRow({"Randomly sampled", std::to_string(outcome.sampled), "60"});
  table.AddRow({"Bug-related (fix commits)", std::to_string(outcome.bug_related), "42"});
  table.AddRow({"...of which cross author scopes", std::to_string(outcome.cross_author),
                "39"});
  EmitTable("=== §3.1 preliminary study: unused definitions removed by later commits ===",
            table, "prelim_study.csv");

  double cross_fraction = outcome.bug_related > 0
                              ? static_cast<double>(outcome.cross_author) / outcome.bug_related
                              : 0.0;
  std::printf("cross-scope fraction among bug fixes: %s (paper: 39/42 = 93%%)\n",
              FormatPercent(cross_fraction).c_str());
  std::printf("=> the observation behind ValueCheck's design: unused-definition bugs "
              "overwhelmingly sit on authorship boundaries\n");
  return 0;
}

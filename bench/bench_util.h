// Shared plumbing for the table/figure reproduction binaries: generate the
// four calibrated applications, run the pipeline, score against ground truth,
// and write artifact-style CSVs under result/.

#ifndef VALUECHECK_BENCH_BENCH_UTIL_H_
#define VALUECHECK_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/corpus/eval.h"
#include "src/corpus/generator.h"
#include "src/corpus/profile.h"
#include "src/support/table_writer.h"

namespace vc {

struct AppEval {
  GeneratedApp app;
  Project project;
  AnalysisReport report;
  ToolEval eval;  // ValueCheck scored against the ledger
};

inline AppEval RunApp(const ProjectProfile& profile,
                      AnalysisOptions options = AnalysisOptions()) {
  // The tables report the paper's detector: the unused-definition checker
  // alone (the other bug classes have their own eval populations).
  options.checkers = {"unused-def"};
  AppEval run;
  run.app = GenerateApp(profile);
  Analysis analysis(options);
  run.project = analysis.BuildFromRepository(run.app.repo);
  run.report = analysis.Run(run.project, &run.app.repo);
  run.eval = EvaluateLocations(run.app.truth, "ValueCheck", LocationsOf(run.report));
  return run;
}

inline std::vector<AppEval> RunAllApps(AnalysisOptions options = AnalysisOptions()) {
  std::vector<AppEval> runs;
  for (const ProjectProfile& profile : AllProfiles()) {
    runs.push_back(RunApp(profile, options));
  }
  return runs;
}

// Is this reported finding a confirmed bug per the ledger?
inline bool IsRealBug(const AppEval& run, const UnusedDefCandidate& cand) {
  const GtSite* site = run.app.truth.Match(cand.file, cand.def_loc.line);
  return site != nullptr && site->is_real_bug;
}

// Best-of-N repeat measurement. Sub-second sweep points are noise-dominated
// when timed once (scheduler wakeups and first-touch page faults easily
// swing +-20%, which used to print "speedups" like 0.87x); the minimum over
// N runs is the standard estimator for the undisturbed cost. Returns
// {best_seconds, mean_seconds}; `fn` runs exactly `repeats` times.
template <typename Fn>
inline std::pair<double, double> BestOfN(int repeats, Fn&& fn) {
  double best = 0.0;
  double total = 0.0;
  repeats = repeats < 1 ? 1 : repeats;
  for (int i = 0; i < repeats; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    total += seconds;
    if (i == 0 || seconds < best) {
      best = seconds;
    }
  }
  return {best, total / repeats};
}

inline std::string ResultPath(const std::string& filename) {
  std::filesystem::create_directories("result");
  return "result/" + filename;
}

// Prints the table and writes the CSV twin under result/.
inline void EmitTable(const std::string& title, const TableWriter& table,
                      const std::string& csv_name) {
  std::printf("%s\n%s", title.c_str(), table.RenderText().c_str());
  std::string path = ResultPath(csv_name);
  if (table.WriteCsv(path)) {
    std::printf("(csv: %s)\n\n", path.c_str());
  } else {
    std::printf("(csv write to %s failed)\n\n", path.c_str());
  }
}

}  // namespace vc

#endif  // VALUECHECK_BENCH_BENCH_UTIL_H_

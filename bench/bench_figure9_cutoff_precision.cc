// Reproduces Figure 9: precision of bug detection at increasing report-count
// cutoffs after familiarity ranking. Reporting only the top 10 findings per
// application yields the highest precision (97.5% in the paper) and precision
// decreases as the cutoff grows — the signal that the DOK ranking puts real
// bugs first.

#include "bench/bench_util.h"

int main() {
  using namespace vc;

  std::vector<AppEval> runs = RunAllApps();

  TableWriter table({"Cutoff (per app)", "#Reported", "#Real Bugs", "Precision"});
  for (size_t cutoff : {10u, 20u, 30u, 40u, 50u, 60u}) {
    int reported = 0;
    int real = 0;
    for (const AppEval& run : runs) {
      for (const UnusedDefCandidate& cand : run.report.Top(cutoff)) {
        ++reported;
        real += IsRealBug(run, cand) ? 1 : 0;
      }
    }
    table.AddRow({std::to_string(cutoff), std::to_string(reported), std::to_string(real),
                  FormatPercent(static_cast<double>(real) / reported, 1)});
  }

  EmitTable("=== Figure 9: precision vs report cutoff after familiarity ranking ===", table,
            "figure_9_detected_bug_dok.csv");
  std::printf("paper: 97.5%% precision at the top-10 cutoff, decreasing with larger cutoffs\n");
  return 0;
}

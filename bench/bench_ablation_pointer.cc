// Design-choice ablation (DESIGN.md / paper §4.1): Andersen's flow-insensitive
// points-to vs a flow-sensitive analysis, measured over every function of the
// four synthesized applications. The paper chooses Andersen's "because of its
// better scalability ... while providing a small difference in helping detect
// unused definitions [31]" — this bench reproduces both halves of that claim:
// the cost gap and the (absence of a) detection-outcome gap.

#include <chrono>

#include "bench/bench_util.h"
#include "src/dataflow/liveness.h"
#include "src/pointer/andersen.h"
#include "src/pointer/flow_sensitive.h"

namespace {

// Pointer-heavy synthetic module: swaps, copies, and derefs across branches
// and loops — the workload where the two analyses actually diverge.
std::string PointerStress(int functions) {
  std::string code;
  for (int f = 0; f < functions; ++f) {
    std::string t = std::to_string(f);
    code += "int ps_" + t + "(int n, int c) {\n";
    code += "  int a_" + t + " = 1;\n  int b_" + t + " = 2;\n  int d_" + t + " = 3;\n";
    code += "  int *p = &a_" + t + ";\n  int *q = &b_" + t + ";\n";
    code += "  if (c > 0) {\n    p = &d_" + t + ";\n  }\n";
    code += "  p = q;\n";  // strong update opportunity
    code += "  while (n > 0) {\n    int *t" + t + " = p;\n    p = q;\n    q = t" + t +
            ";\n    n = n - 1;\n  }\n";
    code += "  return *p + *q;\n}\n";
  }
  return code;
}

}  // namespace

int main() {
  using namespace vc;

  TableWriter table({"Workload", "Functions", "Andersen time", "Flow-sens. time",
                     "Andersen |pts|", "Flow-sens. |pts|", "Alias-rule disagreements"});

  struct Workload {
    std::string name;
    Project project;
  };
  std::vector<Workload> workloads;
  for (const ProjectProfile& profile : AllProfiles()) {
    GeneratedApp app = GenerateApp(profile);
    workloads.push_back({app.name, Project::FromRepository(app.repo)});
  }
  workloads.push_back({"pointer-stress", Project::FromSources({{"ps.c", PointerStress(300)}})});

  for (Workload& workload : workloads) {
    const Project& project = workload.project;

    int functions = 0;
    double andersen_seconds = 0.0;
    double flow_seconds = 0.0;
    size_t andersen_size = 0;
    size_t flow_size = 0;
    int disagreements = 0;

    for (const auto& module : project.modules()) {
      for (const auto& func : module->functions) {
        ++functions;
        auto t0 = std::chrono::steady_clock::now();
        PointsTo andersen(*func);
        auto t1 = std::chrono::steady_clock::now();
        FlowSensitivePointsTo flow(*func);
        auto t2 = std::chrono::steady_clock::now();
        andersen_seconds += std::chrono::duration<double>(t1 - t0).count();
        flow_seconds += std::chrono::duration<double>(t2 - t1).count();

        for (ValueId v = 0; v < func->next_value; ++v) {
          andersen_size += andersen.SlotsPointedBy(v).size();
          flow_size += flow.SlotsPointedBy(v).size();
        }

        // The question that matters to ValueCheck: does either analysis give
        // a different answer to "may this slot be reached through a pointer"
        // for any candidate-eligible slot? (That is the alias rule's input.)
        for (SlotId slot = 0; slot < func->slots.size(); ++slot) {
          if (andersen.SlotIsPointee(slot) != flow.SlotIsPointee(slot)) {
            ++disagreements;
          }
        }
      }
    }

    table.AddRow({workload.name, std::to_string(functions),
                  FormatDouble(andersen_seconds * 1000.0, 1) + "ms",
                  FormatDouble(flow_seconds * 1000.0, 1) + "ms",
                  std::to_string(andersen_size), std::to_string(flow_size),
                  std::to_string(disagreements)});
  }

  EmitTable("=== Ablation: Andersen vs flow-sensitive points-to (§4.1 design choice) ===",
            table, "ablation_pointer_analysis.csv");
  std::printf("expected shape: flow-sensitive pays more time for smaller points-to sets,\n"
              "but the alias-rule answers ValueCheck consumes agree (column = 0), matching\n"
              "the paper's rationale for choosing Andersen's analysis.\n");
  return 0;
}

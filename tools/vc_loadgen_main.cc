// vc_loadgen — TPC-C-style closed-loop load harness for `valuecheck serve`
// (src/server/loadgen.h; DESIGN.md §19).
//
// Each client thread issues a weighted mix of analyze/diff/history/report/ping
// transactions against deterministically generated per-warehouse codebases,
// retrying shed responses with exponential backoff + jitter and reconnecting
// through chaos (server-side --fault-inject quarantine, client-side
// --kill-rate connection drops). The run ends with:
//
//   * a one-page summary on stdout (accounting identity, QPS, percentiles);
//   * --out FILE: the full report as JSON (default result/BENCH_serve.json);
//   * --ledger DIR: a schema-v5 serve record so `valuecheck history`/`report`
//     trend daemon throughput alongside batch runs.
//
// Exit codes: 0 balanced accounting, 1 accounting imbalance (a leaked or
// double-counted transaction — the invariant the chaos run exists to check),
// 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "src/server/loadgen.h"
#include "src/support/fault.h"
#include "src/support/json_writer.h"
#include "src/support/run_ledger.h"

namespace {

void PrintUsage(FILE* out) {
  std::fputs(
      "usage: vc_loadgen (--socket PATH | --port N) [options]\n"
      "\n"
      "  --socket=PATH        daemon Unix-domain socket\n"
      "  --port=N             daemon TCP loopback port\n"
      "  --clients=N          concurrent closed-loop clients (default 4)\n"
      "  --warehouses=N       projects to spread load over (default 2)\n"
      "  --transactions=N     transactions per client (default 25)\n"
      "  --seed=N             warehouse/mix/jitter seed (default 1)\n"
      "  --jobs=N             jobs forwarded in each request (default 1)\n"
      "  --deadline-ms=X      per-request deadline forwarded to the server\n"
      "  --fault-inject=S:R   SEED:RATE chaos forwarded in analyze requests\n"
      "  --edit-rate=X        probability an analyze sends an edited snapshot\n"
      "                       (default 0.5)\n"
      "  --kill-rate=X        probability of killing the connection right\n"
      "                       after sending (default 0)\n"
      "  --max-retries=N      retry budget per transaction (default 6)\n"
      "  --timeout=SEC        per-response wait (default 60)\n"
      "  --files=N            generated files per warehouse (default 3)\n"
      "  --out=FILE           JSON report path (default result/BENCH_serve.json;\n"
      "                       empty string disables)\n"
      "  --ledger=DIR         append a serve record to the run ledger\n"
      "  --label=NAME         ledger record label (default: loadgen)\n",
      out);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool EnsureParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) {
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::fprintf(stderr, "vc_loadgen: cannot create directory %s: %s\n",
                 parent.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

struct Args {
  vc::LoadGenOptions options;
  std::string out_path = "result/BENCH_serve.json";
  std::string ledger_dir;
  std::string label = "loadgen";
};

bool ParseArgs(const std::vector<std::string>& args, Args& out) {
  auto bad = [&](const std::string& message) {
    std::fprintf(stderr, "vc_loadgen: %s\n", message.c_str());
    PrintUsage(stderr);
    return false;
  };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto need_value = [&]() {
      if (has_value) {
        return true;
      }
      if (i + 1 >= args.size()) {
        return bad(name + " expects a value");
      }
      value = args[++i];
      return true;
    };
    auto parse_int = [&](int& into, int floor) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < floor) {
        return bad(name + " expects an integer >= " + std::to_string(floor) +
                   ", got '" + value + "'");
      }
      into = static_cast<int>(parsed);
      return true;
    };
    auto parse_double = [&](double& into) {
      char* end = nullptr;
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return bad(name + " expects a non-negative number, got '" + value + "'");
      }
      into = parsed;
      return true;
    };
    if (name == "--socket") {
      if (!need_value()) return false;
      out.options.socket_path = value;
    } else if (name == "--port") {
      if (!need_value()) return false;
      if (!parse_int(out.options.tcp_port, 1)) return false;
    } else if (name == "--clients") {
      if (!need_value()) return false;
      if (!parse_int(out.options.clients, 1)) return false;
    } else if (name == "--warehouses") {
      if (!need_value()) return false;
      if (!parse_int(out.options.warehouses, 1)) return false;
    } else if (name == "--transactions") {
      if (!need_value()) return false;
      if (!parse_int(out.options.transactions_per_client, 1)) return false;
    } else if (name == "--seed") {
      if (!need_value()) return false;
      char* end = nullptr;
      unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return bad("--seed expects an unsigned integer, got '" + value + "'");
      }
      out.options.seed = parsed;
    } else if (name == "--jobs") {
      if (!need_value()) return false;
      if (!parse_int(out.options.jobs, 0)) return false;
    } else if (name == "--deadline-ms") {
      if (!need_value()) return false;
      if (!parse_double(out.options.deadline_ms)) return false;
    } else if (name == "--fault-inject") {
      if (!need_value()) return false;
      std::string error;
      if (!vc::FaultInjector::Parse(value, &error).has_value()) {
        return bad("--fault-inject: " + error);
      }
      out.options.fault_spec = value;
    } else if (name == "--edit-rate") {
      if (!need_value()) return false;
      if (!parse_double(out.options.edit_rate)) return false;
    } else if (name == "--kill-rate") {
      if (!need_value()) return false;
      if (!parse_double(out.options.kill_rate)) return false;
    } else if (name == "--max-retries") {
      if (!need_value()) return false;
      if (!parse_int(out.options.max_retries, 0)) return false;
    } else if (name == "--timeout") {
      if (!need_value()) return false;
      if (!parse_double(out.options.request_timeout_seconds)) return false;
    } else if (name == "--files") {
      if (!need_value()) return false;
      if (!parse_int(out.options.files_per_warehouse, 1)) return false;
    } else if (name == "--out") {
      if (!need_value()) return false;
      out.out_path = value;
    } else if (name == "--ledger") {
      if (!need_value()) return false;
      out.ledger_dir = value;
    } else if (name == "--label") {
      if (!need_value()) return false;
      out.label = value;
    } else {
      return bad("unknown option " + arg);
    }
  }
  if (out.options.socket_path.empty() && out.options.tcp_port == 0) {
    return bad("a target is required: --socket PATH or --port N");
  }
  return true;
}

// The BENCH_serve.json document: run metadata + the report body.
std::string BenchJson(const Args& args, const vc::LoadGenReport& report,
                      int64_t timestamp_ms) {
  vc::JsonWriter json;
  json.BeginObject();
  json.String("bench", "serve");
  json.Int("timestamp_ms", timestamp_ms);
  json.Key("options").BeginObject();
  json.String("target", !args.options.socket_path.empty()
                            ? "unix:" + args.options.socket_path
                            : "tcp:127.0.0.1:" + std::to_string(args.options.tcp_port));
  json.Int("clients", args.options.clients);
  json.Int("warehouses", args.options.warehouses);
  json.Int("transactions_per_client", args.options.transactions_per_client);
  json.Int("seed", static_cast<int64_t>(args.options.seed));
  json.Int("jobs", args.options.jobs);
  json.Double("deadline_ms", args.options.deadline_ms);
  json.String("fault_inject", args.options.fault_spec);
  json.Double("edit_rate", args.options.edit_rate);
  json.Double("kill_rate", args.options.kill_rate);
  json.Int("max_retries", args.options.max_retries);
  json.EndObject();
  json.Raw("report", report.ToJson());
  json.EndObject();
  return json.str();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(std::vector<std::string>(argv + 1, argv + argc), args)) {
    return 2;
  }

  vc::LoadGenReport report = vc::RunLoadGen(args.options);
  int64_t timestamp_ms = NowMs();

  std::printf(
      "vc_loadgen: %llu transaction(s) in %.2fs (%.1f tx/s) — %llu ok, "
      "%llu degraded, %llu shed, %llu deadline, %llu failed; %llu retry(ies), "
      "%llu kill(s), %llu reconnect(s)\n",
      static_cast<unsigned long long>(report.transactions), report.wall_seconds,
      report.qps, static_cast<unsigned long long>(report.succeeded),
      static_cast<unsigned long long>(report.degraded),
      static_cast<unsigned long long>(report.shed),
      static_cast<unsigned long long>(report.deadline),
      static_cast<unsigned long long>(report.failed),
      static_cast<unsigned long long>(report.retried),
      static_cast<unsigned long long>(report.kills),
      static_cast<unsigned long long>(report.reconnects));
  std::printf("vc_loadgen: latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms "
              "(mean %.1f, max %.1f, n=%llu)\n",
              report.p50_ms, report.p95_ms, report.p99_ms, report.mean_ms,
              report.max_ms, static_cast<unsigned long long>(report.latency_count));
  std::printf("vc_loadgen: accounting %s\n",
              report.Balanced() ? "balanced" : "IMBALANCED");

  if (!args.out_path.empty()) {
    if (!EnsureParentDir(args.out_path)) {
      return 2;
    }
    std::ofstream out(args.out_path, std::ios::trunc | std::ios::binary);
    out << BenchJson(args, report, timestamp_ms) << "\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "vc_loadgen: cannot write %s\n", args.out_path.c_str());
      return 2;
    }
    std::printf("vc_loadgen: wrote %s\n", args.out_path.c_str());
  }

  if (!args.ledger_dir.empty()) {
    vc::RunRecord record;
    record.label = args.label;
    record.timestamp_ms = timestamp_ms;
    record.jobs = args.options.jobs;
    record.options_summary =
        "loadgen clients=" + std::to_string(args.options.clients) +
        " warehouses=" + std::to_string(args.options.warehouses) +
        (args.options.fault_spec.empty() ? ""
                                         : " fault-inject=" + args.options.fault_spec) +
        (args.options.kill_rate > 0.0
             ? " kill-rate=" + std::to_string(args.options.kill_rate)
             : "");
    record.metrics.serve_collected = true;
    record.metrics.serve_wall_seconds = report.wall_seconds;
    record.metrics.serve_clients = args.options.clients;
    record.metrics.serve_requests = static_cast<int64_t>(report.transactions);
    record.metrics.serve_succeeded = static_cast<int64_t>(report.succeeded);
    record.metrics.serve_degraded = static_cast<int64_t>(report.degraded);
    record.metrics.serve_shed = static_cast<int64_t>(report.shed);
    record.metrics.serve_deadline = static_cast<int64_t>(report.deadline);
    record.metrics.serve_failed = static_cast<int64_t>(report.failed);
    record.metrics.serve_retried = static_cast<int64_t>(report.retried);
    record.metrics.serve_qps = report.qps;
    record.metrics.serve_p50_ms = report.p50_ms;
    record.metrics.serve_p95_ms = report.p95_ms;
    record.metrics.serve_p99_ms = report.p99_ms;
    std::string error;
    vc::RunLedger ledger(args.ledger_dir);
    std::string run_id = ledger.Append(std::move(record), &error);
    if (run_id.empty()) {
      std::fprintf(stderr, "vc_loadgen: ledger append failed: %s\n", error.c_str());
      return 2;
    }
    std::printf("vc_loadgen: recorded run %s in %s\n", run_id.c_str(),
                ledger.LedgerFile().c_str());
  }

  return report.Balanced() ? 0 : 1;
}

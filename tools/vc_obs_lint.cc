// vc_obs_lint — validator for the observability artifacts valuecheck emits,
// used by tools/check.sh's observability smoke and handy interactively:
//
//   vc_obs_lint events FILE   one JSON object per line, parsed with the
//                             project json_reader; "event"/"seq"/"ts_us"
//                             present on every line; "seq" dense from 0 and
//                             strictly increasing in file order; first event
//                             run_start, last run_end
//   vc_obs_lint prom FILE [--require-cache] [--require-serve]
//                             Prometheus text exposition 0.0.4: every sample
//                             line is `name{...} value` with a [a-zA-Z_:]
//                             leading character, every metric has a # TYPE,
//                             and at least one vc_ sample exists. Any
//                             vc_cache_* samples (the incremental engine's
//                             cache.* family) must be non-negative and come
//                             with the vc_cache_files/vc_cache_functions
//                             gauges; --require-cache additionally fails the
//                             lint when the family is absent entirely (used
//                             by the incremental smoke in tools/check.sh).
//                             Any vc_serve_* samples (the daemon's serve.*
//                             family) must be non-negative, carry the
//                             request-latency histogram, and satisfy the
//                             admission accounting identity
//                             requests == ok+degraded+shed+deadline+failed;
//                             --require-serve additionally fails the lint
//                             when the family is absent (the serve smoke)
//   vc_obs_lint folded FILE   collapsed-stack: every line is
//                             `frame(;frame)* <positive integer>`, and the
//                             file is non-empty
//   vc_obs_lint perf FILE     --perf-report JSON: required fields in the
//                             schema's stable order, critical-path time
//                             <= wall time, every utilization in [0, 1],
//                             worker ids dense from 0
//
// Exit 0 on success (prints one summary line), 1 on any violation (first
// violation printed with its line number), 2 on usage/IO errors.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/json_reader.h"

namespace {

int Fail(const std::string& path, int line_no, const std::string& message) {
  std::fprintf(stderr, "vc_obs_lint: %s:%d: %s\n", path.c_str(), line_no, message.c_str());
  return 1;
}

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "vc_obs_lint: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

int LintEvents(const std::string& path) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  if (lines->empty()) {
    return Fail(path, 0, "event stream is empty");
  }
  int64_t expected_seq = 0;
  std::string first_type;
  std::string last_type;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      return Fail(path, line_no, "empty line in JSONL stream");
    }
    std::string error;
    std::optional<vc::JsonValue> value = vc::ParseJson(line, &error);
    if (!value.has_value()) {
      return Fail(path, line_no, "unparsable JSON: " + error);
    }
    if (!value->IsObject()) {
      return Fail(path, line_no, "line is not a JSON object");
    }
    if (!value->Has("event") || !value->Has("seq") || !value->Has("ts_us")) {
      return Fail(path, line_no, "missing required field (event/seq/ts_us)");
    }
    int64_t seq = value->GetInt("seq", -1);
    if (seq != expected_seq) {
      return Fail(path, line_no,
                  "seq " + std::to_string(seq) + ", expected " + std::to_string(expected_seq) +
                      " (must be dense and strictly increasing)");
    }
    ++expected_seq;
    if (value->GetInt("ts_us", -1) < 0) {
      return Fail(path, line_no, "negative ts_us");
    }
    last_type = value->GetString("event");
    if (i == 0) {
      first_type = last_type;
    }
  }
  if (first_type != "run_start") {
    return Fail(path, 1, "first event is '" + first_type + "', expected run_start");
  }
  if (last_type != "run_end") {
    return Fail(path, static_cast<int>(lines->size()),
                "last event is '" + last_type + "', expected run_end");
  }
  std::printf("vc_obs_lint: %s: %zu event(s) OK\n", path.c_str(), lines->size());
  return 0;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
              (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) {
      return false;
    }
  }
  return true;
}

// Base metric name of a sample line: everything before the first '{' or ' '.
std::string SampleName(const std::string& line) {
  size_t end = line.find_first_of("{ ");
  return end == std::string::npos ? line : line.substr(0, end);
}

int LintProm(const std::string& path, bool require_cache, bool require_serve) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  std::vector<std::string> typed;  // names declared by # TYPE, in order
  size_t samples = 0;
  bool any_vc = false;
  size_t cache_samples = 0;
  bool cache_files_gauge = false;
  bool cache_functions_gauge = false;
  size_t serve_samples = 0;
  bool serve_latency_histogram = false;
  // Admission accounting counters; -1 = not seen in the exposition.
  double serve_requests = -1, serve_ok = -1, serve_degraded = -1;
  double serve_shed = -1, serve_deadline = -1, serve_failed = -1;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name, type;
      meta >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        if (!ValidMetricName(name)) {
          return Fail(path, line_no, "bad metric name '" + name + "' in TYPE line");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return Fail(path, line_no, "unknown metric type '" + type + "'");
        }
        typed.push_back(name);
      }
      continue;
    }
    // Sample line: NAME[{labels}] VALUE
    std::string name = SampleName(line);
    if (!ValidMetricName(name)) {
      return Fail(path, line_no, "bad sample metric name '" + name + "'");
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return Fail(path, line_no, "sample line has no value");
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    bool inf_nan = value == "+Inf" || value == "-Inf" || value == "NaN";
    if (!inf_nan && (end == value.c_str() || *end != '\0')) {
      return Fail(path, line_no, "unparsable sample value '" + value + "'");
    }
    // Histogram series (_bucket/_sum/_count) belong to their base TYPE name.
    bool declared = false;
    for (const std::string& t : typed) {
      if (name == t || name == t + "_bucket" || name == t + "_sum" || name == t + "_count") {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Fail(path, line_no, "sample '" + name + "' has no preceding # TYPE declaration");
    }
    if (name.rfind("vc_", 0) == 0) {
      any_vc = true;
    }
    // Incremental cache family: counters and gauges are monotone tallies of
    // parse/detect/disk traffic — a negative value means the publisher
    // regressed, not that the run was merely cold.
    if (name.rfind("vc_cache_", 0) == 0) {
      ++cache_samples;
      if (std::strtod(value.c_str(), nullptr) < 0) {
        return Fail(path, line_no, "cache metric '" + name + "' is negative");
      }
      if (name == "vc_cache_files") {
        cache_files_gauge = true;
      }
      if (name == "vc_cache_functions") {
        cache_functions_gauge = true;
      }
    }
    // Daemon family: every serve.* metric is a tally or a high-water mark,
    // so a negative sample always means a publisher bug. The request
    // counters additionally obey the admission-control accounting identity
    // checked after the scan.
    if (name.rfind("vc_serve_", 0) == 0) {
      ++serve_samples;
      double v = std::strtod(value.c_str(), nullptr);
      if (v < 0) {
        return Fail(path, line_no, "serve metric '" + name + "' is negative");
      }
      if (name == "vc_serve_request_seconds_count") {
        serve_latency_histogram = true;
      } else if (name == "vc_serve_requests_total") {
        serve_requests = v;
      } else if (name == "vc_serve_ok_total") {
        serve_ok = v;
      } else if (name == "vc_serve_degraded_total") {
        serve_degraded = v;
      } else if (name == "vc_serve_shed_total") {
        serve_shed = v;
      } else if (name == "vc_serve_deadline_total") {
        serve_deadline = v;
      } else if (name == "vc_serve_failed_total") {
        serve_failed = v;
      }
    }
    ++samples;
  }
  if (samples == 0) {
    return Fail(path, 0, "no samples in exposition");
  }
  if (!any_vc) {
    return Fail(path, 0, "no vc_-prefixed samples (wrong file?)");
  }
  if (require_cache && cache_samples == 0) {
    return Fail(path, 0, "no vc_cache_* samples (incremental cache metrics missing)");
  }
  if (cache_samples > 0 && (!cache_files_gauge || !cache_functions_gauge)) {
    return Fail(path, 0,
                "vc_cache_* family present without the vc_cache_files/"
                "vc_cache_functions gauges (partial publish)");
  }
  if (require_serve && serve_samples == 0) {
    return Fail(path, 0, "no vc_serve_* samples (daemon metrics missing)");
  }
  if (serve_samples > 0) {
    if (serve_requests < 0 || serve_ok < 0 || serve_degraded < 0 || serve_shed < 0 ||
        serve_deadline < 0 || serve_failed < 0) {
      return Fail(path, 0,
                  "vc_serve_* family present without the full request-accounting "
                  "counter set (requests/ok/degraded/shed/deadline/failed)");
    }
    if (!serve_latency_histogram) {
      return Fail(path, 0,
                  "vc_serve_* family present without the vc_serve_request_seconds "
                  "histogram");
    }
    const double accounted = serve_ok + serve_degraded + serve_shed + serve_deadline +
                             serve_failed;
    if (serve_requests != accounted) {
      return Fail(path, 0,
                  "serve accounting identity violated: vc_serve_requests_total " +
                      std::to_string(serve_requests) + " != ok+degraded+shed+deadline+failed " +
                      std::to_string(accounted));
    }
  }
  std::printf(
      "vc_obs_lint: %s: %zu sample(s), %zu metric(s), %zu cache sample(s), "
      "%zu serve sample(s) OK\n",
      path.c_str(), samples, typed.size(), cache_samples, serve_samples);
  return 0;
}

// Perf-report lint: the contract of `valuecheck analyze --perf-report`.
// Structural validity plus the physical invariants the span analytics
// guarantee by construction — critical path no longer than the wall clock,
// every utilization a fraction, worker ids dense from 0 — and the stable
// top-level field order the schema promises.
int LintPerf(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "vc_obs_lint: cannot read %s\n", path.c_str());
    return 2;
  }
  std::string raw((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::string error;
  std::optional<vc::JsonValue> value = vc::ParseJson(raw, &error);
  if (!value.has_value()) {
    return Fail(path, 1, "unparsable JSON: " + error);
  }
  if (!value->IsObject()) {
    return Fail(path, 1, "perf report is not a JSON object");
  }
  static const char* kFieldOrder[] = {
      "schema_version", "wall_seconds",       "jobs",
      "hardware_threads", "span_count",       "dropped_spans",
      "critical_path",  "serial_fraction",    "total_busy_seconds",
      "workers",        "mean_utilization",   "imbalance",
      "steals"};
  size_t cursor = 0;
  for (const char* key : kFieldOrder) {
    if (!value->Has(key)) {
      return Fail(path, 1, std::string("missing field '") + key + "'");
    }
    size_t pos = raw.find(std::string("\"") + key + "\":", cursor);
    if (pos == std::string::npos) {
      return Fail(path, 1, std::string("field '") + key +
                               "' out of order (stable field order violated)");
    }
    cursor = pos;
  }
  if (value->GetInt("schema_version") < 1) {
    return Fail(path, 1, "schema_version must be >= 1");
  }
  double wall = value->GetDouble("wall_seconds");
  if (wall < 0) {
    return Fail(path, 1, "negative wall_seconds");
  }
  if (value->GetInt("jobs") < 1 || value->GetInt("hardware_threads") < 1) {
    return Fail(path, 1, "jobs and hardware_threads must be >= 1");
  }
  if (value->GetInt("span_count", -1) < 0 || value->GetInt("dropped_spans", -1) < 0) {
    return Fail(path, 1, "negative span_count/dropped_spans");
  }
  const vc::JsonValue& cp = value->Get("critical_path");
  double cp_seconds = cp.GetDouble("seconds");
  if (cp_seconds < 0 || cp_seconds > wall * (1.0 + 1e-6) + 1e-9) {
    return Fail(path, 1, "critical_path.seconds " + std::to_string(cp_seconds) +
                             " exceeds wall_seconds " + std::to_string(wall));
  }
  double cp_fraction = cp.GetDouble("fraction");
  if (cp_fraction < 0 || cp_fraction > 1) {
    return Fail(path, 1, "critical_path.fraction outside [0, 1]");
  }
  for (const vc::JsonValue& step : cp.Get("folded").Items()) {
    if (step.GetString("stack").empty()) {
      return Fail(path, 1, "empty stack in critical_path.folded");
    }
    if (step.GetDouble("seconds", -1) < 0) {
      return Fail(path, 1, "negative seconds in critical_path.folded");
    }
  }
  double serial = value->GetDouble("serial_fraction");
  if (serial < 0 || serial > 1) {
    return Fail(path, 1, "serial_fraction outside [0, 1]");
  }
  const vc::JsonValue& workers = value->Get("workers");
  if (!workers.IsArray()) {
    return Fail(path, 1, "workers is not an array");
  }
  const std::vector<vc::JsonValue>& items = workers.Items();
  for (size_t i = 0; i < items.size(); ++i) {
    const vc::JsonValue& w = items[i];
    if (w.GetInt("id", -1) != static_cast<int64_t>(i)) {
      return Fail(path, 1, "worker ids are not dense from 0 (worker " +
                               std::to_string(i) + ")");
    }
    double util = w.GetDouble("utilization", -1);
    if (util < 0 || util > 1) {
      return Fail(path, 1, "worker " + std::to_string(i) + " utilization outside [0, 1]");
    }
    if (w.GetDouble("busy_seconds", -1) < 0 || w.GetDouble("idle_seconds", -1) < 0) {
      return Fail(path, 1, "worker " + std::to_string(i) + " has negative busy/idle time");
    }
    for (const vc::JsonValue& v : w.Get("timeline").Items()) {
      double f = v.AsDouble(-1);
      if (f < 0 || f > 1) {
        return Fail(path, 1, "worker " + std::to_string(i) + " timeline value outside [0, 1]");
      }
    }
  }
  double mean_util = value->GetDouble("mean_utilization");
  if (mean_util < 0 || mean_util > 1) {
    return Fail(path, 1, "mean_utilization outside [0, 1]");
  }
  const vc::JsonValue& imbalance = value->Get("imbalance");
  if (imbalance.GetDouble("ratio", -1) < 0) {
    return Fail(path, 1, "negative imbalance.ratio");
  }
  const vc::JsonValue& steals = value->Get("steals");
  if (steals.GetInt("count", -1) < 0) {
    return Fail(path, 1, "negative steals.count");
  }
  for (const vc::JsonValue& bucket : steals.Get("latency_ns_log2").Items()) {
    if (bucket.AsDouble(-1) < 0) {
      return Fail(path, 1, "negative steal latency bucket");
    }
  }
  std::printf("vc_obs_lint: %s: perf report, %zu worker(s) OK\n", path.c_str(), items.size());
  return 0;
}

int LintFolded(const std::string& path) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  size_t stacks = 0;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      return Fail(path, line_no, "expected 'stack weight', got '" + line + "'");
    }
    const std::string weight = line.substr(space + 1);
    char* end = nullptr;
    long long parsed = std::strtoll(weight.c_str(), &end, 10);
    if (end == weight.c_str() || *end != '\0' || parsed <= 0) {
      return Fail(path, line_no, "weight must be a positive integer, got '" + weight + "'");
    }
    const std::string stack = line.substr(0, space);
    if (stack.front() == ';' || stack.back() == ';' || stack.find(";;") != std::string::npos) {
      return Fail(path, line_no, "malformed frame list '" + stack + "'");
    }
    ++stacks;
  }
  if (stacks == 0) {
    return Fail(path, 0, "no stacks in profile");
  }
  std::printf("vc_obs_lint: %s: %zu stack(s) OK\n", path.c_str(), stacks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* kUsage =
      "usage: vc_obs_lint <events|prom|folded|perf> FILE [--require-cache] [--require-serve]\n";
  if (argc < 3) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  bool require_cache = false;
  bool require_serve = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--require-cache") {
      require_cache = true;
    } else if (flag == "--require-serve") {
      require_serve = true;
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
  }
  if ((require_cache || require_serve) && mode != "prom") {
    std::fprintf(stderr, "vc_obs_lint: --require-cache/--require-serve only apply to prom mode\n");
    return 2;
  }
  if (mode == "events") {
    return LintEvents(path);
  }
  if (mode == "prom") {
    return LintProm(path, require_cache, require_serve);
  }
  if (mode == "folded") {
    return LintFolded(path);
  }
  if (mode == "perf") {
    return LintPerf(path);
  }
  std::fprintf(stderr, "vc_obs_lint: unknown mode '%s' (expected events, prom, folded, perf)\n",
               mode.c_str());
  return 2;
}

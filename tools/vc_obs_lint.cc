// vc_obs_lint — validator for the observability artifacts valuecheck emits,
// used by tools/check.sh's observability smoke and handy interactively:
//
//   vc_obs_lint events FILE   one JSON object per line, parsed with the
//                             project json_reader; "event"/"seq"/"ts_us"
//                             present on every line; "seq" dense from 0 and
//                             strictly increasing in file order; first event
//                             run_start, last run_end
//   vc_obs_lint prom FILE     Prometheus text exposition 0.0.4: every sample
//                             line is `name{...} value` with a [a-zA-Z_:]
//                             leading character, every metric has a # TYPE,
//                             and at least one vc_ sample exists
//   vc_obs_lint folded FILE   collapsed-stack: every line is
//                             `frame(;frame)* <positive integer>`, and the
//                             file is non-empty
//
// Exit 0 on success (prints one summary line), 1 on any violation (first
// violation printed with its line number), 2 on usage/IO errors.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/json_reader.h"

namespace {

int Fail(const std::string& path, int line_no, const std::string& message) {
  std::fprintf(stderr, "vc_obs_lint: %s:%d: %s\n", path.c_str(), line_no, message.c_str());
  return 1;
}

std::optional<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "vc_obs_lint: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

int LintEvents(const std::string& path) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  if (lines->empty()) {
    return Fail(path, 0, "event stream is empty");
  }
  int64_t expected_seq = 0;
  std::string first_type;
  std::string last_type;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      return Fail(path, line_no, "empty line in JSONL stream");
    }
    std::string error;
    std::optional<vc::JsonValue> value = vc::ParseJson(line, &error);
    if (!value.has_value()) {
      return Fail(path, line_no, "unparsable JSON: " + error);
    }
    if (!value->IsObject()) {
      return Fail(path, line_no, "line is not a JSON object");
    }
    if (!value->Has("event") || !value->Has("seq") || !value->Has("ts_us")) {
      return Fail(path, line_no, "missing required field (event/seq/ts_us)");
    }
    int64_t seq = value->GetInt("seq", -1);
    if (seq != expected_seq) {
      return Fail(path, line_no,
                  "seq " + std::to_string(seq) + ", expected " + std::to_string(expected_seq) +
                      " (must be dense and strictly increasing)");
    }
    ++expected_seq;
    if (value->GetInt("ts_us", -1) < 0) {
      return Fail(path, line_no, "negative ts_us");
    }
    last_type = value->GetString("event");
    if (i == 0) {
      first_type = last_type;
    }
  }
  if (first_type != "run_start") {
    return Fail(path, 1, "first event is '" + first_type + "', expected run_start");
  }
  if (last_type != "run_end") {
    return Fail(path, static_cast<int>(lines->size()),
                "last event is '" + last_type + "', expected run_end");
  }
  std::printf("vc_obs_lint: %s: %zu event(s) OK\n", path.c_str(), lines->size());
  return 0;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
              (i > 0 && std::isdigit(static_cast<unsigned char>(c)));
    if (!ok) {
      return false;
    }
  }
  return true;
}

// Base metric name of a sample line: everything before the first '{' or ' '.
std::string SampleName(const std::string& line) {
  size_t end = line.find_first_of("{ ");
  return end == std::string::npos ? line : line.substr(0, end);
}

int LintProm(const std::string& path) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  std::vector<std::string> typed;  // names declared by # TYPE, in order
  size_t samples = 0;
  bool any_vc = false;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name, type;
      meta >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        if (!ValidMetricName(name)) {
          return Fail(path, line_no, "bad metric name '" + name + "' in TYPE line");
        }
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return Fail(path, line_no, "unknown metric type '" + type + "'");
        }
        typed.push_back(name);
      }
      continue;
    }
    // Sample line: NAME[{labels}] VALUE
    std::string name = SampleName(line);
    if (!ValidMetricName(name)) {
      return Fail(path, line_no, "bad sample metric name '" + name + "'");
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return Fail(path, line_no, "sample line has no value");
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    bool inf_nan = value == "+Inf" || value == "-Inf" || value == "NaN";
    if (!inf_nan && (end == value.c_str() || *end != '\0')) {
      return Fail(path, line_no, "unparsable sample value '" + value + "'");
    }
    // Histogram series (_bucket/_sum/_count) belong to their base TYPE name.
    bool declared = false;
    for (const std::string& t : typed) {
      if (name == t || name == t + "_bucket" || name == t + "_sum" || name == t + "_count") {
        declared = true;
        break;
      }
    }
    if (!declared) {
      return Fail(path, line_no, "sample '" + name + "' has no preceding # TYPE declaration");
    }
    if (name.rfind("vc_", 0) == 0) {
      any_vc = true;
    }
    ++samples;
  }
  if (samples == 0) {
    return Fail(path, 0, "no samples in exposition");
  }
  if (!any_vc) {
    return Fail(path, 0, "no vc_-prefixed samples (wrong file?)");
  }
  std::printf("vc_obs_lint: %s: %zu sample(s), %zu metric(s) OK\n", path.c_str(), samples,
              typed.size());
  return 0;
}

int LintFolded(const std::string& path) {
  std::optional<std::vector<std::string>> lines = ReadLines(path);
  if (!lines.has_value()) {
    return 2;
  }
  size_t stacks = 0;
  for (size_t i = 0; i < lines->size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    const std::string& line = (*lines)[i];
    if (line.empty()) {
      continue;
    }
    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      return Fail(path, line_no, "expected 'stack weight', got '" + line + "'");
    }
    const std::string weight = line.substr(space + 1);
    char* end = nullptr;
    long long parsed = std::strtoll(weight.c_str(), &end, 10);
    if (end == weight.c_str() || *end != '\0' || parsed <= 0) {
      return Fail(path, line_no, "weight must be a positive integer, got '" + weight + "'");
    }
    const std::string stack = line.substr(0, space);
    if (stack.front() == ';' || stack.back() == ';' || stack.find(";;") != std::string::npos) {
      return Fail(path, line_no, "malformed frame list '" + stack + "'");
    }
    ++stacks;
  }
  if (stacks == 0) {
    return Fail(path, 0, "no stacks in profile");
  }
  std::printf("vc_obs_lint: %s: %zu stack(s) OK\n", path.c_str(), stacks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: vc_obs_lint <events|prom|folded> FILE\n");
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  if (mode == "events") {
    return LintEvents(path);
  }
  if (mode == "prom") {
    return LintProm(path);
  }
  if (mode == "folded") {
    return LintFolded(path);
  }
  std::fprintf(stderr, "vc_obs_lint: unknown mode '%s' (expected events, prom, folded)\n",
               mode.c_str());
  return 2;
}

// vc_corpusgen: streams a deterministic paper-shaped Mini-C corpus to disk.
//
//   vc_corpusgen --profile linux-like --scale medium --out /tmp/corpus
//   vc_corpusgen --history /tmp/h.vchist --commits 50
//
// Profiles mirror the paper's scalability subjects (many-small-files
// "linux-like", fewer-huge-files "mysql-like"); scales run from smoke-sized
// (small, ~10k LOC) through acceptance-sized (medium, >100k LOC) to
// sweep-sized (large, >1M LOC). Generation is streamed file-by-file, so the
// corpus is never held resident.
//
// --history switches to commit-history mode: instead of a directory of
// sources it writes one .vchist file (the format `valuecheck analyze
// --history` reads) synthesized by src/testing/history_gen.h — a module
// graph evolved through rewrites, whitespace touches, file adds/removes,
// renames, and signature changes. This is what tools/check.sh's incremental
// smoke and bench/bench_incremental replay. Exit codes: 0 success, 2 usage
// or I/O error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "src/testing/corpusgen.h"
#include "src/testing/history_gen.h"
#include "src/vcs/history_io.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: vc_corpusgen --profile NAME --scale SCALE --out DIR\n"
      "                    [--files N] [--seed S] [--quiet]\n"
      "       vc_corpusgen --history FILE [--commits N] [--modules M]\n"
      "                    [--seed S] [--quiet]\n"
      "\n"
      "  --profile NAME  corpus shape: linux-like (many small files) or\n"
      "                  mysql-like (few huge files)\n"
      "  --scale SCALE   small (~10k LOC), medium (>100k LOC), large (>1M LOC)\n"
      "  --out DIR       output directory (created if missing)\n"
      "  --files N       override the profile's file count (shape per file\n"
      "                  is unchanged; useful for quick smokes)\n"
      "  --history FILE  write a synthesized commit history (.vchist) instead\n"
      "                  of a source corpus; replay it with\n"
      "                  `valuecheck analyze --history FILE [--incremental]`\n"
      "  --commits N     history mode: number of commits (default 50)\n"
      "  --modules M     history mode: initial module count (default 4)\n"
      "  --seed S        corpus seed (default 1); same seed, same bytes\n"
      "  --quiet         suppress the summary line\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name;
  std::string scale;
  std::string out_dir;
  std::string history_path;
  uint64_t seed = 1;
  int files_override = -1;
  int commits = 50;
  int modules = 4;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vc_corpusgen: %s needs a value\n", flag);
        PrintUsage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--profile") {
      profile_name = next("--profile");
    } else if (arg == "--scale") {
      scale = next("--scale");
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--files") {
      files_override = std::atoi(next("--files"));
    } else if (arg == "--history") {
      history_path = next("--history");
    } else if (arg == "--commits") {
      commits = std::atoi(next("--commits"));
    } else if (arg == "--modules") {
      modules = std::atoi(next("--modules"));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "vc_corpusgen: unknown argument '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  if (!history_path.empty()) {
    if (!profile_name.empty() || !scale.empty() || !out_dir.empty()) {
      std::fprintf(stderr,
                   "vc_corpusgen: --history is a separate mode; drop "
                   "--profile/--scale/--out\n");
      return 2;
    }
    if (commits < 1 || modules < 1) {
      std::fprintf(stderr, "vc_corpusgen: --commits and --modules must be >= 1\n");
      return 2;
    }
    vc::testing::HistoryGenOptions options;
    options.seed = seed;
    options.commits = commits;
    options.initial_modules = modules;
    vc::Repository repo = vc::testing::GenerateHistory(options);
    std::ofstream out(history_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "vc_corpusgen: cannot write %s\n", history_path.c_str());
      return 2;
    }
    out << vc::SaveHistory(repo);
    out.flush();
    if (!out) {
      std::fprintf(stderr, "vc_corpusgen: write to %s failed\n", history_path.c_str());
      return 2;
    }
    if (!quiet) {
      std::printf("history seed=%llu: %d commit(s), %d initial module(s) -> %s\n",
                  static_cast<unsigned long long>(seed), repo.NumCommits(), modules,
                  history_path.c_str());
    }
    return 0;
  }

  if (profile_name.empty() || scale.empty() || out_dir.empty()) {
    std::fprintf(stderr, "vc_corpusgen: --profile, --scale and --out are required\n");
    PrintUsage(stderr);
    return 2;
  }

  vc::testing::CorpusProfile profile;
  if (!vc::testing::MakeCorpusProfile(profile_name, scale, seed, &profile)) {
    std::fprintf(stderr, "vc_corpusgen: unknown profile '%s' or scale '%s'\n",
                 profile_name.c_str(), scale.c_str());
    PrintUsage(stderr);
    return 2;
  }
  if (files_override > 0) {
    profile.files = files_override;
  }

  vc::testing::CorpusStats stats;
  std::string error;
  if (!vc::testing::WriteCorpus(profile, out_dir, &stats, &error)) {
    std::fprintf(stderr, "vc_corpusgen: %s\n", error.c_str());
    return 2;
  }
  if (!quiet) {
    std::printf("corpus %s/%s seed=%llu: %d files, %lld lines, %lld bytes -> %s\n",
                profile.name.c_str(), profile.scale.c_str(),
                static_cast<unsigned long long>(profile.seed), stats.files,
                static_cast<long long>(stats.lines),
                static_cast<long long>(stats.bytes), out_dir.c_str());
  }
  return 0;
}

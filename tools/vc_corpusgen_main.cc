// vc_corpusgen: streams a deterministic paper-shaped Mini-C corpus to disk.
//
//   vc_corpusgen --profile linux-like --scale medium --out /tmp/corpus
//
// Profiles mirror the paper's scalability subjects (many-small-files
// "linux-like", fewer-huge-files "mysql-like"); scales run from smoke-sized
// (small, ~10k LOC) through acceptance-sized (medium, >100k LOC) to
// sweep-sized (large, >1M LOC). Generation is streamed file-by-file, so the
// corpus is never held resident. Exit codes: 0 success, 2 usage or I/O
// error.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/testing/corpusgen.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: vc_corpusgen --profile NAME --scale SCALE --out DIR\n"
      "                    [--files N] [--seed S] [--quiet]\n"
      "\n"
      "  --profile NAME  corpus shape: linux-like (many small files) or\n"
      "                  mysql-like (few huge files)\n"
      "  --scale SCALE   small (~10k LOC), medium (>100k LOC), large (>1M LOC)\n"
      "  --out DIR       output directory (created if missing)\n"
      "  --files N       override the profile's file count (shape per file\n"
      "                  is unchanged; useful for quick smokes)\n"
      "  --seed S        corpus seed (default 1); same seed, same bytes\n"
      "  --quiet         suppress the summary line\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name;
  std::string scale;
  std::string out_dir;
  uint64_t seed = 1;
  int files_override = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vc_corpusgen: %s needs a value\n", flag);
        PrintUsage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--profile") {
      profile_name = next("--profile");
    } else if (arg == "--scale") {
      scale = next("--scale");
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--seed") {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--files") {
      files_override = std::atoi(next("--files"));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "vc_corpusgen: unknown argument '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }

  if (profile_name.empty() || scale.empty() || out_dir.empty()) {
    std::fprintf(stderr, "vc_corpusgen: --profile, --scale and --out are required\n");
    PrintUsage(stderr);
    return 2;
  }

  vc::testing::CorpusProfile profile;
  if (!vc::testing::MakeCorpusProfile(profile_name, scale, seed, &profile)) {
    std::fprintf(stderr, "vc_corpusgen: unknown profile '%s' or scale '%s'\n",
                 profile_name.c_str(), scale.c_str());
    PrintUsage(stderr);
    return 2;
  }
  if (files_override > 0) {
    profile.files = files_override;
  }

  vc::testing::CorpusStats stats;
  std::string error;
  if (!vc::testing::WriteCorpus(profile, out_dir, &stats, &error)) {
    std::fprintf(stderr, "vc_corpusgen: %s\n", error.c_str());
    return 2;
  }
  if (!quiet) {
    std::printf("corpus %s/%s seed=%llu: %d files, %lld lines, %lld bytes -> %s\n",
                profile.name.c_str(), profile.scale.c_str(),
                static_cast<unsigned long long>(profile.seed), stats.files,
                static_cast<long long>(stats.lines),
                static_cast<long long>(stats.bytes), out_dir.c_str());
  }
  return 0;
}

#!/usr/bin/env bash
# Full verification matrix: plain build + ctest, then the same under
# AddressSanitizer(+UBSan) and ThreadSanitizer. The sanitizer configs catch
# what the plain run cannot — heap misuse in the parser/IR layers (ASan) and
# data races in the thread pool / metrics / trace hot paths (TSan).
#
# Usage: tools/check.sh [plain|asan|tsan]...   (default: all three)

set -euo pipefail
cd "$(dirname "$0")/.."

CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain asan tsan)
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"
  shift
  local build_dir="build-check-${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" >/dev/null
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

for config in "${CONFIGS[@]}"; do
  case "${config}" in
    plain) run_config plain ;;
    asan)  run_config asan -DVC_ENABLE_ASAN=ON ;;
    tsan)  run_config tsan -DVC_ENABLE_TSAN=ON ;;
    *)
      echo "unknown config '${config}' (expected plain, asan, tsan)" >&2
      exit 2
      ;;
  esac
done

echo "=== all configs passed: ${CONFIGS[*]} ==="

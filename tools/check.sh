#!/usr/bin/env bash
# Full verification matrix: plain build + ctest, then the same under
# AddressSanitizer(+UBSan), ThreadSanitizer, and standalone UBSan. The
# sanitizer configs catch what the plain run cannot — heap misuse in the
# parser/IR layers (ASan), data races in the thread pool / metrics / trace
# hot paths (TSan), and UB with fail-fast (-fno-sanitize-recover) semantics
# in the UBSan config.
#
# Usage: tools/check.sh [plain|asan|tsan|ubsan]...   (default: plain asan tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain asan tsan)
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
if [ "${JOBS}" -lt 2 ]; then
  # Scaling assertions (speedup >= 2x etc.) are meaningless on one core; the
  # bench records its points as underprovisioned and the smoke below only
  # checks determinism, never speed.
  echo "warning: underprovisioned machine (${JOBS} core(s) < 2); scaling checks verify determinism only" >&2
fi

run_config() {
  local name="$1"
  shift
  local build_dir="build-check-${name}"
  echo "=== [${name}] configure ==="
  cmake -B "${build_dir}" -S . "$@" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${build_dir}" -j "${JOBS}" >/dev/null
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
  self_diff_smoke "${name}" "${build_dir}"
  checker_smoke "${name}" "${build_dir}"
  fuzz_smoke "${name}" "${build_dir}"
  fault_smoke "${name}" "${build_dir}"
  observability_smoke "${name}" "${build_dir}"
  scaling_smoke "${name}" "${build_dir}"
  incremental_smoke "${name}" "${build_dir}"
  serve_smoke "${name}" "${build_dir}"
}

# Per-checker smoke: every registered checker (from --list-checkers, baselines
# included) must run alone over the examples corpus without a usage or
# internal error (exit 0 or 1), and an unknown checker name must be rejected
# with exit 2 plus the usage text.
checker_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  echo "=== [${name}] per-checker smoke ==="
  local checkers
  checkers="$("${vc}" --list-checkers | awk -F'|' 'NR > 2 && NF > 2 { gsub(/ /, "", $2); if ($2 != "") print $2 }')"
  if [ "$(printf '%s\n' "${checkers}" | wc -l)" -lt 5 ]; then
    echo "checker smoke: --list-checkers returned fewer than 5 checkers" >&2
    return 1
  fi
  local checker rc
  for checker in ${checkers}; do
    rc=0
    "${vc}" analyze --checkers "${checker}" --jobs 2 examples/corpus >/dev/null 2>&1 || rc=$?
    if [ "${rc}" -ge 2 ]; then
      echo "checker smoke: --checkers ${checker} failed (exit ${rc})" >&2
      return 1
    fi
  done
  rc=0
  local usage
  usage="$("${vc}" analyze --checkers bogus examples/corpus 2>&1 >/dev/null)" || rc=$?
  if [ "${rc}" -ne 2 ]; then
    echo "checker smoke: --checkers bogus exited ${rc}, want 2" >&2
    return 1
  fi
  if ! printf '%s' "${usage}" | grep -q "unknown checker"; then
    echo "checker smoke: --checkers bogus did not explain the rejection" >&2
    return 1
  fi
  if ! printf '%s' "${usage}" | grep -q "usage"; then
    echo "checker smoke: --checkers bogus did not print usage" >&2
    return 1
  fi
  echo "checker smoke: ok"
}

# Differential fuzz smoke: a fixed-seed vc_fuzz campaign (~200 generated
# programs, every oracle: parse cleanliness, --jobs determinism, metrics
# parity, JSON round-trip, metamorphic fingerprint stability). Time-boxed to
# 30s so sanitizer-slowed builds stop at the budget instead of timing out.
fuzz_smoke() {
  local name="$1"
  local build_dir="$2"
  echo "=== [${name}] fuzz smoke ==="
  local corpus
  corpus="$(mktemp -d)"
  trap 'rm -rf "${corpus}"; trap - RETURN' RETURN
  if ! "${build_dir}/tools/vc_fuzz" --seed 42 --iters 200 --time-budget 30 \
      --quiet --corpus-dir "${corpus}"; then
    echo "fuzz smoke: oracle failures — reproducers:" >&2
    find "${corpus}" -name MANIFEST.txt -exec cat {} \; >&2
    return 1
  fi
  echo "fuzz smoke: ok"
}

# Self-diff smoke: analyze the examples corpus twice into a fresh ledger and
# require `diff --check` to report zero new findings — the analyzer must be
# deterministic run-to-run, and the ledger/diff plumbing must agree with
# itself under every sanitizer.
self_diff_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  echo "=== [${name}] self-diff smoke ==="
  local ledger
  ledger="$(mktemp -d)"
  # Disarm the trap as it fires: RETURN traps persist past this function and
  # would re-run in the caller, where ${ledger} is out of scope (set -u).
  trap 'rm -rf "${ledger}"; trap - RETURN' RETURN
  # The corpus deliberately contains findings, so analyze exits 1; only
  # exit >= 2 (usage/parse error) is a failure here.
  local rc=0
  "${vc}" analyze --ledger "${ledger}" --jobs 2 examples/corpus >/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "self-diff smoke: first analyze failed (exit ${rc})" >&2
    return 1
  fi
  rc=0
  "${vc}" analyze --ledger "${ledger}" --jobs 2 examples/corpus >/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "self-diff smoke: second analyze failed (exit ${rc})" >&2
    return 1
  fi
  "${vc}" diff --ledger "${ledger}" --check
  "${vc}" report --ledger "${ledger}" --html "${ledger}/dashboard.html" >/dev/null
  if [ ! -s "${ledger}/dashboard.html" ]; then
    echo "self-diff smoke: dashboard not written" >&2
    return 1
  fi
  echo "self-diff smoke: ok"
}

# Fault-injection smoke: the robustness contract under every sanitizer.
# 1) the degraded_run oracle over generated programs (fault-injected pipeline
#    completes, survivors are a subset of the clean run, identical at any
#    --jobs); 2) a 10% fault-injected analyze over the examples corpus must
#    degrade gracefully (exit 0/1), never abort; 3) the same run under
#    --strict with rate 1.0 must exit exactly 3.
fault_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  echo "=== [${name}] fault-injection smoke ==="
  local corpus
  corpus="$(mktemp -d)"
  trap 'rm -rf "${corpus}"; trap - RETURN' RETURN
  if ! "${build_dir}/tools/vc_fuzz" --seed 42 --iters 60 --time-budget 20 \
      --oracles degraded_run --quiet --corpus-dir "${corpus}"; then
    echo "fault smoke: degraded_run oracle failures — reproducers:" >&2
    find "${corpus}" -name MANIFEST.txt -exec cat {} \; >&2
    return 1
  fi
  local rc=0
  "${vc}" analyze --fault-inject 42:0.10 --jobs 2 examples/corpus >/dev/null 2>&1 || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "fault smoke: 10% fault injection did not degrade gracefully (exit ${rc})" >&2
    return 1
  fi
  rc=0
  "${vc}" analyze --strict --fault-inject 42:1.0 --jobs 2 examples/corpus >/dev/null 2>&1 || rc=$?
  if [ "${rc}" -ne 3 ]; then
    echo "fault smoke: --strict on a fully-quarantined run exited ${rc}, want 3" >&2
    return 1
  fi
  echo "fault smoke: ok"
}

# Observability smoke: one analyze with every observability channel on
# (--progress heartbeat, --events JSONL, --profile collapsed stacks,
# --metrics-out Prometheus dump) must produce well-formed artifacts — each
# validated structurally by vc_obs_lint — and byte-identical stdout findings
# versus a flag-less run: instrumentation may never perturb results.
observability_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  local lint="${build_dir}/tools/vc_obs_lint"
  echo "=== [${name}] observability smoke ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"; trap - RETURN' RETURN
  # The corpus contains findings, so exit 1 is success; only >= 2 fails.
  local rc=0
  "${vc}" analyze --jobs 2 --metrics examples/corpus \
    >"${tmp}/plain.out" 2>/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "observability smoke: baseline analyze failed (exit ${rc})" >&2
    return 1
  fi
  rc=0
  "${vc}" analyze --jobs 2 --metrics --progress \
    --events "${tmp}/events.jsonl" \
    --profile "${tmp}/profile.folded" \
    --metrics-out "${tmp}/metrics.prom" \
    examples/corpus >"${tmp}/instrumented.out" 2>/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "observability smoke: instrumented analyze failed (exit ${rc})" >&2
    return 1
  fi
  if ! cmp -s "${tmp}/plain.out" "${tmp}/instrumented.out"; then
    echo "observability smoke: instrumentation changed stdout findings" >&2
    diff "${tmp}/plain.out" "${tmp}/instrumented.out" | head -20 >&2
    return 1
  fi
  "${lint}" events "${tmp}/events.jsonl" || {
    echo "observability smoke: events stream failed lint" >&2; return 1; }
  "${lint}" prom "${tmp}/metrics.prom" || {
    echo "observability smoke: Prometheus dump failed lint" >&2; return 1; }
  "${lint}" folded "${tmp}/profile.folded" || {
    echo "observability smoke: collapsed profile failed lint" >&2; return 1; }
  echo "observability smoke: ok"
}

# Scaling smoke: generate a small corpusgen profile to disk, analyze it at
# --jobs 1 and --jobs <all cores> and require byte-identical stdout (the core
# scaling invariant), then validate the --perf-report analytics with
# `vc_obs_lint perf` and append both runs to a ledger to exercise the perf
# columns of the run record. Speed is never asserted — see the
# underprovisioned warning above.
scaling_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  local gen="${build_dir}/tools/vc_corpusgen"
  local lint="${build_dir}/tools/vc_obs_lint"
  echo "=== [${name}] scaling smoke ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"; trap - RETURN' RETURN
  # 40 linux-like files keep sanitizer-slowed runs in the seconds range.
  "${gen}" --profile linux-like --scale small --files 40 --quiet \
    --out "${tmp}/corpus" || {
    echo "scaling smoke: vc_corpusgen failed" >&2; return 1; }
  local rc=0
  "${vc}" analyze --jobs 1 --ledger "${tmp}/ledger" \
    --perf-report "${tmp}/perf_j1.json" "${tmp}/corpus" \
    >"${tmp}/j1.out" 2>/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "scaling smoke: --jobs 1 analyze failed (exit ${rc})" >&2
    return 1
  fi
  rc=0
  "${vc}" analyze --jobs 0 --ledger "${tmp}/ledger" \
    --perf-report "${tmp}/perf_jmax.json" "${tmp}/corpus" \
    >"${tmp}/jmax.out" 2>/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "scaling smoke: --jobs 0 analyze failed (exit ${rc})" >&2
    return 1
  fi
  if ! cmp -s "${tmp}/j1.out" "${tmp}/jmax.out"; then
    echo "scaling smoke: findings differ between --jobs 1 and --jobs 0" >&2
    diff "${tmp}/j1.out" "${tmp}/jmax.out" | head -20 >&2
    return 1
  fi
  "${lint}" perf "${tmp}/perf_j1.json" || {
    echo "scaling smoke: --jobs 1 perf report failed lint" >&2; return 1; }
  "${lint}" perf "${tmp}/perf_jmax.json" || {
    echo "scaling smoke: --jobs 0 perf report failed lint" >&2; return 1; }
  if [ "$(wc -l < "${tmp}/ledger/runs.jsonl" 2>/dev/null || echo 0)" -lt 2 ]; then
    echo "scaling smoke: ledger did not record both runs" >&2
    return 1
  fi
  echo "scaling smoke: ok"
}

# Incremental smoke: synthesize a commit history (vc_corpusgen --history),
# analyze it cold (full run at the head commit) and via --incremental replay,
# and require byte-identical CSV findings — the engine's equivalence
# contract, end to end through the real binary. A second replay over the same
# --cache-dir must report cache reuse (disk loads and carried detect
# results), and the incremental run's Prometheus dump must contain a
# well-formed vc_cache_* family (vc_obs_lint prom --require-cache).
incremental_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  local gen="${build_dir}/tools/vc_corpusgen"
  local lint="${build_dir}/tools/vc_obs_lint"
  echo "=== [${name}] incremental smoke ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"; trap - RETURN' RETURN
  # 30 commits over 3 modules keeps sanitizer-slowed replays in the seconds
  # range while still mixing every edit shape the generator produces.
  "${gen}" --history "${tmp}/history.vchist" --commits 30 --modules 3 \
    --seed 7 --quiet || {
    echo "incremental smoke: vc_corpusgen --history failed" >&2; return 1; }
  # Histories can legitimately contain findings, so exit 1 is success; only
  # >= 2 (usage/internal error) fails.
  local rc=0
  "${vc}" analyze --history "${tmp}/history.vchist" --format=csv \
    >"${tmp}/full.csv" 2>/dev/null || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "incremental smoke: full analyze failed (exit ${rc})" >&2
    return 1
  fi
  rc=0
  "${vc}" analyze --history "${tmp}/history.vchist" --incremental \
    --cache-dir "${tmp}/cache" --format=csv \
    >"${tmp}/inc.csv" 2>"${tmp}/inc.err" || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "incremental smoke: incremental analyze failed (exit ${rc})" >&2
    return 1
  fi
  if ! cmp -s "${tmp}/full.csv" "${tmp}/inc.csv"; then
    echo "incremental smoke: incremental findings differ from the full run" >&2
    diff "${tmp}/full.csv" "${tmp}/inc.csv" | head -20 >&2
    return 1
  fi
  # Cold-restart replay over the populated cache dir: still identical, and
  # the cumulative summary line must show the disk tier actually serving
  # ("disk cache N loaded" with N > 0) plus carried detect results.
  rc=0
  "${vc}" analyze --history "${tmp}/history.vchist" --incremental \
    --cache-dir "${tmp}/cache" --metrics-out "${tmp}/inc.prom" --format=csv \
    >"${tmp}/inc2.csv" 2>"${tmp}/inc2.err" || rc=$?
  if [ "${rc}" -ge 2 ]; then
    echo "incremental smoke: cached replay failed (exit ${rc})" >&2
    return 1
  fi
  if ! cmp -s "${tmp}/full.csv" "${tmp}/inc2.csv"; then
    echo "incremental smoke: cached replay findings differ from the full run" >&2
    diff "${tmp}/full.csv" "${tmp}/inc2.csv" | head -20 >&2
    return 1
  fi
  if ! grep -Eq 'disk cache [1-9][0-9]* loaded' "${tmp}/inc2.err"; then
    echo "incremental smoke: cached replay reported zero disk cache loads" >&2
    grep 'incremental replay:' "${tmp}/inc2.err" >&2 || true
    return 1
  fi
  if ! grep -Eq '\([1-9][0-9]* carried' "${tmp}/inc2.err"; then
    echo "incremental smoke: cached replay carried zero detect results" >&2
    grep 'incremental replay:' "${tmp}/inc2.err" >&2 || true
    return 1
  fi
  "${lint}" prom "${tmp}/inc.prom" --require-cache || {
    echo "incremental smoke: cache metrics failed lint" >&2; return 1; }
  echo "incremental smoke: ok"
}

# Serve smoke: the daemon's robustness contract end to end through the real
# binaries. Start `valuecheck serve` on a Unix socket, drive it with a
# chaos-flavored vc_loadgen burst (10% fault injection), and require: the
# load generator's client-side accounting to balance (exit 0), the daemon to
# drain cleanly on SIGTERM with balanced server-side accounting (exit 0), the
# vc_serve_* Prometheus family to pass vc_obs_lint (including the accounting
# identity), the bench JSON to carry the latency/QPS summary, and the shared
# ledger to record both sides of the run.
serve_smoke() {
  local name="$1"
  local build_dir="$2"
  local vc="${build_dir}/tools/valuecheck"
  local loadgen="${build_dir}/tools/vc_loadgen"
  local lint="${build_dir}/tools/vc_obs_lint"
  echo "=== [${name}] serve smoke ==="
  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"; trap - RETURN' RETURN
  "${vc}" serve --socket "${tmp}/sock" --max-inflight 2 --max-queue 8 \
    --ledger "${tmp}/ledger" --metrics-out "${tmp}/serve.prom" --label smoke \
    >"${tmp}/serve.out" 2>"${tmp}/serve.err" &
  local serve_pid=$!
  # Wait for the startup handshake line; sanitizer builds start slowly.
  local waited=0
  while ! grep -q "serving on" "${tmp}/serve.out" 2>/dev/null; do
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "serve smoke: daemon exited before accepting connections" >&2
      cat "${tmp}/serve.err" >&2
      return 1
    fi
    if [ "${waited}" -ge 300 ]; then
      echo "serve smoke: daemon did not start within 30s" >&2
      kill "${serve_pid}" 2>/dev/null || true
      return 1
    fi
    sleep 0.1
    waited=$((waited + 1))
  done
  local rc=0
  "${loadgen}" --socket "${tmp}/sock" --clients 4 --warehouses 2 \
    --transactions 6 --seed 7 --files 2 --fault-inject 42:0.10 \
    --out "${tmp}/BENCH_serve.json" --ledger "${tmp}/ledger" \
    >"${tmp}/loadgen.out" 2>&1 || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "serve smoke: vc_loadgen failed (exit ${rc})" >&2
    cat "${tmp}/loadgen.out" >&2
    kill "${serve_pid}" 2>/dev/null || true
    return 1
  fi
  kill -TERM "${serve_pid}"
  rc=0
  wait "${serve_pid}" || rc=$?
  if [ "${rc}" -ne 0 ]; then
    echo "serve smoke: daemon drain failed (exit ${rc})" >&2
    cat "${tmp}/serve.err" >&2
    return 1
  fi
  "${lint}" prom "${tmp}/serve.prom" --require-serve || {
    echo "serve smoke: vc_serve_* metrics failed lint" >&2; return 1; }
  local key
  for key in '"p50_ms"' '"p99_ms"' '"qps"' '"succeeded"'; do
    if ! grep -q "${key}" "${tmp}/BENCH_serve.json"; then
      echo "serve smoke: bench JSON missing ${key}" >&2
      return 1
    fi
  done
  if [ "$(wc -l < "${tmp}/ledger/runs.jsonl" 2>/dev/null || echo 0)" -lt 2 ]; then
    echo "serve smoke: ledger did not record both the loadgen and the drain" >&2
    return 1
  fi
  echo "serve smoke: ok"
}

for config in "${CONFIGS[@]}"; do
  case "${config}" in
    plain) run_config plain ;;
    asan)  run_config asan -DVC_ENABLE_ASAN=ON ;;
    tsan)  run_config tsan -DVC_ENABLE_TSAN=ON ;;
    ubsan) run_config ubsan -DVC_ENABLE_UBSAN=ON ;;
    *)
      echo "unknown config '${config}' (expected plain, asan, tsan, ubsan)" >&2
      exit 2
      ;;
  esac
done

echo "=== all configs passed: ${CONFIGS[*]} ==="

// vc_fuzz — differential fuzzing front end over src/testing.
//
// Generates seeded Mini-C programs, runs every enabled oracle on each
// (see src/testing/oracle.h), and on failure delta-debugs the program down to
// a small reproducer written to --corpus-dir. Deterministic: the same
// --seed/--iters pair replays the identical campaign; a MANIFEST's
// program_seed replays one program via --replay.
//
//   vc_fuzz --seed 42 --iters 500
//   vc_fuzz --seed 1 --iters 200 --time-budget 30 --corpus-dir fuzz-failures
//   vc_fuzz --replay 1234567890123456789
//   vc_fuzz --seed 7 --iters 50 --oracles jobs_determinism,metamorphic
//   vc_fuzz --seed 42 --iters 200 --inject-bug     # oracle demo: must fail
//
// Exit codes: 0 = all oracles passed, 1 = failures found, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/checkers/registry.h"
#include "src/testing/fuzz.h"
#include "src/testing/oracle.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: vc_fuzz [options]\n"
               "\n"
               "  --seed N          campaign seed (default 1)\n"
               "  --iters N         programs to generate and check (default 100)\n"
               "  --time-budget S   stop after S seconds (default: none)\n"
               "  --oracles LIST    comma-separated subset of:\n"
               "                    clean_frontend jobs_determinism metrics_parity\n"
               "                    json_round_trip metamorphic degraded_run\n"
               "                    (default: all)\n"
               "  --checkers LIST   comma-separated checker names the analyzed runs\n"
               "                    enable (default: the registry's default set)\n"
               "  --corpus-dir DIR  write minimized reproducers here (default:\n"
               "                    fuzz-failures; pass '' to keep in memory)\n"
               "  --max-files N     files per generated program (default 3)\n"
               "  --no-minimize     keep failing programs unreduced\n"
               "  --replay SEED     check exactly one program generated from SEED\n"
               "  --inject-bug      simulate a detector merge bug in parallel runs\n"
               "                    (the jobs_determinism oracle must catch it)\n"
               "  --quiet           suppress progress output\n"
               "  --help            this text\n");
}

bool ParseInt(const char* text, long long* value) {
  char* end = nullptr;
  *value = std::strtoll(text, &end, 10);
  return end != text && *end == '\0';
}

bool ParseU64(const char* text, uint64_t* value) {
  char* end = nullptr;
  *value = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  vc::testing::FuzzOptions options;
  options.corpus_dir = "fuzz-failures";
  options.progress = &std::cerr;
  bool quiet = false;
  bool replay = false;
  uint64_t replay_seed = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vc_fuzz: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else if (arg == "--seed") {
      if (!ParseU64(next("--seed"), &options.seed)) {
        std::fprintf(stderr, "vc_fuzz: bad --seed value\n");
        return 2;
      }
    } else if (arg == "--iters") {
      long long value = 0;
      if (!ParseInt(next("--iters"), &value) || value < 0) {
        std::fprintf(stderr, "vc_fuzz: bad --iters value\n");
        return 2;
      }
      options.iterations = static_cast<int>(value);
    } else if (arg == "--time-budget") {
      options.time_budget_seconds = std::atof(next("--time-budget"));
    } else if (arg == "--oracles") {
      std::string list = next("--oracles");
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) {
          std::optional<vc::testing::OracleKind> kind =
              vc::testing::OracleKindFromName(name);
          if (!kind.has_value()) {
            std::fprintf(stderr, "vc_fuzz: unknown oracle '%s'\n", name.c_str());
            return 2;
          }
          options.oracle.enabled.insert(*kind);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      if (options.oracle.enabled.empty()) {
        std::fprintf(stderr, "vc_fuzz: --oracles selected nothing\n");
        return 2;
      }
    } else if (arg == "--checkers") {
      std::string list = next("--checkers");
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string name = list.substr(
            start, comma == std::string::npos ? std::string::npos : comma - start);
        if (!name.empty()) {
          if (vc::CheckerRegistry::Global().Find(name) == nullptr) {
            std::fprintf(stderr, "vc_fuzz: unknown checker '%s'\n", name.c_str());
            return 2;
          }
          options.oracle.checkers.push_back(name);
        }
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
      if (options.oracle.checkers.empty()) {
        std::fprintf(stderr, "vc_fuzz: --checkers selected nothing\n");
        return 2;
      }
    } else if (arg == "--corpus-dir") {
      options.corpus_dir = next("--corpus-dir");
    } else if (arg == "--max-files") {
      long long value = 0;
      if (!ParseInt(next("--max-files"), &value) || value < 1) {
        std::fprintf(stderr, "vc_fuzz: bad --max-files value\n");
        return 2;
      }
      options.gen.max_files = static_cast<int>(value);
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--replay") {
      replay = true;
      if (!ParseU64(next("--replay"), &replay_seed)) {
        std::fprintf(stderr, "vc_fuzz: bad --replay value\n");
        return 2;
      }
    } else if (arg == "--inject-bug") {
      options.oracle.parallel_fault = vc::testing::DropOverwrittenFindingsFault();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "vc_fuzz: unknown flag '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (quiet) {
    options.progress = nullptr;
  }

  if (replay) {
    // One program, straight from the given seed (this is what a MANIFEST's
    // program_seed names). Reuse the campaign with a single iteration whose
    // derived seed is forced to the replayed one by shifting the campaign
    // seed space: generate directly instead.
    vc::testing::TestProgram program = vc::testing::GenerateProgram(replay_seed, options.gen);
    vc::testing::OracleOptions oracle_options = options.oracle;
    oracle_options.mutation_seed = replay_seed;
    vc::testing::OracleRunner runner(oracle_options);
    vc::testing::OracleVerdict verdict = runner.Check(program);
    if (!quiet) {
      for (const vc::testing::SourceFile& file : program.files) {
        std::cerr << "--- " << file.path << " (" << file.lines.size() << " lines)\n";
      }
    }
    if (verdict.Passed()) {
      std::printf("vc_fuzz: replay of seed %llu passed all oracles\n",
                  static_cast<unsigned long long>(replay_seed));
      return 0;
    }
    for (const vc::testing::OracleFailure& failure : verdict.failures) {
      std::printf("vc_fuzz: replay FAILURE oracle=%s%s%s detail=%s\n",
                  vc::testing::OracleKindName(failure.oracle),
                  failure.transform.empty() ? "" : " transform=",
                  failure.transform.c_str(), failure.detail.c_str());
    }
    return 1;
  }

  vc::testing::FuzzResult result = vc::testing::RunFuzzCampaign(options);
  std::printf("vc_fuzz: %d iteration(s) in %.1fs, %zu failure(s)\n", result.iterations_run,
              result.seconds, result.failures.size());
  for (const vc::testing::FuzzFailure& failure : result.failures) {
    std::printf("  iteration %d seed %llu oracle %s%s%s: %s\n", failure.iteration,
                static_cast<unsigned long long>(failure.program_seed),
                vc::testing::OracleKindName(failure.oracle),
                failure.transform.empty() ? "" : " transform ", failure.transform.c_str(),
                failure.detail.c_str());
    if (!failure.reproducer_dir.empty()) {
      std::printf("    reproducer: %s (%d lines)\n", failure.reproducer_dir.c_str(),
                  failure.reproducer.TotalLines());
    }
  }
  return result.Clean() ? 0 : 1;
}

// valuecheck — the command-line front end over the vc::Analysis facade.
//
// Subcommands:
//
//   valuecheck analyze [options] <file.c|dir>... | --history <file.vchist>
//       Run the pipeline (the default when the first argument is not a
//       subcommand name, so `valuecheck src/` keeps working). Two modes:
//       directory/file mode analyzes Mini-C sources from disk without
//       authorship (every unused definition, unranked — a precise dead-store
//       checker); history mode loads a .vchist commit history (see
//       src/vcs/history_io.h) and runs the full pipeline with cross-scope
//       filtering, pruning, and familiarity ranking. With --ledger DIR the
//       run (findings + fingerprints + metrics) is appended to the run
//       ledger for later diffs.
//
//   valuecheck diff [--ledger DIR] [runA runB] [--check]
//       Classify findings across two ledger runs as new/fixed/persistent by
//       stable fingerprint and compare metrics. --check exits non-zero on
//       new findings or metric regressions — the CI gate.
//
//   valuecheck history [--ledger DIR]
//       Table of recorded runs.
//
//   valuecheck report [--ledger DIR] --html FILE
//       Self-contained HTML dashboard (findings, deltas, trend sparklines).
//
//   valuecheck serve [--socket PATH | --port N] [options]
//       Long-lived analysis daemon (DESIGN.md §19): warm per-project
//       incremental state, bounded admission with load shedding, per-request
//       deadlines and quarantine. SIGTERM/SIGINT drains in-flight requests
//       and flushes the ledger/metrics artifacts before exiting; drive it
//       with vc_loadgen.
//
// Every analyze flag maps onto a vc::AnalysisOptions field (or a
// report/output control); the flag table below is the single source of truth
// and also renders --help.
//
// analyze exit codes: 0 no findings, 1 findings, 2 usage/parse error,
// 3 quarantined units under --strict (graceful mode reports the quarantine on
// stderr and in the schema-v7 report but keeps the 0/1 contract).
//
// Observability flags (--metrics, --metrics-out, --trace, --profile,
// --events, --progress) only ever write to stderr or side files: findings on
// stdout are byte-identical with any combination of them on or off.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/checkers/checker.h"
#include "src/checkers/registry.h"
#include "src/core/analysis.h"
#include "src/core/html_dashboard.h"
#include "src/core/incremental.h"
#include "src/core/report_formats.h"
#include "src/core/run_diff.h"
#include "src/server/server.h"
#include "src/support/events.h"
#include "src/support/logging.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"
#include "src/support/profile_export.h"
#include "src/support/run_ledger.h"
#include "src/support/shutdown.h"
#include "src/support/span_analysis.h"
#include "src/support/string_util.h"
#include "src/support/table_writer.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/vcs/history_io.h"

namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "valuecheck: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Creates the parent directory of an output file path (no-op for bare
// filenames). Returns false with a complaint when creation fails — output
// flags must not silently drop their artifact.
bool EnsureParentDir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) {
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    std::fprintf(stderr, "valuecheck: cannot create directory %s: %s\n",
                 parent.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

std::string FormatTimestamp(int64_t timestamp_ms) {
  if (timestamp_ms <= 0) {
    return "-";
  }
  std::time_t seconds = static_cast<std::time_t>(timestamp_ms / 1000);
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_utc);
  return buf;
}

// ---------------------------------------------------------------------------
// analyze
// ---------------------------------------------------------------------------

struct CliOptions {
  std::string history_path;
  std::string format = "text";
  std::string trace_path;
  std::string profile_path;
  std::string perf_report_path;
  std::string events_path;
  std::string metrics_out_path;
  std::string ledger_dir;
  std::string label;
  std::string cache_dir;
  bool incremental = false;
  bool metrics = false;
  bool progress = false;
  int top = -1;
  bool all_scopes = false;
  bool strict = false;
  vc::AnalysisOptions analysis;
  std::vector<std::string> inputs;
};

// One registered command-line flag. `value_name` is empty for boolean
// switches; `maps_to` names the AnalysisOptions field (or output control) the
// flag drives, and is rendered in --help so the CLI surface documents the
// API surface.
struct FlagSpec {
  const char* name;        // without the value part, e.g. "--jobs"
  const char* value_name;  // e.g. "N"; nullptr for switches
  const char* maps_to;     // e.g. "AnalysisOptions::jobs"
  const char* help;
  // Applies the flag; returns false (after printing to stderr) on a bad value.
  bool (*apply)(CliOptions&, const std::string& value);
};

const FlagSpec kFlags[] = {
    {"--history", "FILE", "input mode",
     "load a vchist commit history (enables authorship, cross-scope\n"
     "filtering, and familiarity ranking)",
     [](CliOptions& o, const std::string& v) {
       o.history_path = v;
       return true;
     }},
    {"--incremental", nullptr, "incremental engine",
     "replay the --history commits through the incremental engine:\n"
     "each commit re-parses only its touched files and re-runs\n"
     "checkers only on the dirty function slice, yet yields the\n"
     "complete finding set as of that commit (byte-identical to a\n"
     "full run). Per-commit work accounting goes to stderr; the\n"
     "report printed on stdout is the one for the head commit",
     [](CliOptions& o, const std::string&) {
       o.incremental = true;
       return true;
     }},
    {"--cache-dir", "DIR", "incremental engine",
     "persist the per-file analysis cache under DIR so a later\n"
     "--incremental run in a fresh process skips re-analyzing\n"
     "functions whose file content, checker set, and configuration\n"
     "are unchanged; corrupt entries degrade to a re-parse via the\n"
     "quarantine channel, never a failed run",
     [](CliOptions& o, const std::string& v) {
       o.cache_dir = v;
       return true;
     }},
    {"--jobs", "N", "AnalysisOptions::jobs",
     "parallel worker lanes for parse/lower and detection\n"
     "(default 1; 0 = all hardware threads; output is identical\n"
     "at any value)",
     [](CliOptions& o, const std::string& v) {
       char* end = nullptr;
       long jobs = std::strtol(v.c_str(), &end, 10);
       if (end == v.c_str() || *end != '\0' || jobs < 0) {
         std::fprintf(stderr, "valuecheck: --jobs expects a non-negative integer, got '%s'\n",
                      v.c_str());
         return false;
       }
       o.analysis.jobs = static_cast<int>(jobs);
       return true;
     }},
    {"--format", "FMT", "output control",
     "output format: text (default), csv, json, sarif",
     [](CliOptions& o, const std::string& v) {
       if (v != "text" && v != "csv" && v != "json" && v != "sarif") {
         std::fprintf(stderr, "valuecheck: unknown format '%s' (expected text, csv, json, sarif)\n",
                      v.c_str());
         return false;
       }
       o.format = v;
       return true;
     }},
    {"--ledger", "DIR", "run ledger",
     "append this run (findings + fingerprints + metrics) to the\n"
     "run ledger at DIR (created if missing); `valuecheck diff`,\n"
     "`history`, and `report` read it back. Implies metrics\n"
     "collection (findings stay byte-identical) without the\n"
     "--metrics stderr tables",
     [](CliOptions& o, const std::string& v) {
       o.ledger_dir = v;
       o.analysis.collect_metrics = true;
       return true;
     }},
    {"--label", "NAME", "run ledger",
     "free-form provenance label stored with the ledger record\n"
     "(default: the input path or history file)",
     [](CliOptions& o, const std::string& v) {
       o.label = v;
       return true;
     }},
    {"--trace", "FILE", "observability",
     "write a Chrome trace-event JSON of the run (load in\n"
     "chrome://tracing or Perfetto); parent dirs are created",
     [](CliOptions& o, const std::string& v) {
       o.trace_path = v;
       return true;
     }},
    {"--profile", "FILE", "observability",
     "write a collapsed-stack CPU profile of the run (one\n"
     "`frame;frame count` line per stack, flamegraph.pl /\n"
     "speedscope format); built from the same spans as --trace",
     [](CliOptions& o, const std::string& v) {
       o.profile_path = v;
       return true;
     }},
    {"--perf-report", "FILE", "observability",
     "write per-run performance analytics as JSON: critical path\n"
     "(folded listing), Amdahl serial fraction, per-worker\n"
     "utilization timelines, imbalance and steal-latency stats;\n"
     "validate with `vc_obs_lint perf FILE`",
     [](CliOptions& o, const std::string& v) {
       o.perf_report_path = v;
       o.analysis.collect_metrics = true;
       return true;
     }},
    {"--events", "FILE", "observability",
     "stream machine-readable run events (run_start, per-file and\n"
     "per-stage stage_start/stage_end, checker_done, quarantine,\n"
     "run_end) as JSON lines to FILE while the run executes",
     [](CliOptions& o, const std::string& v) {
       o.events_path = v;
       return true;
     }},
    {"--metrics-out", "FILE", "observability",
     "dump the metrics registry (every counter, gauge, and\n"
     "histogram, including mem.*) in Prometheus text exposition\n"
     "format to FILE; implies metrics collection without the\n"
     "--metrics stderr tables",
     [](CliOptions& o, const std::string& v) {
       o.metrics_out_path = v;
       o.analysis.collect_metrics = true;
       return true;
     }},
    {"--progress", nullptr, "observability",
     "live one-line progress heartbeat on stderr (files/functions\n"
     "done, findings, throughput, ETA); findings on stdout are\n"
     "byte-identical with or without it",
     [](CliOptions& o, const std::string&) {
       o.progress = true;
       return true;
     }},
    {"--metrics", nullptr, "AnalysisOptions::collect_metrics",
     "collect per-stage metrics and print a stats table to stderr",
     [](CliOptions& o, const std::string&) {
       o.metrics = true;
       o.analysis.collect_metrics = true;
       return true;
     }},
    {"--log-level", "LEVEL", "observability",
     "stderr log verbosity: error, warn (default), info, debug",
     [](CliOptions& o, const std::string& v) {
       std::optional<vc::LogLevel> level = vc::ParseLogLevel(v);
       if (!level.has_value()) {
         std::fprintf(stderr,
                      "valuecheck: unknown log level '%s' (expected error, warn, info, debug)\n",
                      v.c_str());
         return false;
       }
       vc::SetLogLevel(*level);
       return true;
     }},
    {"--top", "K", "output control",
     "print only the K highest-ranked findings (text mode)",
     [](CliOptions& o, const std::string& v) {
       o.top = std::atoi(v.c_str());
       return true;
     }},
    {"--all-scopes", nullptr, "AnalysisOptions::cross_scope_only",
     "keep non-cross-scope findings even in history mode",
     [](CliOptions& o, const std::string&) {
       o.all_scopes = true;
       return true;
     }},
    {"--strict", nullptr, "fault isolation",
     "exit 3 when any unit was quarantined (default: graceful —\n"
     "report the surviving findings, note the quarantine on stderr,\n"
     "and exit 0/1 as usual)",
     [](CliOptions& o, const std::string&) {
       o.strict = true;
       return true;
     }},
    {"--fault-inject", "SEED:RATE", "AnalysisOptions::fault",
     "deterministically quarantine ~RATE of units at seeded\n"
     "injection sites (robustness testing; e.g. 42:0.1). The\n"
     "quarantine list and surviving findings are identical at any\n"
     "--jobs for a given SEED:RATE",
     [](CliOptions& o, const std::string& v) {
       std::string error;
       std::optional<vc::FaultInjector> fault = vc::FaultInjector::Parse(v, &error);
       if (!fault.has_value()) {
         std::fprintf(stderr, "valuecheck: --fault-inject: %s\n", error.c_str());
         return false;
       }
       o.analysis.fault = *fault;
       return true;
     }},
    {"--define", "NAME[=V]", "AnalysisOptions::config",
     "define a preprocessor macro for #if evaluation",
     [](CliOptions& o, const std::string& v) {
       size_t eq = v.find('=');
       if (eq == std::string::npos) {
         o.analysis.config.Define(v);
       } else {
         o.analysis.config.Define(v.substr(0, eq),
                                  std::strtoll(v.c_str() + eq + 1, nullptr, 0));
       }
       return true;
     }},
    {"--no-prune-config", nullptr, "AnalysisOptions::prune.config_dependency",
     "disable configuration-dependency pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.config_dependency = false;
       return true;
     }},
    {"--no-prune-cursor", nullptr, "AnalysisOptions::prune.cursor",
     "disable cursor-pattern pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.cursor = false;
       return true;
     }},
    {"--no-prune-hints", nullptr, "AnalysisOptions::prune.unused_hints",
     "disable unused-hint pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.unused_hints = false;
       return true;
     }},
    {"--no-prune-peer", nullptr, "AnalysisOptions::prune.peer_definition",
     "disable peer-definition pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.peer_definition = false;
       return true;
     }},
    {"--stale-code", nullptr, "AnalysisOptions::prune.stale_code",
     "enable commit-history stale-code pruning (needs history)",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.stale_code = true;
       return true;
     }},
    {"--ea-model", nullptr, "AnalysisOptions::ranking.use_ea_model",
     "rank with the EA familiarity model instead of DOK",
     [](CliOptions& o, const std::string&) {
       o.analysis.ranking.use_ea_model = true;
       return true;
     }},
    {"--checkers", "LIST", "AnalysisOptions::checkers",
     "comma-separated checker names to run (see --list-checkers;\n"
     "default: every non-baseline checker)",
     [](CliOptions& o, const std::string& v) {
       std::vector<std::string> names;
       for (std::string_view part : vc::Split(v, ',')) {
         std::string name = std::string(vc::Trim(part));
         if (name.empty()) {
           continue;
         }
         if (vc::CheckerRegistry::Global().Find(name) == nullptr) {
           std::fprintf(stderr,
                        "valuecheck: --checkers: unknown checker '%s' (see --list-checkers)\n",
                        name.c_str());
           return false;
         }
         names.push_back(std::move(name));
       }
       if (names.empty()) {
         std::fprintf(stderr, "valuecheck: --checkers expects at least one checker name\n");
         return false;
       }
       o.analysis.checkers = std::move(names);
       return true;
     }},
};

void PrintCheckerList(FILE* out) {
  vc::TableWriter table({"name", "kind", "description"});
  for (const vc::Checker* checker : vc::CheckerRegistry::Global().All()) {
    table.AddRow({checker->name(), checker->is_baseline() ? "baseline" : "default",
                  checker->description()});
  }
  std::fputs(table.RenderText().c_str(), out);
  std::fputs(
      "\nBaseline checkers model the §8.4 comparison tools; they are excluded\n"
      "from the default set and only run when named in --checkers.\n",
      out);
}

void PrintUsage(FILE* out) {
  std::fputs(
      "usage: valuecheck [analyze] [options] <file.c|dir>... | --history <file.vchist>\n"
      "       valuecheck diff    [--ledger DIR] [runA runB] [--check] [diff options]\n"
      "       valuecheck history [--ledger DIR] [--limit N] [--compact N]\n"
      "       valuecheck report  [--ledger DIR] --html FILE\n"
      "       valuecheck serve   [--socket PATH | --port N] (see serve --help)\n"
      "\n"
      "Arguments after `--` are always input paths, never flags.\n"
      "Run selectors: latest, prev, rNNNN, N (1-based), -N (from newest).\n"
      "\nanalyze options:\n",
      out);
  for (const FlagSpec& flag : kFlags) {
    std::string head = flag.name;
    if (flag.value_name != nullptr) {
      head += "=";
      head += flag.value_name;
    }
    std::fprintf(out, "  %-21s", head.c_str());
    if (head.size() > 21) {
      std::fprintf(out, "\n  %-21s", "");
    }
    // Help text may span lines; keep continuation lines aligned.
    const char* text = flag.help;
    bool first = true;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!first) {
        std::fprintf(out, "  %-21s", "");
      }
      std::fprintf(out, "%s\n", line.c_str());
      first = false;
    }
    std::fprintf(out, "  %-21s[%s]\n", "", flag.maps_to);
  }
  std::fputs(
      "  --list-checkers      print the registered checkers and exit\n"
      "  --help, -h           print this summary\n"
      "\ndiff options:\n"
      "  --check              exit 1 on new findings or metric regressions\n"
      "  --timings            include (nondeterministic) stage-timing deltas\n"
      "  --format=FMT         text (default) or json\n"
      "  --max-new=N          allowed new findings before --check fails (default 0)\n"
      "  --stage-ratio=X      stage-seconds regression ratio (default 1.5)\n"
      "  --stage-floor=SEC    ignore stage growth below this many seconds (default 0.05)\n"
      "  --prune-drop=X       allowed absolute prune-rate drop (default 0.10)\n",
      out);
}

const FlagSpec* FindFlag(const std::string& name) {
  for (const FlagSpec& flag : kFlags) {
    if (name == flag.name) {
      return &flag;
    }
  }
  return nullptr;
}

bool ParseAnalyzeArgs(const std::vector<std::string>& args, CliOptions& options) {
  bool only_inputs = false;  // set once `--` is seen
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (only_inputs) {
      options.inputs.push_back(arg);
      continue;
    }
    if (arg == "--") {
      only_inputs = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    }
    if (arg == "--list-checkers") {
      PrintCheckerList(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      options.inputs.push_back(arg);
      continue;
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const FlagSpec* flag = FindFlag(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "valuecheck: unknown option %s\n", arg.c_str());
      PrintUsage(stderr);
      return false;
    }
    if (flag->value_name != nullptr && !has_value) {
      // Allow the "--flag VALUE" spelling.
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "valuecheck: %s expects a value\n", name.c_str());
        return false;
      }
      value = args[++i];
    } else if (flag->value_name == nullptr && has_value) {
      std::fprintf(stderr, "valuecheck: %s does not take a value\n", name.c_str());
      return false;
    }
    if (!flag->apply(options, value)) {
      // Bad flag values (e.g. --format/--log-level typos) never silently
      // default: the apply hook printed the specific complaint, we add the
      // usage summary, and main exits non-zero.
      PrintUsage(stderr);
      return false;
    }
  }
  if (options.history_path.empty() && options.inputs.empty()) {
    PrintUsage(stderr);
    return false;
  }
  if (options.incremental && options.history_path.empty()) {
    std::fprintf(stderr, "valuecheck: --incremental requires --history (a commit sequence)\n");
    return false;
  }
  if (!options.cache_dir.empty() && !options.incremental) {
    std::fprintf(stderr, "valuecheck: --cache-dir only applies with --incremental\n");
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> CollectSources(
    const std::vector<std::string>& inputs) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& input : inputs) {
    std::filesystem::path path(input);
    if (std::filesystem::is_directory(path)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && entry.path().extension() == ".c") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const std::string& file : found) {
        files.emplace_back(file, ReadFileOrDie(file));
      }
    } else {
      files.emplace_back(input, ReadFileOrDie(input));
    }
  }
  return files;
}

void PrintText(const vc::AnalysisReport& report, const vc::Repository* repo, int top,
               bool ranked) {
  using namespace vc;
  std::printf("valuecheck: %d unused definition(s)", static_cast<int>(report.findings.size()));
  if (report.prune_stats.TotalPruned() > 0) {
    std::printf(" (%d pruned: %d config, %d cursor, %d hints, %d peer, %d stale)",
                report.prune_stats.TotalPruned(), report.prune_stats.config_dependency,
                report.prune_stats.cursor, report.prune_stats.unused_hints,
                report.prune_stats.peer_definition, report.prune_stats.stale_code);
  }
  std::printf("\n");
  int shown = 0;
  for (const UnusedDefCandidate& cand : report.findings) {
    if (top >= 0 && shown >= top) {
      std::printf("... %d more (raise --top)\n",
                  static_cast<int>(report.findings.size()) - shown);
      break;
    }
    ++shown;
    std::printf("%s:%d: warning: ", cand.file.c_str(), cand.def_loc.line);
    switch (cand.kind) {
      case CandidateKind::kOverwrittenDef:
        std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kUnusedRetVal:
        std::printf("return value%s is never used",
                    !cand.callee_name.empty()
                        ? (" of '" + cand.callee_name + "'").c_str()
                        : "");
        break;
      case CandidateKind::kUnusedParam:
        std::printf("parameter '%s' value is never used", cand.slot_name.c_str());
        break;
      case CandidateKind::kOverwrittenParam:
        std::printf("parameter '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kPlainUnused:
        if (cand.overwritten) {
          std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        } else {
          std::printf("value of '%s' is never used", cand.slot_name.c_str());
        }
        break;
    }
    std::printf(" [in %s]", cand.function.c_str());
    if (repo != nullptr && cand.responsible_author != kInvalidAuthor && ranked) {
      std::printf(" (introduced by %s, familiarity %.2f)",
                  repo->GetAuthor(cand.responsible_author).name.c_str(), cand.familiarity);
    }
    std::printf("\n");
  }
}

// Non-default analysis options, rendered into the ledger record so a run's
// provenance is reconstructible from history alone.
std::string SummarizeOptions(const CliOptions& options, bool has_history) {
  std::vector<std::string> parts;
  if (!has_history) {
    parts.push_back("no-history");
  }
  if (options.all_scopes) {
    parts.push_back("all-scopes");
  }
  const vc::PruneOptions& prune = options.analysis.prune;
  if (!prune.config_dependency) {
    parts.push_back("no-prune-config");
  }
  if (!prune.cursor) {
    parts.push_back("no-prune-cursor");
  }
  if (!prune.unused_hints) {
    parts.push_back("no-prune-hints");
  }
  if (!prune.peer_definition) {
    parts.push_back("no-prune-peer");
  }
  if (prune.stale_code) {
    parts.push_back("stale-code");
  }
  if (options.analysis.ranking.use_ea_model) {
    parts.push_back("ea-model");
  }
  if (!options.analysis.checkers.empty()) {
    parts.push_back("checkers=" + vc::Join(options.analysis.checkers, ","));
  }
  if (options.analysis.fault.enabled()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "fault-inject=%llu:%g",
                  static_cast<unsigned long long>(options.analysis.fault.seed()),
                  options.analysis.fault.rate());
    parts.push_back(buf);
  }
  if (options.strict) {
    parts.push_back("strict");
  }
  return vc::Join(parts, " ");
}

int RunAnalyze(const std::vector<std::string>& args) {
  using namespace vc;
  CliOptions options;
  if (!ParseAnalyzeArgs(args, options)) {
    return 2;
  }
  // First SIGINT/SIGTERM requests a graceful stop: the run finishes its
  // current unit of work (the current commit in --incremental replays, the
  // whole run otherwise), every artifact epilogue below still executes, and
  // the exit status is the conventional 128+signal.
  InstallGracefulShutdown();

  if (!options.trace_path.empty()) {
    if (!EnsureParentDir(options.trace_path)) {
      return 2;
    }
    TraceCollector::Global().Enable();
  }
  // The collapsed-stack profile and the perf report are derived from the
  // same spans as --trace, so each alone also turns the collector on.
  if (!options.profile_path.empty()) {
    if (!EnsureParentDir(options.profile_path)) {
      return 2;
    }
    TraceCollector::Global().Enable();
  }
  if (!options.perf_report_path.empty()) {
    if (!EnsureParentDir(options.perf_report_path)) {
      return 2;
    }
    TraceCollector::Global().Enable();
    // Steal latencies and per-worker busy time are clocked only while the
    // metrics registry is on (collect_metrics was set at flag parse).
    MetricsRegistry::Global().Enable();
  }
  if (options.metrics) {
    MetricsRegistry::Global().Enable();
  }
  if (!options.metrics_out_path.empty()) {
    if (!EnsureParentDir(options.metrics_out_path)) {
      return 2;
    }
    MetricsRegistry::Global().Enable();
  }
  if (!options.events_path.empty()) {
    if (!EnsureParentDir(options.events_path) ||
        !RunEventLog::Global().Open(options.events_path)) {
      std::fprintf(stderr, "valuecheck: cannot write events to %s\n",
                   options.events_path.c_str());
      return 2;
    }
    RunEvent("run_start")
        .Str("mode", options.history_path.empty() ? "sources" : "history")
        .Num("jobs", static_cast<int64_t>(options.analysis.jobs))
        .Emit();
  }
  if (options.progress) {
    ProgressMeter::Global().Start(stderr);
  }

  Repository repo;
  bool has_history = !options.history_path.empty();
  if (has_history) {
    std::string error;
    std::optional<Repository> loaded =
        LoadHistory(ReadFileOrDie(options.history_path), &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "valuecheck: %s: %s\n", options.history_path.c_str(),
                   error.c_str());
      return 2;
    }
    repo = std::move(*loaded);
  } else {
    // No authorship: fall back to reporting all scopes, unranked.
    options.analysis.cross_scope_only = false;
    options.analysis.ranking.enabled = false;
  }
  if (options.all_scopes) {
    options.analysis.cross_scope_only = false;
  }

  Analysis analysis(options.analysis);
  AnalysisReport report;
  std::optional<IncrementalResult> inc_head;
  if (options.incremental) {
    // Replay the whole history commit-by-commit through one warm engine.
    // Each commit's report is complete (equal to a full run truncated at that
    // commit); stdout carries the head commit's report through the normal
    // formatting path, stderr the per-commit work accounting.
    if (repo.NumCommits() == 0) {
      std::fprintf(stderr, "valuecheck: --incremental: history has no commits\n");
      return 2;
    }
    IncrementalOptions inc_options;
    inc_options.cache_dir = options.cache_dir;
    IncrementalEngine engine(options.analysis, inc_options);
    std::string label = options.label.empty() ? options.history_path : options.label;
    for (CommitId commit = 0; commit < repo.NumCommits(); ++commit) {
      IncrementalResult result = engine.AnalyzeCommit(repo, commit);
      std::fprintf(stderr,
                   "valuecheck: commit %d/%d: reparsed %d of %d changed file(s), "
                   "%d/%d function(s) dirty, findings +%d -%d =%d, %.1f ms\n",
                   commit + 1, repo.NumCommits(), result.files_reparsed, result.files_changed,
                   result.functions_dirty, result.functions_total, result.findings_new,
                   result.findings_fixed, static_cast<int>(result.findings().size()),
                   result.seconds * 1000.0);
      // One ledger record per commit, so `history`/`report` can trend the
      // incremental run the same way CI trends full runs.
      if (!options.ledger_dir.empty()) {
        RunRecord record = MakeRunRecord(result.report,
                                         label + "@c" + std::to_string(commit), NowMs());
        record.options_summary = SummarizeOptions(options, has_history);
        FillIncrementalMetrics(result, record.metrics);
        std::string error;
        RunLedger ledger(options.ledger_dir);
        if (ledger.Append(std::move(record), &error).empty()) {
          std::fprintf(stderr, "valuecheck: ledger append failed: %s\n", error.c_str());
          return 2;
        }
      }
      bool last = commit + 1 == repo.NumCommits();
      inc_head = std::move(result);
      if (!last && ShutdownRequested()) {
        // Graceful stop between commits: report the last completed commit and
        // fall through to the normal artifact epilogues.
        std::fprintf(stderr,
                     "valuecheck: interrupted after commit %d/%d; flushing artifacts\n",
                     commit + 1, repo.NumCommits());
        break;
      }
    }
    const CacheStats& cache = inc_head->cache;
    std::fprintf(stderr,
                 "valuecheck: incremental replay: parse cache %llu hit / %llu miss; "
                 "detect cache %.1f%% hit (%llu carried, %llu recomputed); "
                 "disk cache %llu loaded, %llu stored, %llu corrupt\n",
                 static_cast<unsigned long long>(cache.parse_hits),
                 static_cast<unsigned long long>(cache.parse_misses),
                 cache.DetectHitRate() * 100.0,
                 static_cast<unsigned long long>(cache.detect_carried),
                 static_cast<unsigned long long>(cache.detect_recomputed),
                 static_cast<unsigned long long>(cache.disk_loads),
                 static_cast<unsigned long long>(cache.disk_stores),
                 static_cast<unsigned long long>(cache.disk_corrupt));
    report = inc_head->report;
  } else {
    auto parse_start = std::chrono::steady_clock::now();
    Project project = has_history
                          ? analysis.BuildFromRepository(repo)
                          : analysis.BuildFromSources(CollectSources(options.inputs));
    double parse_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - parse_start).count();

    if (project.diags().HasErrors()) {
      std::fputs(project.diags().Render(project.sources()).c_str(), stderr);
      return 2;
    }

    report = analysis.Run(project, has_history ? &repo : nullptr);
    report.parse_seconds = parse_seconds;
    report.analysis_seconds += parse_seconds;
    if (report.stage.collected) {
      report.stage.parse_seconds = parse_seconds;
      report.stage.files_parsed = project.units().size();
    }
  }

  // The heartbeat line ends (with a final render + newline) before anything
  // else is printed, so the report never interleaves with a redraw.
  if (options.progress) {
    ProgressMeter::Global().AddFindings(report.findings.size());
    ProgressMeter::Global().Stop();
  }
  if (RunEventsEnabled()) {
    RunEvent("run_end")
        .Num("findings", static_cast<uint64_t>(report.findings.size()))
        .Num("quarantined", static_cast<uint64_t>(report.quarantined.size()))
        .Flag("degraded", report.degraded)
        .Dbl("analysis_seconds", report.analysis_seconds)
        .Emit();
    RunEventLog::Global().Close();
  }

  // Quarantine summary on stderr (stdout is reserved for the report, which
  // carries the same data in the schema-v5 "quarantined" block).
  if (report.degraded) {
    std::fprintf(stderr, "valuecheck: degraded run: %zu unit(s) quarantined\n",
                 report.quarantined.size());
    for (const QuarantinedUnit& unit : report.quarantined) {
      std::string where = unit.path;
      if (!unit.function.empty()) {
        where += where.empty() ? unit.function : ":" + unit.function;
      }
      if (where.empty()) {
        where = "<stage>";
      }
      std::fprintf(stderr, "  quarantined [%s] %s: %s\n", unit.stage.c_str(), where.c_str(),
                   unit.reason.c_str());
    }
  }

  if (options.format == "json") {
    std::printf("%s\n", ReportToJson(report, has_history ? &repo : nullptr,
                                     inc_head.has_value() ? &*inc_head : nullptr)
                            .c_str());
  } else if (options.format == "sarif") {
    std::printf("%s\n", ReportToSarif(report).c_str());
  } else if (options.format == "csv") {
    std::fputs(report.ToCsv().c_str(), stdout);
  } else {
    PrintText(report, has_history ? &repo : nullptr, options.top,
              options.analysis.ranking.enabled);
  }

  // Perf analytics: post-process the span buffers before the ledger
  // epilogue so the summary columns can ride along in the run record.
  std::optional<PerfReport> perf;
  if (!options.perf_report_path.empty()) {
    TraceCollector& collector = TraceCollector::Global();
    collector.Disable();
    PerfInputs inputs;
    inputs.wall_seconds = report.analysis_seconds;
    inputs.jobs = report.jobs;
    inputs.hardware_threads = HardwareThreads();
    inputs.dropped_spans = collector.dropped_count();
    inputs.pool = &report.stage.pool;
    perf = AnalyzeSpans(collector.SnapshotEvents(), inputs);
    if (!WritePerfReport(*perf, options.perf_report_path)) {
      std::fprintf(stderr, "valuecheck: cannot write perf report to %s\n",
                   options.perf_report_path.c_str());
      return 2;
    }
    VC_LOG_INFO("wrote perf report to " + options.perf_report_path);
  }

  // Ledger epilogue: persist the run for later `diff`/`history`/`report`.
  // Incremental replays already appended one record per commit above.
  if (!options.ledger_dir.empty() && !options.incremental) {
    std::string label = options.label;
    if (label.empty()) {
      label = has_history ? options.history_path : Join(options.inputs, " ");
    }
    RunRecord record = MakeRunRecord(report, label, NowMs());
    record.options_summary = SummarizeOptions(options, has_history);
    if (perf.has_value()) {
      record.metrics.perf_collected = true;
      record.metrics.perf_wall_seconds = perf->wall_seconds;
      record.metrics.perf_critical_path_seconds = perf->critical_path_seconds;
      record.metrics.perf_serial_fraction = perf->serial_fraction;
      record.metrics.perf_utilization = perf->mean_utilization;
      record.metrics.perf_max_busy_seconds = perf->max_busy_seconds;
      record.metrics.perf_mean_busy_seconds = perf->mean_busy_seconds;
      record.metrics.perf_imbalance_ratio = perf->imbalance_ratio;
    }
    std::string error;
    RunLedger ledger(options.ledger_dir);
    std::string run_id = ledger.Append(std::move(record), &error);
    if (run_id.empty()) {
      std::fprintf(stderr, "valuecheck: ledger append failed: %s\n", error.c_str());
      return 2;
    }
    VC_LOG_INFO("recorded run " + run_id + " in " + ledger.LedgerFile());
  }

  // Observability epilogue — all on stderr, so findings on stdout are
  // byte-identical with and without --metrics/--trace.
  if (options.metrics) {
    std::fputs("\n=== pipeline stage metrics ===\n", stderr);
    std::fputs(RenderStageMetricsTable(report).c_str(), stderr);
    std::fputs("\n=== metrics registry ===\n", stderr);
    std::fputs(MetricsRegistry::Global().RenderTable().c_str(), stderr);
  }
  if (!options.metrics_out_path.empty()) {
    std::ofstream prom(options.metrics_out_path, std::ios::trunc | std::ios::binary);
    prom << MetricsRegistry::Global().RenderPrometheus();
    prom.flush();
    if (!prom) {
      std::fprintf(stderr, "valuecheck: cannot write metrics to %s\n",
                   options.metrics_out_path.c_str());
      return 2;
    }
    VC_LOG_INFO("wrote Prometheus metrics to " + options.metrics_out_path);
  }
  if (!options.trace_path.empty() || !options.profile_path.empty()) {
    TraceCollector& collector = TraceCollector::Global();
    collector.Disable();
    if (!options.trace_path.empty() && !collector.WriteJson(options.trace_path)) {
      std::fprintf(stderr, "valuecheck: cannot write trace to %s\n",
                   options.trace_path.c_str());
      return 2;
    }
    if (!options.profile_path.empty() && !WriteCollapsedProfile(options.profile_path)) {
      std::fprintf(stderr, "valuecheck: cannot write profile to %s\n",
                   options.profile_path.c_str());
      return 2;
    }
    VC_LOG_INFO("wrote " + std::to_string(collector.EventCount()) + " trace event(s)");
  }
  if (ShutdownRequested()) {
    return 128 + ShutdownSignal();  // graceful stop — artifacts flushed above
  }
  if (options.strict && report.degraded) {
    return 3;  // quarantine is an error under --strict (see exit-code table)
  }
  return report.findings.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

struct ServeArgs {
  vc::ServerOptions server;
  std::string ledger_dir;
  std::string label = "serve";
  std::string metrics_out_path;
  std::string events_path;
};

void PrintServeUsage(FILE* out) {
  std::fputs(
      "usage: valuecheck serve [--socket PATH | --port N] [options]\n"
      "\n"
      "  --socket=PATH        listen on a Unix-domain socket (stale file replaced)\n"
      "  --port=N             listen on TCP loopback (0 = ephemeral; the resolved\n"
      "                       address is printed on stdout either way)\n"
      "  --max-inflight=N     concurrently executing requests (default 2)\n"
      "  --max-queue=N        queued requests beyond that before shedding with\n"
      "                       RETRY_AFTER (default 8)\n"
      "  --deadline-ms=X      default per-request deadline when a request carries\n"
      "                       none (0 = unlimited)\n"
      "  --idle-timeout=SEC   drop a connection idle mid-frame this long\n"
      "                       (slow-loris guard; default 30)\n"
      "  --history-limit=N    per-project run summaries kept for diff/history\n"
      "                       (default 64)\n"
      "  --jobs=N             worker lanes for requests that don't set jobs\n"
      "  --ledger=DIR         append a serve-session record (request accounting,\n"
      "                       QPS, p50/p95/p99) to the run ledger on drain\n"
      "  --label=NAME         ledger record label (default: serve)\n"
      "  --metrics-out=FILE   dump the vc_serve_* metric family (Prometheus text\n"
      "                       format) after the drain\n"
      "  --events=FILE        stream serve_start/serve_drain/serve_end run events\n"
      "  --allow-debug-sleep  honor the request debug_sleep_ms field (tests only)\n"
      "  --log-level=LEVEL    stderr log verbosity\n"
      "\n"
      "The daemon drains on SIGINT/SIGTERM (or a client `shutdown` request):\n"
      "new work is shed, in-flight requests finish and respond, artifacts are\n"
      "flushed, and the exit status reports whether accounting balanced.\n",
      out);
}

bool ParseServeArgs(const std::vector<std::string>& args, ServeArgs& out) {
  auto bad = [&](const std::string& message) {
    std::fprintf(stderr, "valuecheck serve: %s\n", message.c_str());
    PrintServeUsage(stderr);
    return false;
  };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      PrintServeUsage(stdout);
      std::exit(0);
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto need_value = [&]() {
      if (has_value) {
        return true;
      }
      if (i + 1 >= args.size()) {
        return bad(name + " expects a value");
      }
      value = args[++i];
      return true;
    };
    auto parse_nonneg_int = [&](int& into) {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return bad(name + " expects a non-negative integer, got '" + value + "'");
      }
      into = static_cast<int>(parsed);
      return true;
    };
    auto parse_nonneg_double = [&](double& into) {
      char* end = nullptr;
      double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || parsed < 0) {
        return bad(name + " expects a non-negative number, got '" + value + "'");
      }
      into = parsed;
      return true;
    };
    if (name == "--socket") {
      if (!need_value()) return false;
      out.server.socket_path = value;
    } else if (name == "--port") {
      if (!need_value()) return false;
      if (!parse_nonneg_int(out.server.tcp_port)) return false;
    } else if (name == "--max-inflight") {
      if (!need_value()) return false;
      if (!parse_nonneg_int(out.server.max_inflight)) return false;
      if (out.server.max_inflight < 1) {
        return bad("--max-inflight must be at least 1");
      }
    } else if (name == "--max-queue") {
      if (!need_value()) return false;
      if (!parse_nonneg_int(out.server.max_queue)) return false;
    } else if (name == "--deadline-ms") {
      if (!need_value()) return false;
      if (!parse_nonneg_double(out.server.default_deadline_ms)) return false;
    } else if (name == "--idle-timeout") {
      if (!need_value()) return false;
      if (!parse_nonneg_double(out.server.idle_read_timeout_seconds)) return false;
    } else if (name == "--history-limit") {
      if (!need_value()) return false;
      int limit = 0;
      if (!parse_nonneg_int(limit)) return false;
      out.server.history_limit = static_cast<size_t>(limit);
    } else if (name == "--jobs") {
      if (!need_value()) return false;
      if (!parse_nonneg_int(out.server.analysis.jobs)) return false;
    } else if (name == "--ledger") {
      if (!need_value()) return false;
      out.ledger_dir = value;
    } else if (name == "--label") {
      if (!need_value()) return false;
      out.label = value;
    } else if (name == "--metrics-out") {
      if (!need_value()) return false;
      out.metrics_out_path = value;
    } else if (name == "--events") {
      if (!need_value()) return false;
      out.events_path = value;
    } else if (name == "--allow-debug-sleep") {
      out.server.allow_debug_sleep = true;
    } else if (name == "--log-level") {
      if (!need_value()) return false;
      std::optional<vc::LogLevel> level = vc::ParseLogLevel(value);
      if (!level.has_value()) {
        return bad("unknown log level '" + value + "'");
      }
      vc::SetLogLevel(*level);
    } else {
      return bad("unknown option " + arg);
    }
  }
  return true;
}

int RunServeCommand(const std::vector<std::string>& args) {
  using namespace vc;
  ServeArgs parsed;
  if (!ParseServeArgs(args, parsed)) {
    return 2;
  }
  if (!parsed.metrics_out_path.empty()) {
    if (!EnsureParentDir(parsed.metrics_out_path)) {
      return 2;
    }
    MetricsRegistry::Global().Enable();
  }
  if (!parsed.events_path.empty()) {
    if (!EnsureParentDir(parsed.events_path) ||
        !RunEventLog::Global().Open(parsed.events_path)) {
      std::fprintf(stderr, "valuecheck serve: cannot write events to %s\n",
                   parsed.events_path.c_str());
      return 2;
    }
  }
  // The ledger record wants exact request accounting either way; the registry
  // family additionally feeds --metrics-out and scrapes.
  MetricsRegistry::Global().Enable();

  InstallGracefulShutdown();
  AnalysisServer server(parsed.server);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "valuecheck serve: %s\n", error.c_str());
    return 2;
  }
  // The address line is the startup handshake for wrappers (check.sh waits
  // for it; TCP mode resolves the ephemeral port here).
  std::printf("valuecheck: serving on %s (max-inflight=%d, max-queue=%d)\n",
              server.address().c_str(), parsed.server.max_inflight,
              parsed.server.max_queue);
  std::fflush(stdout);

  // Park until a signal or a client `shutdown` request starts the drain.
  while (!ShutdownRequested() && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.RequestDrain();
  server.Wait();
  ServeTotals totals = server.totals();

  std::fprintf(stderr,
               "valuecheck serve: drained: %llu request(s) over %llu connection(s) "
               "in %.2fs — %llu ok, %llu degraded, %llu shed, %llu deadline, "
               "%llu failed (%llu protocol error(s)); %llu cached, %llu engine "
               "rebuild(s), %llu project(s); p50 %.1f ms, p99 %.1f ms\n",
               static_cast<unsigned long long>(totals.requests),
               static_cast<unsigned long long>(totals.connections),
               totals.wall_seconds, static_cast<unsigned long long>(totals.succeeded),
               static_cast<unsigned long long>(totals.degraded),
               static_cast<unsigned long long>(totals.shed),
               static_cast<unsigned long long>(totals.deadline),
               static_cast<unsigned long long>(totals.failed),
               static_cast<unsigned long long>(totals.protocol_errors),
               static_cast<unsigned long long>(totals.cached),
               static_cast<unsigned long long>(totals.engine_rebuilds),
               static_cast<unsigned long long>(totals.projects), totals.p50_ms,
               totals.p99_ms);

  bool balanced = totals.requests == totals.Accounted();
  if (!balanced) {
    std::fprintf(stderr,
                 "valuecheck serve: ACCOUNTING IMBALANCE: %llu request(s) but "
                 "outcomes sum to %llu\n",
                 static_cast<unsigned long long>(totals.requests),
                 static_cast<unsigned long long>(totals.Accounted()));
  }

  if (!parsed.ledger_dir.empty()) {
    RunRecord record;
    record.label = parsed.label;
    record.timestamp_ms = NowMs();
    record.jobs = parsed.server.analysis.jobs;
    record.options_summary =
        "serve max-inflight=" + std::to_string(parsed.server.max_inflight) +
        " max-queue=" + std::to_string(parsed.server.max_queue);
    record.metrics.serve_collected = true;
    record.metrics.serve_wall_seconds = totals.wall_seconds;
    record.metrics.serve_clients = static_cast<int64_t>(totals.connections);
    record.metrics.serve_requests = static_cast<int64_t>(totals.requests);
    record.metrics.serve_succeeded = static_cast<int64_t>(totals.succeeded);
    record.metrics.serve_degraded = static_cast<int64_t>(totals.degraded);
    record.metrics.serve_shed = static_cast<int64_t>(totals.shed);
    record.metrics.serve_deadline = static_cast<int64_t>(totals.deadline);
    record.metrics.serve_failed = static_cast<int64_t>(totals.failed);
    record.metrics.serve_qps = totals.wall_seconds > 0.0
                                   ? static_cast<double>(totals.requests) /
                                         totals.wall_seconds
                                   : 0.0;
    record.metrics.serve_p50_ms = totals.p50_ms;
    record.metrics.serve_p95_ms = totals.p95_ms;
    record.metrics.serve_p99_ms = totals.p99_ms;
    std::string append_error;
    RunLedger ledger(parsed.ledger_dir);
    std::string run_id = ledger.Append(std::move(record), &append_error);
    if (run_id.empty()) {
      std::fprintf(stderr, "valuecheck serve: ledger append failed: %s\n",
                   append_error.c_str());
      return 2;
    }
    VC_LOG_INFO("recorded serve session " + run_id + " in " + ledger.LedgerFile());
  }
  if (!parsed.metrics_out_path.empty()) {
    std::ofstream prom(parsed.metrics_out_path, std::ios::trunc | std::ios::binary);
    prom << MetricsRegistry::Global().RenderPrometheus();
    prom.flush();
    if (!prom) {
      std::fprintf(stderr, "valuecheck serve: cannot write metrics to %s\n",
                   parsed.metrics_out_path.c_str());
      return 2;
    }
  }
  if (RunEventsEnabled()) {
    RunEventLog::Global().Close();
  }
  return balanced ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Shared flag scanning for the ledger subcommands (small enough that the
// table machinery above would be overhead).
// ---------------------------------------------------------------------------

struct LedgerArgs {
  std::string ledger_dir = ".vc-ledger";
  std::vector<std::string> positionals;
  // diff
  bool check = false;
  bool timings = false;
  std::string format = "text";
  vc::RegressionThresholds thresholds;
  // history
  int limit = -1;
  int compact = -1;
  // report
  std::string html_path;
};

// Parses "--name=value" / "--name value" / boolean flags from a spec of
// recognized names. Returns false on an unknown flag or missing value.
bool ParseLedgerArgs(const std::string& subcommand, const std::vector<std::string>& args,
                     LedgerArgs& out) {
  auto bad = [&](const std::string& message) {
    std::fprintf(stderr, "valuecheck %s: %s\n", subcommand.c_str(), message.c_str());
    PrintUsage(stderr);
    return false;
  };
  auto parse_double = [&](const std::string& name, const std::string& value, double& into) {
    char* end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || parsed < 0) {
      return bad(name + " expects a non-negative number, got '" + value + "'");
    }
    into = parsed;
    return true;
  };
  auto parse_int = [&](const std::string& name, const std::string& value, int& into) {
    char* end = nullptr;
    long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || parsed < 0) {
      return bad(name + " expects a non-negative integer, got '" + value + "'");
    }
    into = static_cast<int>(parsed);
    return true;
  };

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0 || arg == "--") {
      if (arg != "--") {
        out.positionals.push_back(arg);
      }
      continue;
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto need_value = [&]() {
      if (has_value) {
        return true;
      }
      if (i + 1 >= args.size()) {
        return bad(name + " expects a value");
      }
      value = args[++i];
      return true;
    };
    if (name == "--ledger") {
      if (!need_value()) return false;
      out.ledger_dir = value;
    } else if (name == "--check" && subcommand == "diff") {
      out.check = true;
    } else if (name == "--timings" && subcommand == "diff") {
      out.timings = true;
    } else if (name == "--format" && subcommand == "diff") {
      if (!need_value()) return false;
      if (value != "text" && value != "json") {
        return bad("unknown format '" + value + "' (expected text, json)");
      }
      out.format = value;
    } else if (name == "--max-new" && subcommand == "diff") {
      if (!need_value()) return false;
      if (!parse_int(name, value, out.thresholds.max_new_findings)) return false;
    } else if (name == "--stage-ratio" && subcommand == "diff") {
      if (!need_value()) return false;
      if (!parse_double(name, value, out.thresholds.stage_ratio)) return false;
    } else if (name == "--stage-floor" && subcommand == "diff") {
      if (!need_value()) return false;
      if (!parse_double(name, value, out.thresholds.stage_floor_seconds)) return false;
    } else if (name == "--prune-drop" && subcommand == "diff") {
      if (!need_value()) return false;
      if (!parse_double(name, value, out.thresholds.prune_rate_drop)) return false;
    } else if (name == "--limit" && subcommand == "history") {
      if (!need_value()) return false;
      if (!parse_int(name, value, out.limit)) return false;
    } else if (name == "--compact" && subcommand == "history") {
      if (!need_value()) return false;
      if (!parse_int(name, value, out.compact)) return false;
    } else if (name == "--html" && subcommand == "report") {
      if (!need_value()) return false;
      out.html_path = value;
    } else {
      return bad("unknown option " + arg);
    }
  }
  return true;
}

int RunDiffCommand(const std::vector<std::string>& args) {
  using namespace vc;
  LedgerArgs parsed;
  if (!ParseLedgerArgs("diff", args, parsed)) {
    return 2;
  }
  if (parsed.positionals.size() != 0 && parsed.positionals.size() != 2) {
    std::fprintf(stderr, "valuecheck diff: expected zero or two run selectors, got %zu\n",
                 parsed.positionals.size());
    return 2;
  }
  std::string sel_a = parsed.positionals.empty() ? "prev" : parsed.positionals[0];
  std::string sel_b = parsed.positionals.empty() ? "latest" : parsed.positionals[1];

  RunLedger ledger(parsed.ledger_dir);
  std::string error;
  std::optional<RunRecord> run_a = ledger.Find(sel_a, &error);
  if (!run_a.has_value()) {
    std::fprintf(stderr, "valuecheck diff: %s\n", error.c_str());
    return 2;
  }
  std::optional<RunRecord> run_b = ledger.Find(sel_b, &error);
  if (!run_b.has_value()) {
    std::fprintf(stderr, "valuecheck diff: %s\n", error.c_str());
    return 2;
  }

  RunDiff diff = ComputeRunDiff(*run_a, *run_b, parsed.thresholds);
  if (parsed.format == "json") {
    std::printf("%s\n", DiffToJson(diff).c_str());
  } else {
    std::fputs(RenderDiffText(diff, parsed.timings).c_str(), stdout);
  }
  if (parsed.check) {
    if (diff.HasRegressions()) {
      std::printf("check: FAILED (%zu regression(s))\n", diff.regressions.size());
      return 1;
    }
    std::printf("check: PASSED\n");
  }
  return 0;
}

int RunHistoryCommand(const std::vector<std::string>& args) {
  using namespace vc;
  LedgerArgs parsed;
  if (!ParseLedgerArgs("history", args, parsed)) {
    return 2;
  }
  if (!parsed.positionals.empty()) {
    std::fprintf(stderr, "valuecheck history: unexpected argument '%s'\n",
                 parsed.positionals[0].c_str());
    return 2;
  }
  RunLedger ledger(parsed.ledger_dir);
  std::string error;
  if (parsed.compact >= 0) {
    int dropped = ledger.Compact(parsed.compact, &error);
    if (dropped < 0) {
      std::fprintf(stderr, "valuecheck history: compact failed: %s\n", error.c_str());
      return 2;
    }
    std::printf("compacted: dropped %d run(s), kept newest %d\n", dropped, parsed.compact);
  }
  int skipped = 0;
  std::optional<std::vector<RunRecord>> runs = ledger.Load(&error, &skipped);
  if (!runs.has_value()) {
    std::fprintf(stderr, "valuecheck history: %s\n", error.c_str());
    return 2;
  }
  if (skipped > 0) {
    std::fprintf(stderr, "valuecheck history: skipped %d unparsable ledger line(s)\n", skipped);
  }
  if (runs->empty()) {
    std::printf("ledger %s: no runs recorded\n", ledger.LedgerFile().c_str());
    return 0;
  }
  TableWriter table({"run", "timestamp (UTC)", "label", "jobs", "findings", "analysis_s",
                     "options"});
  size_t first = 0;
  if (parsed.limit >= 0 && runs->size() > static_cast<size_t>(parsed.limit)) {
    first = runs->size() - static_cast<size_t>(parsed.limit);
  }
  for (size_t i = first; i < runs->size(); ++i) {
    const RunRecord& run = (*runs)[i];
    table.AddRow({run.run_id, FormatTimestamp(run.timestamp_ms), run.label,
                  std::to_string(run.jobs), std::to_string(run.findings.size()),
                  FormatDouble(run.metrics.analysis_seconds, 3), run.options_summary});
  }
  std::fputs(table.RenderText().c_str(), stdout);
  return 0;
}

int RunReportCommand(const std::vector<std::string>& args) {
  using namespace vc;
  LedgerArgs parsed;
  if (!ParseLedgerArgs("report", args, parsed)) {
    return 2;
  }
  if (parsed.html_path.empty()) {
    std::fprintf(stderr, "valuecheck report: --html FILE is required\n");
    return 2;
  }
  RunLedger ledger(parsed.ledger_dir);
  std::string error;
  std::optional<std::vector<RunRecord>> runs = ledger.Load(&error);
  if (!runs.has_value()) {
    std::fprintf(stderr, "valuecheck report: %s\n", error.c_str());
    return 2;
  }
  if (!EnsureParentDir(parsed.html_path)) {
    return 2;
  }
  std::ofstream out(parsed.html_path, std::ios::trunc | std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "valuecheck report: cannot write %s\n", parsed.html_path.c_str());
    return 2;
  }
  out << RenderHtmlDashboard(*runs);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "valuecheck report: write to %s failed\n", parsed.html_path.c_str());
    return 2;
  }
  std::printf("wrote dashboard for %zu run(s) to %s\n", runs->size(), parsed.html_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string subcommand = "analyze";
  if (!args.empty() &&
      (args[0] == "analyze" || args[0] == "diff" || args[0] == "history" ||
       args[0] == "report" || args[0] == "serve")) {
    subcommand = args[0];
    args.erase(args.begin());
  }
  if (subcommand == "serve") {
    return RunServeCommand(args);
  }
  if (subcommand == "diff") {
    return RunDiffCommand(args);
  }
  if (subcommand == "history") {
    return RunHistoryCommand(args);
  }
  if (subcommand == "report") {
    return RunReportCommand(args);
  }
  return RunAnalyze(args);
}

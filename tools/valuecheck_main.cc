// valuecheck — the command-line front end over the vc::Analysis facade.
//
// Two modes:
//
//   1. Directory/file mode (no version history): analyzes Mini-C sources from
//      disk. Without authorship the cross-scope filter cannot run, so the
//      tool reports every unused definition (the "w/o Authorship" behavior),
//      unranked. Useful as a precise dead-store checker.
//
//        valuecheck --jobs=0 src/ extra.c
//
//   2. History mode: loads a .vchist commit history (see
//      src/vcs/history_io.h for the format), reconstructs line authorship,
//      and runs the full pipeline — cross-scope filtering, pruning, and DOK
//      familiarity ranking.
//
//        valuecheck --history project.vchist
//
// Every flag maps onto a vc::AnalysisOptions field (or a report/output
// control); the flag table below is the single source of truth and also
// renders --help.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/report_formats.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/vcs/history_io.h"

namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "valuecheck: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct CliOptions {
  std::string history_path;
  std::string format = "text";
  std::string trace_path;
  bool metrics = false;
  int top = -1;
  bool all_scopes = false;
  vc::AnalysisOptions analysis;
  std::vector<std::string> inputs;
};

// One registered command-line flag. `value_name` is empty for boolean
// switches; `maps_to` names the AnalysisOptions field (or output control) the
// flag drives, and is rendered in --help so the CLI surface documents the
// API surface.
struct FlagSpec {
  const char* name;        // without the value part, e.g. "--jobs"
  const char* value_name;  // e.g. "N"; nullptr for switches
  const char* maps_to;     // e.g. "AnalysisOptions::jobs"
  const char* help;
  // Applies the flag; returns false (after printing to stderr) on a bad value.
  bool (*apply)(CliOptions&, const std::string& value);
};

const FlagSpec kFlags[] = {
    {"--history", "FILE", "input mode",
     "load a vchist commit history (enables authorship, cross-scope\n"
     "filtering, and familiarity ranking)",
     [](CliOptions& o, const std::string& v) {
       o.history_path = v;
       return true;
     }},
    {"--jobs", "N", "AnalysisOptions::jobs",
     "parallel worker lanes for parse/lower and detection\n"
     "(default 1; 0 = all hardware threads; output is identical\n"
     "at any value)",
     [](CliOptions& o, const std::string& v) {
       char* end = nullptr;
       long jobs = std::strtol(v.c_str(), &end, 10);
       if (end == v.c_str() || *end != '\0' || jobs < 0) {
         std::fprintf(stderr, "valuecheck: --jobs expects a non-negative integer, got '%s'\n",
                      v.c_str());
         return false;
       }
       o.analysis.jobs = static_cast<int>(jobs);
       return true;
     }},
    {"--format", "FMT", "output control",
     "output format: text (default), csv, json, sarif",
     [](CliOptions& o, const std::string& v) {
       if (v != "text" && v != "csv" && v != "json" && v != "sarif") {
         std::fprintf(stderr, "valuecheck: unknown format '%s' (expected text, csv, json, sarif)\n",
                      v.c_str());
         return false;
       }
       o.format = v;
       return true;
     }},
    {"--trace", "FILE", "observability",
     "write a Chrome trace-event JSON of the run (load in\n"
     "chrome://tracing or Perfetto)",
     [](CliOptions& o, const std::string& v) {
       o.trace_path = v;
       return true;
     }},
    {"--metrics", nullptr, "AnalysisOptions::collect_metrics",
     "collect per-stage metrics and print a stats table to stderr",
     [](CliOptions& o, const std::string&) {
       o.metrics = true;
       o.analysis.collect_metrics = true;
       return true;
     }},
    {"--log-level", "LEVEL", "observability",
     "stderr log verbosity: error, warn (default), info, debug",
     [](CliOptions& o, const std::string& v) {
       std::optional<vc::LogLevel> level = vc::ParseLogLevel(v);
       if (!level.has_value()) {
         std::fprintf(stderr,
                      "valuecheck: unknown log level '%s' (expected error, warn, info, debug)\n",
                      v.c_str());
         return false;
       }
       vc::SetLogLevel(*level);
       return true;
     }},
    {"--top", "K", "output control",
     "print only the K highest-ranked findings (text mode)",
     [](CliOptions& o, const std::string& v) {
       o.top = std::atoi(v.c_str());
       return true;
     }},
    {"--all-scopes", nullptr, "AnalysisOptions::cross_scope_only",
     "keep non-cross-scope findings even in history mode",
     [](CliOptions& o, const std::string&) {
       o.all_scopes = true;
       return true;
     }},
    {"--define", "NAME[=V]", "AnalysisOptions::config",
     "define a preprocessor macro for #if evaluation",
     [](CliOptions& o, const std::string& v) {
       size_t eq = v.find('=');
       if (eq == std::string::npos) {
         o.analysis.config.Define(v);
       } else {
         o.analysis.config.Define(v.substr(0, eq),
                                  std::strtoll(v.c_str() + eq + 1, nullptr, 0));
       }
       return true;
     }},
    {"--no-prune-config", nullptr, "AnalysisOptions::prune.config_dependency",
     "disable configuration-dependency pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.config_dependency = false;
       return true;
     }},
    {"--no-prune-cursor", nullptr, "AnalysisOptions::prune.cursor",
     "disable cursor-pattern pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.cursor = false;
       return true;
     }},
    {"--no-prune-hints", nullptr, "AnalysisOptions::prune.unused_hints",
     "disable unused-hint pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.unused_hints = false;
       return true;
     }},
    {"--no-prune-peer", nullptr, "AnalysisOptions::prune.peer_definition",
     "disable peer-definition pruning",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.peer_definition = false;
       return true;
     }},
    {"--stale-code", nullptr, "AnalysisOptions::prune.stale_code",
     "enable commit-history stale-code pruning (needs history)",
     [](CliOptions& o, const std::string&) {
       o.analysis.prune.stale_code = true;
       return true;
     }},
    {"--ea-model", nullptr, "AnalysisOptions::ranking.use_ea_model",
     "rank with the EA familiarity model instead of DOK",
     [](CliOptions& o, const std::string&) {
       o.analysis.ranking.use_ea_model = true;
       return true;
     }},
};

void PrintUsage(FILE* out) {
  std::fputs("usage: valuecheck [options] <file.c|dir>... | --history <file.vchist>\n\noptions:\n",
             out);
  for (const FlagSpec& flag : kFlags) {
    std::string head = flag.name;
    if (flag.value_name != nullptr) {
      head += "=";
      head += flag.value_name;
    }
    std::fprintf(out, "  %-21s", head.c_str());
    if (head.size() > 21) {
      std::fprintf(out, "\n  %-21s", "");
    }
    // Help text may span lines; keep continuation lines aligned.
    const char* text = flag.help;
    bool first = true;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!first) {
        std::fprintf(out, "  %-21s", "");
      }
      std::fprintf(out, "%s\n", line.c_str());
      first = false;
    }
    std::fprintf(out, "  %-21s[%s]\n", "", flag.maps_to);
  }
  std::fputs("  --help, -h           print this summary\n", out);
}

const FlagSpec* FindFlag(const std::string& name) {
  for (const FlagSpec& flag : kFlags) {
    if (name == flag.name) {
      return &flag;
    }
  }
  return nullptr;
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      options.inputs.push_back(arg);
      continue;
    }
    std::string name = arg;
    std::string value;
    bool has_value = false;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    const FlagSpec* flag = FindFlag(name);
    if (flag == nullptr) {
      std::fprintf(stderr, "valuecheck: unknown option %s\n", arg.c_str());
      PrintUsage(stderr);
      return false;
    }
    if (flag->value_name != nullptr && !has_value) {
      // Allow the "--flag VALUE" spelling.
      if (i + 1 >= argc) {
        std::fprintf(stderr, "valuecheck: %s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    } else if (flag->value_name == nullptr && has_value) {
      std::fprintf(stderr, "valuecheck: %s does not take a value\n", name.c_str());
      return false;
    }
    if (!flag->apply(options, value)) {
      // Bad flag values (e.g. --format/--log-level typos) never silently
      // default: the apply hook printed the specific complaint, we add the
      // usage summary, and main exits non-zero.
      PrintUsage(stderr);
      return false;
    }
  }
  if (options.history_path.empty() && options.inputs.empty()) {
    PrintUsage(stderr);
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> CollectSources(
    const std::vector<std::string>& inputs) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& input : inputs) {
    std::filesystem::path path(input);
    if (std::filesystem::is_directory(path)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && entry.path().extension() == ".c") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const std::string& file : found) {
        files.emplace_back(file, ReadFileOrDie(file));
      }
    } else {
      files.emplace_back(input, ReadFileOrDie(input));
    }
  }
  return files;
}

void PrintText(const vc::AnalysisReport& report, const vc::Repository* repo, int top,
               bool ranked) {
  using namespace vc;
  std::printf("valuecheck: %d unused definition(s)", static_cast<int>(report.findings.size()));
  if (report.prune_stats.TotalPruned() > 0) {
    std::printf(" (%d pruned: %d config, %d cursor, %d hints, %d peer, %d stale)",
                report.prune_stats.TotalPruned(), report.prune_stats.config_dependency,
                report.prune_stats.cursor, report.prune_stats.unused_hints,
                report.prune_stats.peer_definition, report.prune_stats.stale_code);
  }
  std::printf("\n");
  int shown = 0;
  for (const UnusedDefCandidate& cand : report.findings) {
    if (top >= 0 && shown >= top) {
      std::printf("... %d more (raise --top)\n",
                  static_cast<int>(report.findings.size()) - shown);
      break;
    }
    ++shown;
    std::printf("%s:%d: warning: ", cand.file.c_str(), cand.def_loc.line);
    switch (cand.kind) {
      case CandidateKind::kOverwrittenDef:
        std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kUnusedRetVal:
        std::printf("return value%s is never used",
                    !cand.callee_name.empty()
                        ? (" of '" + cand.callee_name + "'").c_str()
                        : "");
        break;
      case CandidateKind::kUnusedParam:
        std::printf("parameter '%s' value is never used", cand.slot_name.c_str());
        break;
      case CandidateKind::kOverwrittenParam:
        std::printf("parameter '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kPlainUnused:
        if (cand.overwritten) {
          std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        } else {
          std::printf("value of '%s' is never used", cand.slot_name.c_str());
        }
        break;
    }
    std::printf(" [in %s]", cand.function.c_str());
    if (repo != nullptr && cand.responsible_author != kInvalidAuthor && ranked) {
      std::printf(" (introduced by %s, familiarity %.2f)",
                  repo->GetAuthor(cand.responsible_author).name.c_str(), cand.familiarity);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vc;
  CliOptions options;
  if (!ParseArgs(argc, argv, options)) {
    return 2;
  }

  if (!options.trace_path.empty()) {
    TraceCollector::Global().Enable();
  }
  if (options.metrics) {
    MetricsRegistry::Global().Enable();
  }

  Repository repo;
  bool has_history = !options.history_path.empty();
  if (has_history) {
    std::string error;
    std::optional<Repository> loaded =
        LoadHistory(ReadFileOrDie(options.history_path), &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "valuecheck: %s: %s\n", options.history_path.c_str(),
                   error.c_str());
      return 2;
    }
    repo = std::move(*loaded);
  } else {
    // No authorship: fall back to reporting all scopes, unranked.
    options.analysis.cross_scope_only = false;
    options.analysis.ranking.enabled = false;
  }
  if (options.all_scopes) {
    options.analysis.cross_scope_only = false;
  }

  Analysis analysis(options.analysis);
  auto parse_start = std::chrono::steady_clock::now();
  Project project = has_history
                        ? analysis.BuildFromRepository(repo)
                        : analysis.BuildFromSources(CollectSources(options.inputs));
  double parse_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - parse_start).count();

  if (project.diags().HasErrors()) {
    std::fputs(project.diags().Render(project.sources()).c_str(), stderr);
    return 2;
  }

  AnalysisReport report = analysis.Run(project, has_history ? &repo : nullptr);
  report.parse_seconds = parse_seconds;
  report.analysis_seconds += parse_seconds;
  if (report.stage.collected) {
    report.stage.parse_seconds = parse_seconds;
    report.stage.files_parsed = project.units().size();
  }

  if (options.format == "json") {
    std::printf("%s\n", ReportToJson(report, has_history ? &repo : nullptr).c_str());
  } else if (options.format == "sarif") {
    std::printf("%s\n", ReportToSarif(report).c_str());
  } else if (options.format == "csv") {
    std::fputs(report.ToCsv().c_str(), stdout);
  } else {
    PrintText(report, has_history ? &repo : nullptr, options.top,
              options.analysis.ranking.enabled);
  }

  // Observability epilogue — all on stderr, so findings on stdout are
  // byte-identical with and without --metrics/--trace.
  if (options.metrics) {
    std::fputs("\n=== pipeline stage metrics ===\n", stderr);
    std::fputs(RenderStageMetricsTable(report).c_str(), stderr);
    std::fputs("\n=== metrics registry ===\n", stderr);
    std::fputs(MetricsRegistry::Global().RenderTable().c_str(), stderr);
  }
  if (!options.trace_path.empty()) {
    TraceCollector& collector = TraceCollector::Global();
    collector.Disable();
    if (!collector.WriteJson(options.trace_path)) {
      std::fprintf(stderr, "valuecheck: cannot write trace to %s\n",
                   options.trace_path.c_str());
      return 2;
    }
    VC_LOG_INFO("wrote " + std::to_string(collector.EventCount()) + " trace event(s) to " +
                options.trace_path);
  }
  return report.findings.empty() ? 0 : 1;
}

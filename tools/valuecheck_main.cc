// valuecheck — the command-line front end.
//
// Two modes:
//
//   1. Directory/file mode (no version history): analyzes Mini-C sources from
//      disk. Without authorship the cross-scope filter cannot run, so the
//      tool reports every unused definition (the "w/o Authorship" behavior),
//      unranked. Useful as a precise dead-store checker.
//
//        valuecheck src/ extra.c
//
//   2. History mode: loads a .vchist commit history (see
//      src/vcs/history_io.h for the format), reconstructs line authorship,
//      and runs the full pipeline — cross-scope filtering, pruning, and DOK
//      familiarity ranking.
//
//        valuecheck --history project.vchist
//
// Output formats: --format=text (default), json, sarif, csv.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/report_formats.h"
#include "src/core/valuecheck.h"
#include "src/vcs/history_io.h"

namespace {

constexpr const char* kUsage =
    "usage: valuecheck [options] <file.c|dir>... | --history <file.vchist>\n"
    "\n"
    "options:\n"
    "  --history=FILE     load a vchist commit history (enables authorship,\n"
    "                     cross-scope filtering, and familiarity ranking)\n"
    "  --format=FMT       text (default), json, sarif, csv\n"
    "  --top=N            print only the N highest-ranked findings (text mode)\n"
    "  --all-scopes       keep non-cross-scope findings even in history mode\n"
    "  --define=NAME[=V]  define a preprocessor macro for #if evaluation\n"
    "  --no-prune-config / --no-prune-cursor / --no-prune-hints /\n"
    "  --no-prune-peer    disable a pruning pattern\n"
    "  --stale-code       enable commit-history stale-code pruning (needs history)\n"
    "  --ea-model         rank with the EA familiarity model instead of DOK\n";

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "valuecheck: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  std::string history_path;
  std::string format = "text";
  int top = -1;
  bool all_scopes = false;
  vc::ValueCheckOptions pipeline;
  vc::Config config;
  std::vector<std::string> inputs;
};

bool ParseArgs(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else if (arg.rfind("--history=", 0) == 0) {
      options.history_path = value_of("--history=");
    } else if (arg == "--history" && i + 1 < argc) {
      options.history_path = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      options.format = value_of("--format=");
    } else if (arg.rfind("--top=", 0) == 0) {
      options.top = std::atoi(value_of("--top=").c_str());
    } else if (arg == "--all-scopes") {
      options.all_scopes = true;
    } else if (arg.rfind("--define=", 0) == 0) {
      std::string def = value_of("--define=");
      size_t eq = def.find('=');
      if (eq == std::string::npos) {
        options.config.Define(def);
      } else {
        options.config.Define(def.substr(0, eq),
                              std::strtoll(def.c_str() + eq + 1, nullptr, 0));
      }
    } else if (arg == "--no-prune-config") {
      options.pipeline.prune.config_dependency = false;
    } else if (arg == "--no-prune-cursor") {
      options.pipeline.prune.cursor = false;
    } else if (arg == "--no-prune-hints") {
      options.pipeline.prune.unused_hints = false;
    } else if (arg == "--no-prune-peer") {
      options.pipeline.prune.peer_definition = false;
    } else if (arg == "--stale-code") {
      options.pipeline.prune.stale_code = true;
    } else if (arg == "--ea-model") {
      options.pipeline.ranking.use_ea_model = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "valuecheck: unknown option %s\n%s", arg.c_str(), kUsage);
      return false;
    } else {
      options.inputs.push_back(arg);
    }
  }
  if (options.history_path.empty() && options.inputs.empty()) {
    std::fputs(kUsage, stderr);
    return false;
  }
  return true;
}

std::vector<std::pair<std::string, std::string>> CollectSources(
    const std::vector<std::string>& inputs) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const std::string& input : inputs) {
    std::filesystem::path path(input);
    if (std::filesystem::is_directory(path)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && entry.path().extension() == ".c") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      for (const std::string& file : found) {
        files.emplace_back(file, ReadFileOrDie(file));
      }
    } else {
      files.emplace_back(input, ReadFileOrDie(input));
    }
  }
  return files;
}

void PrintText(const vc::ValueCheckReport& report, const vc::Repository* repo, int top,
               bool ranked) {
  using namespace vc;
  std::printf("valuecheck: %d unused definition(s)", static_cast<int>(report.findings.size()));
  if (report.prune_stats.TotalPruned() > 0) {
    std::printf(" (%d pruned: %d config, %d cursor, %d hints, %d peer, %d stale)",
                report.prune_stats.TotalPruned(), report.prune_stats.config_dependency,
                report.prune_stats.cursor, report.prune_stats.unused_hints,
                report.prune_stats.peer_definition, report.prune_stats.stale_code);
  }
  std::printf("\n");
  int shown = 0;
  for (const UnusedDefCandidate& cand : report.findings) {
    if (top >= 0 && shown >= top) {
      std::printf("... %d more (raise --top)\n",
                  static_cast<int>(report.findings.size()) - shown);
      break;
    }
    ++shown;
    std::printf("%s:%d: warning: ", cand.file.c_str(), cand.def_loc.line);
    switch (cand.kind) {
      case CandidateKind::kOverwrittenDef:
        std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kUnusedRetVal:
        std::printf("return value%s is never used",
                    !cand.callee_name.empty()
                        ? (" of '" + cand.callee_name + "'").c_str()
                        : "");
        break;
      case CandidateKind::kUnusedParam:
        std::printf("parameter '%s' value is never used", cand.slot_name.c_str());
        break;
      case CandidateKind::kOverwrittenParam:
        std::printf("parameter '%s' is overwritten before use", cand.slot_name.c_str());
        break;
      case CandidateKind::kPlainUnused:
        if (cand.overwritten) {
          std::printf("value of '%s' is overwritten before use", cand.slot_name.c_str());
        } else {
          std::printf("value of '%s' is never used", cand.slot_name.c_str());
        }
        break;
    }
    std::printf(" [in %s]", cand.function.c_str());
    if (repo != nullptr && cand.responsible_author != kInvalidAuthor && ranked) {
      std::printf(" (introduced by %s, familiarity %.2f)",
                  repo->GetAuthor(cand.responsible_author).name.c_str(), cand.familiarity);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vc;
  Options options;
  if (!ParseArgs(argc, argv, options)) {
    return 2;
  }

  Repository repo;
  bool has_history = !options.history_path.empty();
  Project project;
  if (has_history) {
    std::string error;
    std::optional<Repository> loaded =
        LoadHistory(ReadFileOrDie(options.history_path), &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "valuecheck: %s: %s\n", options.history_path.c_str(),
                   error.c_str());
      return 2;
    }
    repo = std::move(*loaded);
    project = Project::FromRepository(repo, options.config);
  } else {
    // No authorship: fall back to reporting all scopes, unranked.
    options.pipeline.cross_scope_only = false;
    options.pipeline.ranking.enabled = false;
    project = Project::FromSources(CollectSources(options.inputs), options.config);
  }
  if (options.all_scopes) {
    options.pipeline.cross_scope_only = false;
  }

  if (project.diags().HasErrors()) {
    std::fputs(project.diags().Render(project.sources()).c_str(), stderr);
    return 2;
  }

  ValueCheckReport report =
      RunValueCheck(project, has_history ? &repo : nullptr, options.pipeline);

  if (options.format == "json") {
    std::printf("%s\n", ReportToJson(report, has_history ? &repo : nullptr).c_str());
  } else if (options.format == "sarif") {
    std::printf("%s\n", ReportToSarif(report).c_str());
  } else if (options.format == "csv") {
    std::fputs(report.ToCsv().c_str(), stdout);
  } else {
    PrintText(report, has_history ? &repo : nullptr, options.top,
              options.pipeline.ranking.enabled);
  }
  return report.findings.empty() ? 0 : 1;
}

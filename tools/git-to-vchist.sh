#!/usr/bin/env bash
# Converts a git repository's history (for a set of paths) into the .vchist
# format the `valuecheck` CLI consumes, so real projects can run the full
# pipeline — authorship, cross-scope filtering, DOK ranking — without a
# libgit2 binding.
#
# usage: tools/git-to-vchist.sh <git-repo-dir> [pathspec...] > project.vchist
#
# Every commit that touches the pathspec becomes one vchist commit block with
# the post-commit content of each touched file. Merge commits are linearized
# in first-parent order. Binary files and files over 1 MB are skipped.
set -euo pipefail

repo="${1:?usage: git-to-vchist.sh <git-repo-dir> [pathspec...]}"
shift
pathspec=("$@")
if [ "${#pathspec[@]}" -eq 0 ]; then
  pathspec=("*.c")
fi

git -C "$repo" rev-parse --git-dir > /dev/null

# Oldest-first, first-parent history.
git -C "$repo" log --first-parent --reverse --format='%H%x09%an%x09%at%x09%s' \
    -- "${pathspec[@]}" |
while IFS=$'\t' read -r sha author time subject; do
  echo "commit"
  echo "author ${author}"
  echo "time ${time}"
  # vchist messages are single-line; strip tabs/newlines defensively.
  echo "message $(printf '%s' "$subject" | tr '\t\n' '  ')"
  # Files this commit touched within the pathspec.
  git -C "$repo" diff-tree --no-commit-id --name-status -r --root "$sha" \
      -- "${pathspec[@]}" |
  while IFS=$'\t' read -r status path _renamed; do
    case "$status" in
      D)
        echo "delete ${path}"
        ;;
      R*)
        # Rename: delete the old path; the new one is emitted by its own row.
        echo "delete ${path}"
        ;;
      *)
        # Skip binaries and megafiles.
        if git -C "$repo" cat-file -s "${sha}:${path}" 2>/dev/null |
           awk '{exit !($1 <= 1048576)}'; then
          if git -C "$repo" show "${sha}:${path}" | grep -qI .; then
            echo "write ${path}"
            echo "<<<"
            git -C "$repo" show "${sha}:${path}"
            echo ">>>"
          fi
        fi
        ;;
    esac
  done
  echo "end"
done

// IR lowering tests: instruction shapes, CFG structure, slots, store
// annotations, synthetic temps for ignored call results, call-site records.

#include <gtest/gtest.h>

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"

namespace vc {
namespace {

struct Lowered {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
  std::unique_ptr<IrModule> module;
};

std::unique_ptr<Lowered> Lower(const std::string& code) {
  auto lowered = std::make_unique<Lowered>();
  lowered->unit = ParseString(lowered->sm, "test.c", code, lowered->diags);
  EXPECT_FALSE(lowered->diags.HasErrors()) << lowered->diags.Render(lowered->sm);
  lowered->module = LowerUnit(lowered->unit);
  return lowered;
}

int CountOps(const IrFunction& func, Opcode op) {
  int n = 0;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      n += inst.op == op ? 1 : 0;
    }
  }
  return n;
}

const Instruction* FindStoreTo(const IrFunction& func, const std::string& slot_name) {
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kStore && func.slots[inst.slot].name == slot_name) {
        return &inst;
      }
    }
  }
  return nullptr;
}

TEST(IrBuilder, StraightLineLoadsAndStores) {
  auto lowered = Lower("int f(int a) { int x = a + 1; return x; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_EQ(func->blocks.size(), 1u);
  EXPECT_EQ(CountOps(*func, Opcode::kLoad), 2);   // a, x
  EXPECT_EQ(CountOps(*func, Opcode::kStore), 1);  // x
  EXPECT_EQ(CountOps(*func, Opcode::kRet), 1);
}

TEST(IrBuilder, ParamSlotsRegistered) {
  auto lowered = Lower("int f(int a, int b) { return a + b; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  ASSERT_EQ(func->param_slots.size(), 2u);
  EXPECT_EQ(func->slots[func->param_slots[0]].name, "a");
  EXPECT_TRUE(func->slots[func->param_slots[0]].is_param);
}

TEST(IrBuilder, IfProducesDiamond) {
  auto lowered = Lower("int f(int a) { int r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  // entry, then, merge, else = 4 blocks.
  EXPECT_EQ(func->blocks.size(), 4u);
  EXPECT_EQ(CountOps(*func, Opcode::kCondBr), 1);
  const BasicBlock* entry = func->Entry();
  ASSERT_EQ(entry->succs.size(), 2u);
}

TEST(IrBuilder, WhileLoopHasBackEdge) {
  auto lowered = Lower("int f(int n) { while (n > 0) { n = n - 1; } return n; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  // Find a block whose successor id is smaller: the loop back edge.
  bool back_edge = false;
  for (const auto& block : func->blocks) {
    for (BlockId succ : block->succs) {
      back_edge |= succ < block->id;
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(IrBuilder, FieldSensitiveSlots) {
  auto lowered = Lower(
      "struct ctx { int host; int port; };\n"
      "int f(int h) { struct ctx c; c.host = h; c.port = 2; return c.port; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_NE(FindStoreTo(*func, "c#0"), nullptr);
  EXPECT_NE(FindStoreTo(*func, "c#1"), nullptr);
}

TEST(IrBuilder, IgnoredCallResultGetsSyntheticStore) {
  auto lowered = Lower("int g(int x);\nvoid f(int a) { g(a); }");
  const IrFunction* func = lowered->module->FindFunction("f");
  bool found = false;
  for (const auto& block : func->blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kStore && inst.is_synthetic_store) {
        found = true;
        EXPECT_TRUE(func->slots[inst.slot].is_synthetic);
        EXPECT_NE(inst.origin_callee, nullptr);
        EXPECT_EQ(inst.origin_callee->name, "g");
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(IrBuilder, IgnoredVoidCallHasNoSyntheticStore) {
  auto lowered = Lower("void g(int x);\nvoid f(int a) { g(a); }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kStore), 0);
}

TEST(IrBuilder, VoidCastedCallIsNotSynthetic) {
  auto lowered = Lower("int g(int x);\nvoid f(int a) { (void)g(a); }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kStore), 0);
}

TEST(IrBuilder, CallSiteRecordsAssignment) {
  auto lowered = Lower(
      "int g(int x);\n"
      "int f(int a) { int r = g(a); g(r); return r; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  ASSERT_EQ(func->call_sites.size(), 2u);
  EXPECT_TRUE(func->call_sites[0].result_assigned);
  EXPECT_FALSE(func->call_sites[1].result_assigned);
}

TEST(IrBuilder, StoreFromCallAnnotated) {
  auto lowered = Lower("int g(int x);\nint f(int a) { int r = g(a); return r; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  const Instruction* store = FindStoreTo(*func, "r");
  ASSERT_NE(store, nullptr);
  ASSERT_NE(store->origin_callee, nullptr);
  EXPECT_EQ(store->origin_callee->name, "g");
  EXPECT_TRUE(store->is_decl_init);
}

TEST(IrBuilder, CastedCallStillCallOrigin) {
  auto lowered = Lower("int g(int x);\nint f(int a) { int r = (int)g(a); return r; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  const Instruction* store = FindStoreTo(*func, "r");
  ASSERT_NE(store, nullptr);
  EXPECT_NE(store->origin_callee, nullptr);
}

TEST(IrBuilder, ConstStoreAnnotated) {
  auto lowered = Lower("int f(void) { int x = 0; x = 5; return x; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  int const_stores = 0;
  for (const auto& block : func->blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kStore && inst.is_const_store) {
        ++const_stores;
      }
    }
  }
  EXPECT_EQ(const_stores, 2);
}

TEST(IrBuilder, IncrementShapes) {
  auto lowered = Lower(
      "void f(int a) {\n"
      "  int i = 0;\n"
      "  i = i + 1;\n"
      "  i += 2;\n"
      "  i++;\n"
      "  --i;\n"
      "  i = i - 3;\n"
      "  i = a + 1;\n"  // not an increment of i
      "  g_use(i);\n"
      "}\nint g_use(int);");
  const IrFunction* func = lowered->module->FindFunction("f");
  std::vector<long long> amounts;
  for (const auto& block : func->blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kStore && inst.is_increment) {
        amounts.push_back(inst.increment_amount);
      }
    }
  }
  EXPECT_EQ(amounts, (std::vector<long long>{1, 2, 1, -1, -3}));
}

TEST(IrBuilder, AddressOfProducesAddrSlot) {
  auto lowered = Lower("void g(int *p);\nvoid f(void) { int x = 1; g(&x); }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kAddrSlot), 1);
}

TEST(IrBuilder, DerefLowersToIndirect) {
  auto lowered = Lower("void f(int *p) { *p = 1; int v = *p; g_use(v); }\nint g_use(int);");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kStoreInd), 1);
  EXPECT_EQ(CountOps(*func, Opcode::kLoadInd), 1);
}

TEST(IrBuilder, ArrowFieldUsesFieldPtr) {
  auto lowered = Lower(
      "struct s { int a; int b; };\n"
      "int f(struct s *p) { p->b = 1; return p->b; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_GE(CountOps(*func, Opcode::kFieldPtr), 2);
  EXPECT_EQ(CountOps(*func, Opcode::kStoreInd), 1);
}

TEST(IrBuilder, ReturnLocsRecorded) {
  auto lowered = Lower(
      "int f(int a) {\n"
      "  if (a) {\n"
      "    return 1;\n"
      "  }\n"
      "  return 2;\n"
      "}");
  const IrFunction* func = lowered->module->FindFunction("f");
  ASSERT_EQ(func->return_locs.size(), 2u);
  EXPECT_EQ(func->return_locs[0].line, 3);
  EXPECT_EQ(func->return_locs[1].line, 5);
}

TEST(IrBuilder, ImplicitReturnAppended) {
  auto lowered = Lower("int g_sink;\nvoid f(int a) { g_sink = a; }");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kRet), 1);
}

TEST(IrBuilder, BreakContinueTargets) {
  auto lowered = Lower(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) {\n"
      "    if (i > 10) { break; }\n"
      "    if (i > 5) { continue; }\n"
      "    s = s + i;\n"
      "  }\n"
      "  return s;\n"
      "}");
  const IrFunction* func = lowered->module->FindFunction("f");
  // All break/continue lower to kBr; edges must be consistent.
  for (const auto& block : func->blocks) {
    for (BlockId succ : block->succs) {
      ASSERT_GE(succ, 0);
      ASSERT_LT(succ, static_cast<BlockId>(func->blocks.size()));
      const auto& preds = func->blocks[succ]->preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), block->id), preds.end());
    }
  }
}

TEST(IrBuilder, FunctionReferenceLowersToAddrFunc) {
  // Mini-C spells function pointers through void*; a bare function name in
  // value position materializes the function's address.
  auto lowered = Lower(
      "int target(int x) { return x; }\n"
      "int f(int a) {\n"
      "  void *fp = target;\n"
      "  g_use(fp);\n"
      "  return a;\n"
      "}\nint g_use(void *);");
  const IrFunction* func = lowered->module->FindFunction("f");
  EXPECT_EQ(CountOps(*func, Opcode::kAddrFunc), 1);
}

TEST(IrBuilder, OnlyDefinedFunctionsLowered) {
  auto lowered = Lower("int proto(int);\nint f(void) { return proto(1); }");
  EXPECT_EQ(lowered->module->functions.size(), 1u);
  EXPECT_EQ(lowered->module->FindFunction("proto"), nullptr);
}

TEST(IrBuilder, DumpContainsSlots) {
  auto lowered = Lower("int f(int a) { int x = a; return x; }");
  std::string dump = lowered->module->FindFunction("f")->Dump();
  EXPECT_NE(dump.find("store @x"), std::string::npos);
  EXPECT_NE(dump.find("load @a"), std::string::npos);
}

}  // namespace
}  // namespace vc

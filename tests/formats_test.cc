// Tests for the JSON writer and the JSON/SARIF report exporters.

#include <gtest/gtest.h>

#include "src/core/report_formats.h"
#include "src/support/json_writer.h"

namespace vc {
namespace {

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ObjectsAndArrays) {
  JsonWriter json;
  json.BeginObject();
  json.String("name", "x");
  json.Int("count", 3);
  json.Bool("flag", true);
  json.Key("items").BeginArray().IntValue(1).IntValue(2).EndArray();
  json.Key("nested").BeginObject().Double("pi", 3.5).EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"name\":\"x\",\"count\":3,\"flag\":true,\"items\":[1,2],"
            "\"nested\":{\"pi\":3.5}}");
}

TEST(JsonWriter, Escaping) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("empty_arr").BeginArray().EndArray();
  json.Key("empty_obj").BeginObject().EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"empty_arr\":[],\"empty_obj\":{}}");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter json;
  json.BeginArray();
  json.BeginObject().Int("a", 1).EndObject();
  json.BeginObject().Int("a", 2).EndObject();
  json.EndArray();
  EXPECT_EQ(json.str(), "[{\"a\":1},{\"a\":2}]");
}

TEST(JsonWriter, StringValuesInArray) {
  JsonWriter json;
  json.BeginArray().StringValue("x").StringValue("y").EndArray();
  EXPECT_EQ(json.str(), "[\"x\",\"y\"]");
}

// --- Report exporters ----------------------------------------------------------

struct Exported {
  Repository repo;
  AnalysisReport report;
};

Exported MakeReport() {
  Exported e;
  AuthorId alice = e.repo.AddAuthor("alice");
  AuthorId bob = e.repo.AddAuthor("bob");
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n";
  e.repo.AddCommit(alice, 1, "create", {{"w.c", v1}});
  std::string v2 = v1;
  v2.replace(v2.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  e.repo.AddCommit(bob, 2, "tweak", {{"w.c", v2}});
  e.report = Analysis().RunOnRepository(e.repo);
  return e;
}

TEST(ReportFormats, JsonContainsFindingFields) {
  Exported e = MakeReport();
  ASSERT_EQ(e.report.findings.size(), 1u);
  std::string json = ReportToJson(e.report, &e.repo);
  EXPECT_NE(json.find("\"file\":\"w.c\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"overwritten-def\""), std::string::npos);
  EXPECT_NE(json.find("\"defined_by\":\"alice\""), std::string::npos);
  EXPECT_NE(json.find("\"responsible\":\"bob\""), std::string::npos);
  EXPECT_NE(json.find("\"value_from_call\":\"helper\""), std::string::npos);
  EXPECT_NE(json.find("\"overwritten_at\":[6]"), std::string::npos);
}

TEST(ReportFormats, JsonWithoutRepoOmitsAuthors) {
  Exported e = MakeReport();
  std::string json = ReportToJson(e.report, nullptr);
  EXPECT_EQ(json.find("defined_by"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
}

TEST(ReportFormats, SarifStructure) {
  Exported e = MakeReport();
  std::string sarif = ReportToSarif(e.report);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"valuecheck\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"overwritten-def\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"w.c\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":5"), std::string::npos);
  // Balanced braces/brackets (structural sanity).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < sarif.size(); ++i) {
    char c = sarif[i];
    if (c == '"' && (i == 0 || sarif[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportFormats, EmptyReport) {
  AnalysisReport report;
  std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
  std::string sarif = ReportToSarif(report);
  EXPECT_NE(sarif.find("\"results\":[]"), std::string::npos);
}

}  // namespace
}  // namespace vc

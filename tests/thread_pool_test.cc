// Unit tests for the work-stealing ThreadPool / ParallelFor in src/support.

#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include "src/support/metrics.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vc {
namespace {

TEST(ThreadPool, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(8, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);

  ThreadPool pool(2);
  pool.ParallelFor(4, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  ParallelFor(8, kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SerialJobsRunInline) {
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  ParallelFor(1, seen.size(), [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (std::thread::id id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ThreadPool, ZeroJobsMeansHardwareThreads) {
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_EQ(ResolveJobs(3), 3);
  std::atomic<int> calls{0};
  ParallelFor(0, 64, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](size_t i) {
                    if (i == 37) {
                      throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);

  // The pool stays usable after an aborted loop.
  std::atomic<int> calls{0};
  ParallelFor(4, 100, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ThreadPool, ExceptionMessageSurvives) {
  try {
    ParallelFor(4, 8, [](size_t) { throw std::runtime_error("specific message"); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(ThreadPool, NestedParallelForIsCorrect) {
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::atomic<int> total{0};
  ParallelFor(4, kOuter, [&](size_t) {
    // Nested loops execute inline on the owning lane; results must still be
    // complete and exceptions must still propagate.
    ParallelFor(4, kInner, [&](size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), static_cast<int>(kOuter * kInner));
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLoops) {
  EXPECT_THROW(ParallelFor(4, 4,
                           [](size_t) {
                             ParallelFor(4, 4, [](size_t j) {
                               if (j == 2) {
                                 throw std::logic_error("inner");
                               }
                             });
                           }),
               std::logic_error);
}

TEST(ThreadPool, WorkRunsOnPoolThreads) {
  // Sleep-bound lanes overlap even on a single hardware core: 8 lanes of
  // 20 ms finish far sooner than the 160 ms a serial loop needs.
  ThreadPool pool(8);
  std::mutex mutex;
  std::set<std::thread::id> ids;
  auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(8, 8, [&](size_t) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ids.insert(std::this_thread::get_id());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(ids.size(), 1u);
  EXPECT_LT(elapsed_ms, 120.0);
}

TEST(ThreadPoolStress, ManyTinyTasksBackToBack) {
  // Thousands of near-empty loops in a row stress the submit/wake path more
  // than the chunk math; under TSan this is the test that catches queue
  // bookkeeping races.
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(4, 4, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(total.load(), 8000);
}

TEST(ThreadPoolStress, ConcurrentParallelForsShareOnePool) {
  // Several caller threads drive loops through the same pool at once; every
  // index of every loop must still run exactly once.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kN = 500;
  std::vector<std::vector<std::atomic<int>>> counts(kCallers);
  for (auto& c : counts) {
    c = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      pool.ParallelFor(4, kN, [&, t](size_t i) { counts[t][i].fetch_add(1); });
    });
  }
  for (std::thread& caller : callers) {
    caller.join();
  }
  for (int t = 0; t < kCallers; ++t) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(counts[t][i].load(), 1) << "caller " << t << " index " << i;
    }
  }
}

TEST(ThreadPoolStress, DeeplyNestedParallelFor) {
  // Three levels deep: inner loops run inline on their lane, so this must
  // neither deadlock nor lose iterations no matter how the pool schedules.
  std::atomic<int> total{0};
  ParallelFor(4, 4, [&](size_t) {
    ParallelFor(4, 4, [&](size_t) {
      ParallelFor(4, 4, [&](size_t) { total.fetch_add(1); });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolStress, TeardownWhileWorkersIdle) {
  // Construct, idle briefly (workers parked in cv wait), destroy. The join
  // path must wake every worker exactly once; repeated to shake out lost
  // notifications that only a rare interleaving shows.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    if (round % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

TEST(ThreadPoolStress, TeardownRightAfterWork) {
  // Destroy immediately after the last loop returns, while workers may still
  // be between finishing a task and re-parking.
  for (int round = 0; round < 100; ++round) {
    ThreadPool pool(3);
    std::atomic<int> calls{0};
    pool.ParallelFor(3, 32, [&](size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 32);
  }
}

TEST(ThreadPoolStress, StatsStayConsistentUnderLoad) {
  ThreadPool pool(4);
  ThreadPoolStats before = pool.stats();
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(4, 64, [](size_t) {});
  }
  ThreadPoolStats delta = pool.stats().Delta(before);
  EXPECT_EQ(delta.parallel_fors, 100u);
  EXPECT_GT(delta.chunks_executed, 0u);
  EXPECT_EQ(delta.workers, 4);
}

// A lane credits its per-worker counters right after its last PopOrSteal
// miss, which can land moments after the caller's ParallelFor returned; the
// per-worker view is eventually consistent with the loop totals. Re-snapshot
// until the chunk sums agree (bounded, normally zero or one retry).
ThreadPoolStats SettledDelta(ThreadPool& pool, const ThreadPoolStats& before) {
  ThreadPoolStats delta = pool.stats().Delta(before);
  for (int tries = 0; tries < 200; ++tries) {
    uint64_t chunks = 0;
    for (const ThreadPoolStats::WorkerStats& w : delta.per_worker) {
      chunks += w.chunks;
    }
    if (chunks == delta.chunks_executed) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    delta = pool.stats().Delta(before);
  }
  return delta;
}

TEST(ThreadPool, PerWorkerAccountingSumsToTotals) {
  ThreadPool pool(4);
  ThreadPoolStats before = pool.stats();
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(4, 128, [](size_t) {});
  }
  ThreadPoolStats delta = SettledDelta(pool, before);
  ASSERT_EQ(delta.per_worker.size(), 5u);  // slot 0 = callers, 1..4 = workers

  uint64_t chunks = 0;
  uint64_t steals = 0;
  uint64_t lane_runs = 0;
  for (const ThreadPoolStats::WorkerStats& w : delta.per_worker) {
    chunks += w.chunks;
    steals += w.steals;
    lane_runs += w.lane_runs;
  }
  EXPECT_EQ(chunks, delta.chunks_executed);
  EXPECT_EQ(steals, delta.steals);
  EXPECT_GT(lane_runs, 0u);
  // The caller always runs lane 0 of every loop itself.
  EXPECT_GT(delta.per_worker[0].lane_runs, 0u);
}

TEST(ThreadPool, StealLatencyBucketsSumToStealsWhenMetricsOn) {
  bool was_enabled = MetricsEnabled();
  MetricsRegistry::Global().Enable();
  ThreadPool pool(4);
  ThreadPoolStats before = pool.stats();
  for (int round = 0; round < 50; ++round) {
    // Uneven costs force cross-lane steals often enough to populate buckets.
    pool.ParallelFor(4, 128, [](size_t i) {
      if (i % 31 == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }
  ThreadPoolStats delta = SettledDelta(pool, before);
  if (!was_enabled) {
    MetricsRegistry::Global().Disable();
  }

  ASSERT_EQ(delta.steal_latency_ns.size(),
            static_cast<size_t>(ThreadPoolStats::kStealLatencyBuckets));
  uint64_t bucketed = 0;
  for (uint64_t bucket : delta.steal_latency_ns) {
    bucketed += bucket;
  }
  // Every steal clocked while metrics were on lands in exactly one bucket.
  EXPECT_EQ(bucketed, delta.steals);
  // Busy time is clocked under the same switch: any slot that ran lanes in
  // this window must show nonzero busy time.
  double busy = 0.0;
  for (const ThreadPoolStats::WorkerStats& w : delta.per_worker) {
    busy += w.busy_seconds;
  }
  EXPECT_GT(busy, 0.0);
}

TEST(ThreadPool, ManyMoreChunksThanLanesBalances) {
  // Uneven iteration cost exercises stealing: lane 0's deque drains first and
  // it must steal the heavy tail chunks parked on other lanes.
  constexpr size_t kN = 256;
  std::vector<std::atomic<int>> counts(kN);
  ThreadPool pool(4);
  pool.ParallelFor(4, kN, [&](size_t i) {
    if (i % 17 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    counts[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace vc

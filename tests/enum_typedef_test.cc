// Tests for enum and typedef support: constants in expressions and case
// labels, named and anonymous typedef structs, typedef-name declarations, and
// the detector through enum-shaped code.

#include <gtest/gtest.h>

#include "src/core/detector.h"
#include "src/parser/parser.h"

namespace vc {
namespace {

struct Parsed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
};

std::unique_ptr<Parsed> Parse(const std::string& code) {
  auto parsed = std::make_unique<Parsed>();
  parsed->unit = ParseString(parsed->sm, "test.c", code, parsed->diags);
  EXPECT_FALSE(parsed->diags.HasErrors()) << parsed->diags.Render(parsed->sm);
  return parsed;
}

TEST(EnumParse, EnumeratorValuesSequenceAndOverride) {
  auto parsed = Parse(
      "enum color { RED, GREEN = 5, BLUE };\n"
      "int f(void) { return RED + GREEN + BLUE; }\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  // RED=0, GREEN=5, BLUE=6: the return expression folds to literals.
  Project project = Project::FromSources(
      {{"t.c",
        "enum color { RED, GREEN = 5, BLUE };\n"
        "int f(void) { return RED + GREEN + BLUE; }\n"}});
  EXPECT_FALSE(project.diags().HasErrors());
}

TEST(EnumParse, NegativeAndChainedValues) {
  auto parsed = Parse(
      "enum status { ERR = -2, WARN, OK = WARN, FINE };\n"
      "int f(void) { return ERR; }\n");
  EXPECT_NE(parsed->unit.FindFunction("f"), nullptr);
}

TEST(EnumParse, AnonymousEnum) {
  auto parsed = Parse(
      "enum { FLAG_A = 1, FLAG_B = 2 };\n"
      "int f(int x) { return x & FLAG_A; }\n");
  EXPECT_NE(parsed->unit.FindFunction("f"), nullptr);
}

TEST(EnumParse, EnumTypedVariables) {
  auto parsed = Parse(
      "enum color { RED, GREEN };\n"
      "int f(enum color c) {\n"
      "  enum color other = GREEN;\n"
      "  return c + other;\n"
      "}\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->params[0]->type->IsInt());
}

TEST(EnumParse, EnumConstantsInCaseLabels) {
  Project project = Project::FromSources(
      {{"t.c",
        "enum op { OP_READ = 10, OP_WRITE = 20 };\n"
        "int f(int x) {\n"
        "  int r = 0;\n"
        "  switch (x) {\n"
        "    case OP_READ:\n"
        "      r = 1;\n"
        "      break;\n"
        "    case OP_WRITE:\n"
        "      r = 2;\n"
        "      break;\n"
        "  }\n"
        "  return r;\n"
        "}\n"}});
  EXPECT_FALSE(project.diags().HasErrors())
      << project.diags().Render(project.sources());
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(EnumParse, LocalShadowsEnumerator) {
  auto parsed = Parse(
      "enum { LIMIT = 9 };\n"
      "int f(int LIMIT) { return LIMIT + 1; }\n");
  // The parameter shadows the enumerator: LIMIT in the body is a variable
  // reference, so the parameter is used.
  Project project = Project::FromSources(
      {{"t.c", "enum { LIMIT = 9 };\nint f(int LIMIT) { return LIMIT + 1; }\n"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(TypedefParse, SimpleAlias) {
  auto parsed = Parse(
      "typedef int status_t;\n"
      "status_t f(status_t s) { return s + 1; }\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->return_type->IsInt());
  EXPECT_TRUE(func->params[0]->type->IsInt());
}

TEST(TypedefParse, PointerAlias) {
  auto parsed = Parse(
      "typedef char *cstr;\n"
      "char f(cstr s) { return *s; }\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->params[0]->type->IsPointer());
  EXPECT_EQ(func->params[0]->type->pointee()->kind(), TypeKind::kChar);
}

TEST(TypedefParse, NamedStructTypedef) {
  auto parsed = Parse(
      "typedef struct node { int v; int next; } node_t;\n"
      "int f(node_t n) { return n.v; }\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->params[0]->type->IsStruct());
  ASSERT_EQ(parsed->unit.structs.size(), 1u);
  EXPECT_EQ(parsed->unit.structs[0]->name, "node");
}

TEST(TypedefParse, AnonymousStructTypedef) {
  auto parsed = Parse(
      "typedef struct { int host; int port; } addr_t;\n"
      "int f(addr_t a) { return a.host + a.port; }\n");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->params[0]->type->IsStruct());
}

TEST(TypedefParse, LocalDeclarationWithTypedefName) {
  Project project = Project::FromSources(
      {{"t.c",
        "typedef int err_t;\n"
        "int g(int);\n"
        "int f(int x) {\n"
        "  err_t rc = g(x);\n"
        "  rc = g(x + 1);\n"
        "  return rc;\n"
        "}\n"}});
  EXPECT_FALSE(project.diags().HasErrors())
      << project.diags().Render(project.sources());
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].slot_name, "rc");
  EXPECT_EQ(candidates[0].def_loc.line, 4);
}

TEST(TypedefParse, TypedefNameAsCallIsNotADecl) {
  // An identifier that is NOT a typedef followed by '(' parses as a call even
  // when a typedef with a different name exists.
  auto parsed = Parse(
      "typedef int err_t;\n"
      "int work(int x) { return x; }\n"
      "int f(int x) { return work(x); }\n");
  EXPECT_NE(parsed->unit.FindFunction("f"), nullptr);
}

TEST(TypedefParse, FieldSensitiveThroughTypedefStruct) {
  Project project = Project::FromSources(
      {{"t.c",
        "typedef struct { int host; int port; } addr_t;\n"
        "int f(int h, int p) {\n"
        "  addr_t a;\n"
        "  a.host = h;\n"
        "  a.host = 0;\n"
        "  a.port = p;\n"
        "  return a.host + a.port;\n"
        "}\n"}});
  EXPECT_FALSE(project.diags().HasErrors())
      << project.diags().Render(project.sources());
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates[0].is_field_slot);
  EXPECT_EQ(candidates[0].def_loc.line, 4);
}

TEST(TypedefParse, ForLoopWithTypedefName) {
  Project project = Project::FromSources(
      {{"t.c",
        "typedef int idx_t;\n"
        "int f(int n) {\n"
        "  int s = 0;\n"
        "  for (idx_t i = 0; i < n; i = i + 1) {\n"
        "    s = s + i;\n"
        "  }\n"
        "  return s;\n"
        "}\n"}});
  EXPECT_FALSE(project.diags().HasErrors());
  EXPECT_TRUE(DetectAll(project).empty());
}

}  // namespace
}  // namespace vc

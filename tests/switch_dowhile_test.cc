// Tests for the switch / case / default and do-while extensions: parsing,
// CFG lowering with C fallthrough semantics, and detector behavior through
// switch-shaped control flow.

#include <gtest/gtest.h>

#include "src/ast/ast_printer.h"
#include "src/core/detector.h"
#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"

namespace vc {
namespace {

struct Parsed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
  std::unique_ptr<IrModule> module;
};

std::unique_ptr<Parsed> Compile(const std::string& code) {
  auto parsed = std::make_unique<Parsed>();
  parsed->unit = ParseString(parsed->sm, "test.c", code, parsed->diags);
  EXPECT_FALSE(parsed->diags.HasErrors()) << parsed->diags.Render(parsed->sm);
  parsed->module = LowerUnit(parsed->unit);
  return parsed;
}

TEST(SwitchParse, CasesAndDefault) {
  auto parsed = Compile(
      "int f(int x) {\n"
      "  int r = 0;\n"
      "  switch (x) {\n"
      "    case 1:\n"
      "      r = 10;\n"
      "      break;\n"
      "    case 2:\n"
      "    case 3:\n"
      "      r = 20;\n"
      "      break;\n"
      "    default:\n"
      "      r = 30;\n"
      "  }\n"
      "  return r;\n"
      "}");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  std::string body = PrintStmt(func->body);
  EXPECT_NE(body.find("(switch x (case 1"), std::string::npos);
  EXPECT_NE(body.find("(case 2)"), std::string::npos);  // empty fallthrough arm
  EXPECT_NE(body.find("(default (= r 30);)"), std::string::npos);
}

TEST(SwitchParse, NegativeAndCharLabels) {
  auto parsed = Compile(
      "int f(int x) {\n"
      "  switch (x) {\n"
      "    case -1:\n"
      "      return 1;\n"
      "    case 'a':\n"
      "      return 2;\n"
      "  }\n"
      "  return 0;\n"
      "}");
  const auto* compound = static_cast<const CompoundStmt*>(
      static_cast<const Stmt*>(parsed->unit.FindFunction("f")->body));
  const auto* switch_stmt = static_cast<const SwitchStmt*>(compound->body[0]);
  ASSERT_EQ(switch_stmt->cases.size(), 2u);
  EXPECT_EQ(switch_stmt->cases[0].value, -1);
  EXPECT_EQ(switch_stmt->cases[1].value, 'a');
}

TEST(SwitchParse, DoWhileRoundTrip) {
  auto parsed = Compile(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  do {\n"
      "    s = s + n;\n"
      "    n = n - 1;\n"
      "  } while (n > 0);\n"
      "  return s;\n"
      "}");
  std::string body = PrintStmt(parsed->unit.FindFunction("f")->body);
  EXPECT_NE(body.find("(do {"), std::string::npos);
  EXPECT_NE(body.find("while (> n 0))"), std::string::npos);
}

TEST(SwitchLowering, AllValuesFlowToReturn) {
  // Every arm assigns r; the initial r=0 is live only through the no-default
  // path... with a default present, r=0 is overwritten on all paths, making
  // the initial definition an unused-def candidate.
  auto parsed = Compile(
      "int f(int x) {\n"
      "  int r = 0;\n"
      "  switch (x) {\n"
      "    case 1:\n"
      "      r = 10;\n"
      "      break;\n"
      "    default:\n"
      "      r = 30;\n"
      "  }\n"
      "  return r;\n"
      "}");
  Project project = Project::FromSources(
      {{"t.c",
        "int f(int x) {\n"
        "  int r = 0;\n"
        "  switch (x) {\n"
        "    case 1:\n"
        "      r = 10;\n"
        "      break;\n"
        "    default:\n"
        "      r = 30;\n"
        "  }\n"
        "  return r;\n"
        "}"}});
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].slot_name, "r");
  EXPECT_EQ(candidates[0].def_loc.line, 2);
  EXPECT_EQ(candidates[0].overwriter_locs.size(), 2u);
}

TEST(SwitchLowering, NoDefaultKeepsInitialDefLive) {
  Project project = Project::FromSources(
      {{"t.c",
        "int f(int x) {\n"
        "  int r = 0;\n"
        "  switch (x) {\n"
        "    case 1:\n"
        "      r = 10;\n"
        "      break;\n"
        "  }\n"
        "  return r;\n"
        "}"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(SwitchLowering, FallthroughCarriesValues) {
  // case 1 assigns t and falls through to case 2 which uses it: not unused.
  Project project = Project::FromSources(
      {{"t.c",
        "int g_sink;\n"
        "int f(int x) {\n"
        "  int t = 0;\n"
        "  switch (x) {\n"
        "    case 1:\n"
        "      t = 5;\n"
        "    case 2:\n"
        "      g_sink = t;\n"
        "      break;\n"
        "  }\n"
        "  return x;\n"
        "}"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(SwitchLowering, BreakLeavesSwitchNotLoop) {
  // A break inside switch inside a loop exits the switch only: the loop
  // counter update after the switch still runs, so nothing is unused.
  Project project = Project::FromSources(
      {{"t.c",
        "int g_sink;\n"
        "int f(int n) {\n"
        "  int total = 0;\n"
        "  while (n > 0) {\n"
        "    switch (n) {\n"
        "      case 1:\n"
        "        total = total + 1;\n"
        "        break;\n"
        "      default:\n"
        "        total = total + 2;\n"
        "    }\n"
        "    n = n - 1;\n"
        "  }\n"
        "  return total;\n"
        "}"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(SwitchLowering, ContinueInsideSwitchTargetsLoop) {
  Project project = Project::FromSources(
      {{"t.c",
        "int f(int n) {\n"
        "  int total = 0;\n"
        "  while (n > 0) {\n"
        "    n = n - 1;\n"
        "    switch (n) {\n"
        "      case 1:\n"
        "        continue;\n"
        "      default:\n"
        "        total = total + 2;\n"
        "    }\n"
        "  }\n"
        "  return total;\n"
        "}"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(DoWhileLowering, BodyRunsBeforeCondition) {
  // The do-while body's assignment feeds the condition: a single-pass
  // while-style lowering would mis-order them.
  auto parsed = Compile(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  do {\n"
      "    s = s + n;\n"
      "    n = n - 1;\n"
      "  } while (s < 100);\n"
      "  return s;\n"
      "}");
  const IrFunction* func = parsed->module->FindFunction("f");
  // Entry branches straight to the body (no pre-test).
  const Instruction* term = func->Entry()->Terminator();
  ASSERT_NE(term, nullptr);
  EXPECT_EQ(term->op, Opcode::kBr);
}

TEST(DoWhileLowering, DetectorSeesLoopCarriedUse) {
  Project project = Project::FromSources(
      {{"t.c",
        "int f(int n) {\n"
        "  int s = 0;\n"
        "  do {\n"
        "    s = s + n;\n"
        "    n = n - 1;\n"
        "  } while (n > 0);\n"
        "  return s;\n"
        "}"}});
  EXPECT_TRUE(DetectAll(project).empty());
}

TEST(DoWhileLowering, DeadStoreAfterLoopDetected) {
  Project project = Project::FromSources(
      {{"t.c",
        "int g(int);\n"
        "int f(int n) {\n"
        "  int s = 0;\n"
        "  do {\n"
        "    s = s + 1;\n"
        "    n = n - 1;\n"
        "  } while (n > 0);\n"
        "  s = g(n);\n"  // line 8: overwrites the loop's accumulated value...
        "  s = 7;\n"     // line 9: ...and is itself immediately overwritten
        "  return s;\n"
        "}"}});
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].def_loc.line, 8);
}

}  // namespace
}  // namespace vc

// Property tests for the conditional preprocessor: random nested #if/#else
// structures checked against an independent evaluation oracle that tracks
// the directive stack directly.

#include <gtest/gtest.h>

#include "src/lexer/preprocessor.h"
#include "src/support/rng.h"
#include "src/support/string_util.h"
#include "src/vcs/diff.h"

namespace vc {
namespace {

struct GeneratedPp {
  std::string text;
  std::vector<bool> expected_active;  // oracle, per line (directives = false)
  int region_count = 0;
};

// Emits a random structure of code lines and (possibly nested) conditionals,
// computing expected activeness with an explicit stack as it goes.
class PpGen {
 public:
  PpGen(uint64_t seed, const Config& config) : rng_(seed), config_(config) {}

  GeneratedPp Generate() {
    Emit(/*depth=*/0, /*budget=*/30);
    return std::move(out_);
  }

 private:
  struct Frame {
    bool branch_active;
    bool any_taken;
  };

  bool EnclosingActive() const {
    for (const Frame& frame : stack_) {
      if (!frame.branch_active) {
        return false;
      }
    }
    return true;
  }

  void Line(const std::string& text, bool directive) {
    out_.text += text + "\n";
    out_.expected_active.push_back(!directive && EnclosingActive());
  }

  void Emit(int depth, int budget) {
    while (budget-- > 0) {
      switch (rng_.NextBelow(depth >= 3 ? 2 : 4)) {
        case 0:
        case 1:
          Line("code_" + std::to_string(serial_++) + ";", /*directive=*/false);
          break;
        case 2: {
          // #if MACRO_k ... [#else ...] #endif
          int macro = static_cast<int>(rng_.NextBelow(4));
          std::string name = "MACRO_" + std::to_string(macro);
          bool truth = config_.IsDefined(name) && config_.ValueOf(name) != 0;
          bool ifdef = rng_.NextBool(0.3);
          if (ifdef) {
            truth = config_.IsDefined(name);
            Line("#ifdef " + name, /*directive=*/true);
          } else {
            Line("#if " + name, /*directive=*/true);
          }
          stack_.push_back({truth, truth});
          Emit(depth + 1, static_cast<int>(rng_.NextInRange(1, 4)));
          if (rng_.NextBool(0.5)) {
            Line("#else", /*directive=*/true);
            stack_.back().branch_active = !stack_.back().any_taken;
            stack_.back().any_taken = true;
            Emit(depth + 1, static_cast<int>(rng_.NextInRange(1, 3)));
          }
          Line("#endif", /*directive=*/true);
          stack_.pop_back();
          ++out_.region_count;
          break;
        }
        default:
          Line("", /*directive=*/false);  // blank line, inherits activeness
          break;
      }
    }
  }

  Rng rng_;
  Config config_;
  GeneratedPp out_;
  std::vector<Frame> stack_;
  int serial_ = 0;
};

struct PreprocessorProperty : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessorProperty, ActivenessMatchesOracle) {
  Config config;
  config.Define("MACRO_0");
  config.Define("MACRO_1", 0);  // defined-but-false: #if vs #ifdef divergence
  // MACRO_2 / MACRO_3 undefined.

  PpGen gen(static_cast<uint64_t>(GetParam()) * 48271 + 11, config);
  GeneratedPp expected = gen.Generate();
  PreprocessResult pp = Preprocess(expected.text, config);

  EXPECT_TRUE(pp.errors.empty());
  EXPECT_EQ(static_cast<int>(pp.regions.size()), expected.region_count);
  ASSERT_EQ(pp.lines.size(), expected.expected_active.size());
  for (size_t i = 0; i < expected.expected_active.size(); ++i) {
    bool is_blank = Trim(SplitLines(expected.text)[i]).empty();
    if (is_blank) {
      continue;  // blank lines never reach the lexer either way
    }
    EXPECT_EQ(pp.LineActive(static_cast<int>(i) + 1), expected.expected_active[i])
        << "line " << i + 1 << " of:\n"
        << expected.text;
  }
}

TEST_P(PreprocessorProperty, RegionsNestProperly) {
  Config config;
  config.Define("MACRO_0");
  PpGen gen(static_cast<uint64_t>(GetParam()) * 16807 + 3, config);
  GeneratedPp expected = gen.Generate();
  PreprocessResult pp = Preprocess(expected.text, config);
  // Every region is well-formed and regions are either disjoint or nested.
  for (const CondRegion& region : pp.regions) {
    EXPECT_LT(region.begin_line, region.end_line);
  }
  for (size_t i = 0; i < pp.regions.size(); ++i) {
    for (size_t j = i + 1; j < pp.regions.size(); ++j) {
      const CondRegion& a = pp.regions[i];
      const CondRegion& b = pp.regions[j];
      bool disjoint = a.end_line < b.begin_line || b.end_line < a.begin_line;
      bool a_in_b = b.begin_line <= a.begin_line && a.end_line <= b.end_line;
      bool b_in_a = a.begin_line <= b.begin_line && b.end_line <= a.end_line;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "regions [" << a.begin_line << "," << a.end_line << "] and [" << b.begin_line
          << "," << b.end_line << "] overlap improperly";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreprocessorProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace vc

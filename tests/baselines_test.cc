// Baseline-tool envelope tests: what each comparison tool must and must not
// detect, per the paper's §8.4 characterization.

#include <gtest/gtest.h>

#include "src/baselines/clang_unused.h"
#include "src/baselines/coverity_unused.h"
#include "src/baselines/infer_unused.h"
#include "src/baselines/smatch_unused.h"

namespace vc {
namespace {

Project Make(const std::string& code) {
  Project project = Project::FromSources({{"test.c", code}});
  EXPECT_FALSE(project.diags().HasErrors()) << project.diags().Render(project.sources());
  return project;
}

bool Reports(const BaselineResult& result, const std::string& slot, int line = -1) {
  for (const BaselineFinding& finding : result.findings) {
    if (finding.slot == slot && (line < 0 || finding.loc.line == line)) {
      return true;
    }
  }
  return false;
}

// The paper's Fig. 8: ret = get_permset() overwritten by another call, with a
// later if (ret) check. ValueCheck finds it; every baseline misses it.
constexpr const char* kFig8 =
    "int get_permset(int en) { return en + 1; }\n"
    "int calc_mask(int m) { return m * 2; }\n"
    "int fsal_acl_posix(int en, int m) {\n"
    "  int ret = get_permset(en);\n"
    "  if (en > 9) {\n"
    "    m = m + en;\n"
    "  }\n"
    "  ret = calc_mask(m);\n"
    "  if (ret) {\n"
    "    return 0;\n"
    "  }\n"
    "  return 1;\n"
    "}\n";

// --- Clang -------------------------------------------------------------------

TEST(ClangUnused, ReportsNeverReadVariable) {
  Project project = Make("int g(int);\nint f(int a) { int dead = g(a); return a; }");
  BaselineResult result = ClangUnused().Find(project, {});
  EXPECT_TRUE(Reports(result, "dead"));
  EXPECT_EQ(result.findings[0].description, "variable set but never used");
}

TEST(ClangUnused, ReportsDeclaredNeverTouched) {
  Project project = Make("int f(int a) { int ghost; return a; }");
  BaselineResult result = ClangUnused().Find(project, {});
  EXPECT_TRUE(Reports(result, "ghost"));
}

TEST(ClangUnused, AnyReadHidesDeadStore) {
  // Flow-insensitive: the read after the overwrite makes the variable "used".
  Project project = Make(kFig8);
  BaselineResult result = ClangUnused().Find(project, {});
  EXPECT_TRUE(result.findings.empty());
}

TEST(ClangUnused, AddressTakenNotReported) {
  Project project = Make("void g(int *);\nvoid f(void) { int x = 1; g(&x); }");
  BaselineResult result = ClangUnused().Find(project, {});
  EXPECT_TRUE(result.findings.empty());
}

TEST(ClangUnused, AttributeSuppresses) {
  Project project = Make("int g(int);\nint f(int a) { int d [[maybe_unused]] = g(a); return a; }");
  EXPECT_TRUE(ClangUnused().Find(project, {}).findings.empty());
}

TEST(ClangUnused, ParamsNotReported) {
  Project project = Make("int f(int a, int unused_p) { return a; }");
  EXPECT_TRUE(ClangUnused().Find(project, {}).findings.empty());
}

// --- Infer -------------------------------------------------------------------

TEST(InferUnused, DetectsDeadStoreAcrossBlocks) {
  Project project = Make(kFig8);
  BaselineResult result = InferUnused().Find(project, {});
  EXPECT_TRUE(Reports(result, "ret", 4));
}

TEST(InferUnused, FailsOnKernelExtensions) {
  Project project = Make("int f(int a) { return a; }");
  ProjectTraits traits;
  traits.uses_kernel_extensions = true;
  BaselineResult result = InferUnused().Find(project, traits);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.findings.empty());
}

TEST(InferUnused, SkipsZeroInitializer) {
  Project project = Make(
      "int g(int);\n"
      "int f(int a) { int ret = 0; ret = g(a); return ret; }");
  EXPECT_TRUE(InferUnused().Find(project, {}).findings.empty());
}

TEST(InferUnused, ReportsNonZeroInitializer) {
  Project project = Make(
      "int g(int);\n"
      "int f(int a) { int ret = a + 1; ret = g(a); return ret; }");
  EXPECT_TRUE(Reports(InferUnused().Find(project, {}), "ret"));
}

TEST(InferUnused, SkipsParamsFieldsAndIgnoredReturns) {
  Project project = Make(
      "struct s { int x; int y; };\n"
      "int g(int);\n"
      "int f(int p, int v) {\n"
      "  p = 1400;\n"             // store to formal
      "  struct s st;\n"
      "  st.x = v;\n"             // dead field store
      "  st.x = 0;\n"
      "  st.y = v;\n"
      "  g(v);\n"                 // ignored return
      "  return p + st.x + st.y;\n"
      "}");
  EXPECT_TRUE(InferUnused().Find(project, {}).findings.empty());
}

TEST(InferUnused, ReportsCursors) {
  // No cursor modeling: the trailing increment is a dead store to infer...
  // except on parameters, which its Dead Store check skips; use a local.
  Project project = Make(
      "void f(char *buf, int c) {\n"
      "  char *o = buf;\n"
      "  *o = c;\n"
      "  o = o + 1;\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "}");
  EXPECT_TRUE(Reports(InferUnused().Find(project, {}), "o", 6));
}

// --- Smatch -------------------------------------------------------------------

TEST(SmatchUnused, FailsOnCpp) {
  Project project = Make("int f(int a) { return a; }");
  ProjectTraits traits;
  traits.is_pure_c = false;
  BaselineResult result = SmatchUnused().Find(project, traits);
  EXPECT_FALSE(result.ok);
}

TEST(SmatchUnused, ReportsAssignedNeverReferencedCallResult) {
  Project project = Make("int g(int);\nint f(int a) { int rc = g(a); return a; }");
  EXPECT_TRUE(Reports(SmatchUnused().Find(project, {}), "rc"));
}

TEST(SmatchUnused, MissesFig8DueToFlowInsensitivity) {
  Project project = Make(kFig8);
  BaselineResult result = SmatchUnused().Find(project, {});
  EXPECT_FALSE(Reports(result, "ret"));
}

TEST(SmatchUnused, ReportsBareCallToProjectFunction) {
  Project project = Make(
      "int status(int v) { return v; }\n"
      "void f(int v) { status(v); }");
  EXPECT_TRUE(Reports(SmatchUnused().Find(project, {}), "status"));
}

TEST(SmatchUnused, IgnoresBareCallToExtern) {
  // Library functions are whitelisted as ignorable.
  Project project = Make("void f(int v) { printf_like(v); }");
  EXPECT_TRUE(SmatchUnused().Find(project, {}).findings.empty());
}

TEST(SmatchUnused, IgnoresVoidCalls) {
  Project project = Make("void log_it(int v) { }\nvoid f(int v) { log_it(v); }");
  EXPECT_TRUE(SmatchUnused().Find(project, {}).findings.empty());
}

// --- Coverity -----------------------------------------------------------------

TEST(CoverityUnused, DetectsSameBlockOverwrite) {
  Project project = Make(
      "int ga(int);\nint gb(int);\n"
      "int f(int a, int b) {\n"
      "  int st = ga(a);\n"
      "  st = gb(b);\n"
      "  if (st) {\n"
      "    return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(Reports(CoverityUnused().Find(project, {}), "st", 4));
}

TEST(CoverityUnused, MissesCrossBlockOverwrite) {
  Project project = Make(kFig8);
  BaselineResult result = CoverityUnused().Find(project, {});
  EXPECT_FALSE(Reports(result, "ret"));
}

TEST(CoverityUnused, CheckedReturnNeedsTwoCallSites) {
  // A single call site cannot establish a usage pattern (Fig. 8's second
  // reason): nothing reported.
  Project project = Make(
      "int once(int v) { return v; }\n"
      "void f(int v) { once(v); }");
  EXPECT_TRUE(CoverityUnused().Find(project, {}).findings.empty());
}

TEST(CoverityUnused, CheckedReturnFlagsMinorityIgnorer) {
  std::string code = "int chk(int v) { return v; }\n";
  for (int i = 0; i < 9; ++i) {
    std::string t = std::to_string(i);
    code += "int u" + t + "(int v) { int s" + t + " = chk(v); return s" + t + "; }\n";
  }
  code += "void ig(int v) { chk(v); }\n";
  Project project = Make(code);
  BaselineResult result = CoverityUnused().Find(project, {});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].slot, "chk");
  EXPECT_EQ(result.findings[0].function, "ig");
}

TEST(CoverityUnused, CheckedReturnRespectsRatio) {
  // 2 checking vs 2 ignoring: 50% < 80%, nothing flagged.
  std::string code = "int chk(int v) { return v; }\n";
  for (int i = 0; i < 2; ++i) {
    std::string t = std::to_string(i);
    code += "int u" + t + "(int v) { int s" + t + " = chk(v); return s" + t + "; }\n";
    code += "void ig" + t + "(int v) { chk(v + " + t + "); }\n";
  }
  Project project = Make(code);
  EXPECT_TRUE(CoverityUnused().Find(project, {}).findings.empty());
}

TEST(CoverityUnused, SkipsCursorsZeroInitsParamsFields) {
  Project project = Make(
      "struct s { int x; int y; };\n"
      "int g(int);\n"
      "int f(int p, int v) {\n"
      "  int z = 0;\n"           // zero init
      "  z = g(v);\n"
      "  p = 1;\n"               // formal
      "  struct s st;\n"
      "  st.x = v;\n"            // field
      "  st.x = 0;\n"
      "  st.y = v;\n"
      "  return z + p + st.x + st.y;\n"
      "}");
  EXPECT_TRUE(CoverityUnused().Find(project, {}).findings.empty());
}

}  // namespace
}  // namespace vc

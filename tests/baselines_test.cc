// Baseline-checker envelope tests: what each §8.4 comparison tool must and
// must not detect, per the paper's characterization. The baselines run
// through the same checker framework as everything else: one checker per run,
// raw envelope (no cross-scope filter, no ranking), capability gaps surfacing
// as checker-stage quarantine records.

#include <gtest/gtest.h>

#include "src/core/analysis.h"

namespace vc {
namespace {

Project Make(const std::string& code) {
  Project project = Project::FromSources({{"test.c", code}});
  EXPECT_FALSE(project.diags().HasErrors()) << project.diags().Render(project.sources());
  return project;
}

AnalysisReport RunChecker(const Project& project, const std::string& checker,
                          ProjectTraits traits = ProjectTraits()) {
  AnalysisOptions options;
  options.checkers = {checker};
  options.traits = traits;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  return Analysis(options).Run(project);
}

bool Unsupported(const AnalysisReport& report, const std::string& checker) {
  for (const QuarantinedUnit& unit : report.quarantined) {
    if (unit.stage == "checker" && unit.checker == checker) {
      return true;
    }
  }
  return false;
}

bool Reports(const AnalysisReport& report, const std::string& slot, int line = -1) {
  for (const UnusedDefCandidate& cand : report.findings) {
    if (cand.slot_name == slot && (line < 0 || cand.def_loc.line == line)) {
      return true;
    }
  }
  return false;
}

// The paper's Fig. 8: ret = get_permset() overwritten by another call, with a
// later if (ret) check. ValueCheck finds it; every baseline misses it.
constexpr const char* kFig8 =
    "int get_permset(int en) { return en + 1; }\n"
    "int calc_mask(int m) { return m * 2; }\n"
    "int fsal_acl_posix(int en, int m) {\n"
    "  int ret = get_permset(en);\n"
    "  if (en > 9) {\n"
    "    m = m + en;\n"
    "  }\n"
    "  ret = calc_mask(m);\n"
    "  if (ret) {\n"
    "    return 0;\n"
    "  }\n"
    "  return 1;\n"
    "}\n";

// --- baseline-clang ----------------------------------------------------------

TEST(ClangUnused, ReportsNeverReadVariable) {
  Project project = Make("int g(int);\nint f(int a) { int dead = g(a); return a; }");
  AnalysisReport report = RunChecker(project, "baseline-clang");
  EXPECT_TRUE(Reports(report, "dead"));
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].note, "variable set but never used");
  EXPECT_EQ(report.findings[0].checker, "baseline-clang");
  EXPECT_TRUE(report.findings[0].from_baseline);
}

TEST(ClangUnused, ReportsDeclaredNeverTouched) {
  Project project = Make("int f(int a) { int ghost; return a; }");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-clang"), "ghost"));
}

TEST(ClangUnused, AnyReadHidesDeadStore) {
  // Flow-insensitive: the read after the overwrite makes the variable "used".
  Project project = Make(kFig8);
  EXPECT_TRUE(RunChecker(project, "baseline-clang").findings.empty());
}

TEST(ClangUnused, AddressTakenNotReported) {
  Project project = Make("void g(int *);\nvoid f(void) { int x = 1; g(&x); }");
  EXPECT_TRUE(RunChecker(project, "baseline-clang").findings.empty());
}

TEST(ClangUnused, AttributeSuppresses) {
  Project project = Make("int g(int);\nint f(int a) { int d [[maybe_unused]] = g(a); return a; }");
  EXPECT_TRUE(RunChecker(project, "baseline-clang").findings.empty());
}

TEST(ClangUnused, ParamsNotReported) {
  Project project = Make("int f(int a, int unused_p) { return a; }");
  EXPECT_TRUE(RunChecker(project, "baseline-clang").findings.empty());
}

// --- baseline-infer ----------------------------------------------------------

TEST(InferUnused, DetectsDeadStoreAcrossBlocks) {
  Project project = Make(kFig8);
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-infer"), "ret", 4));
}

TEST(InferUnused, FailsOnKernelExtensions) {
  Project project = Make("int f(int a) { return a; }");
  ProjectTraits traits;
  traits.uses_kernel_extensions = true;
  AnalysisReport report = RunChecker(project, "baseline-infer", traits);
  EXPECT_TRUE(Unsupported(report, "baseline-infer"));
  EXPECT_TRUE(report.findings.empty());
}

TEST(InferUnused, SkipsZeroInitializer) {
  Project project = Make(
      "int g(int);\n"
      "int f(int a) { int ret = 0; ret = g(a); return ret; }");
  EXPECT_TRUE(RunChecker(project, "baseline-infer").findings.empty());
}

TEST(InferUnused, ReportsNonZeroInitializer) {
  Project project = Make(
      "int g(int);\n"
      "int f(int a) { int ret = a + 1; ret = g(a); return ret; }");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-infer"), "ret"));
}

TEST(InferUnused, SkipsParamsFieldsAndIgnoredReturns) {
  Project project = Make(
      "struct s { int x; int y; };\n"
      "int g(int);\n"
      "int f(int p, int v) {\n"
      "  p = 1400;\n"             // store to formal
      "  struct s st;\n"
      "  st.x = v;\n"             // dead field store
      "  st.x = 0;\n"
      "  st.y = v;\n"
      "  g(v);\n"                 // ignored return
      "  return p + st.x + st.y;\n"
      "}");
  EXPECT_TRUE(RunChecker(project, "baseline-infer").findings.empty());
}

TEST(InferUnused, ReportsCursors) {
  // No cursor modeling: the trailing increment is a dead store to infer...
  // except on parameters, which its Dead Store check skips; use a local.
  Project project = Make(
      "void f(char *buf, int c) {\n"
      "  char *o = buf;\n"
      "  *o = c;\n"
      "  o = o + 1;\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "}");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-infer"), "o", 6));
}

// --- baseline-smatch ---------------------------------------------------------

TEST(SmatchUnused, FailsOnCpp) {
  Project project = Make("int f(int a) { return a; }");
  ProjectTraits traits;
  traits.is_pure_c = false;
  EXPECT_TRUE(Unsupported(RunChecker(project, "baseline-smatch", traits), "baseline-smatch"));
}

TEST(SmatchUnused, ReportsAssignedNeverReferencedCallResult) {
  Project project = Make("int g(int);\nint f(int a) { int rc = g(a); return a; }");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-smatch"), "rc"));
}

TEST(SmatchUnused, MissesFig8DueToFlowInsensitivity) {
  Project project = Make(kFig8);
  EXPECT_FALSE(Reports(RunChecker(project, "baseline-smatch"), "ret"));
}

TEST(SmatchUnused, ReportsBareCallToProjectFunction) {
  Project project = Make(
      "int status(int v) { return v; }\n"
      "void f(int v) { status(v); }");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-smatch"), "status"));
}

TEST(SmatchUnused, IgnoresBareCallToExtern) {
  // Library functions are whitelisted as ignorable.
  Project project = Make("void f(int v) { printf_like(v); }");
  EXPECT_TRUE(RunChecker(project, "baseline-smatch").findings.empty());
}

TEST(SmatchUnused, IgnoresVoidCalls) {
  Project project = Make("void log_it(int v) { }\nvoid f(int v) { log_it(v); }");
  EXPECT_TRUE(RunChecker(project, "baseline-smatch").findings.empty());
}

// --- baseline-coverity -------------------------------------------------------

TEST(CoverityUnused, DetectsSameBlockOverwrite) {
  Project project = Make(
      "int ga(int);\nint gb(int);\n"
      "int f(int a, int b) {\n"
      "  int st = ga(a);\n"
      "  st = gb(b);\n"
      "  if (st) {\n"
      "    return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(Reports(RunChecker(project, "baseline-coverity"), "st", 4));
}

TEST(CoverityUnused, MissesCrossBlockOverwrite) {
  Project project = Make(kFig8);
  EXPECT_FALSE(Reports(RunChecker(project, "baseline-coverity"), "ret"));
}

TEST(CoverityUnused, CheckedReturnNeedsTwoCallSites) {
  // A single call site cannot establish a usage pattern (Fig. 8's second
  // reason): nothing reported.
  Project project = Make(
      "int once(int v) { return v; }\n"
      "void f(int v) { once(v); }");
  EXPECT_TRUE(RunChecker(project, "baseline-coverity").findings.empty());
}

TEST(CoverityUnused, CheckedReturnFlagsMinorityIgnorer) {
  std::string code = "int chk(int v) { return v; }\n";
  for (int i = 0; i < 9; ++i) {
    std::string t = std::to_string(i);
    code += "int u" + t + "(int v) { int s" + t + " = chk(v); return s" + t + "; }\n";
  }
  code += "void ig(int v) { chk(v); }\n";
  Project project = Make(code);
  AnalysisReport report = RunChecker(project, "baseline-coverity");
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].slot_name, "chk");
  EXPECT_EQ(report.findings[0].function, "ig");
}

TEST(CoverityUnused, CheckedReturnRespectsRatio) {
  // 2 checking vs 2 ignoring: 50% < 80%, nothing flagged.
  std::string code = "int chk(int v) { return v; }\n";
  for (int i = 0; i < 2; ++i) {
    std::string t = std::to_string(i);
    code += "int u" + t + "(int v) { int s" + t + " = chk(v); return s" + t + "; }\n";
    code += "void ig" + t + "(int v) { chk(v + " + t + "); }\n";
  }
  Project project = Make(code);
  EXPECT_TRUE(RunChecker(project, "baseline-coverity").findings.empty());
}

TEST(CoverityUnused, SkipsCursorsZeroInitsParamsFields) {
  Project project = Make(
      "struct s { int x; int y; };\n"
      "int g(int);\n"
      "int f(int p, int v) {\n"
      "  int z = 0;\n"           // zero init
      "  z = g(v);\n"
      "  p = 1;\n"               // formal
      "  struct s st;\n"
      "  st.x = v;\n"            // field
      "  st.x = 0;\n"
      "  st.y = v;\n"
      "  return z + p + st.x + st.y;\n"
      "}");
  EXPECT_TRUE(RunChecker(project, "baseline-coverity").findings.empty());
}

// --- framework behavior shared by all baselines ------------------------------

TEST(BaselineCheckers, ExcludedFromDefaultRuns) {
  // A default (no --checkers) run never executes a baseline checker.
  Project project = Make("int g(int);\nint f(int a) { int dead = g(a); return a; }");
  AnalysisOptions options;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  AnalysisReport report = Analysis(options).Run(project);
  for (const std::string& name : report.checkers) {
    EXPECT_EQ(name.rfind("baseline-", 0), std::string::npos) << name;
  }
  for (const UnusedDefCandidate& cand : report.findings) {
    EXPECT_FALSE(cand.from_baseline) << cand.checker;
  }
}

}  // namespace
}  // namespace vc

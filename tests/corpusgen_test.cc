// Tests for the paper-scale corpus generator: profile/scale catalog,
// per-file determinism and order independence, disk round-trip, and the
// core scaling invariant — a full analysis over a generated medium profile
// produces byte-identical findings at --jobs 1, 2 and 8. Also pins the
// double-overwrite fixpoint convergence fix that scaling the corpus first
// exposed.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/testing/corpusgen.h"

namespace vc {
namespace {

using testing::CorpusProfile;
using testing::CorpusProfileNames;
using testing::CorpusScaleNames;
using testing::CorpusStats;
using testing::GenerateCorpusFile;
using testing::GenerateCorpusSources;
using testing::MakeCorpusProfile;
using testing::SourceFile;
using testing::WriteCorpus;

std::string TempDir(const char* tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::string("vc_corpusgen_") + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(Corpusgen, CatalogAndUnknownNamesRejected) {
  EXPECT_EQ(CorpusProfileNames(),
            (std::vector<std::string>{"linux-like", "mysql-like"}));
  EXPECT_EQ(CorpusScaleNames(),
            (std::vector<std::string>{"small", "medium", "large"}));
  CorpusProfile profile;
  for (const std::string& name : CorpusProfileNames()) {
    for (const std::string& scale : CorpusScaleNames()) {
      EXPECT_TRUE(MakeCorpusProfile(name, scale, 1, &profile))
          << name << "/" << scale;
      EXPECT_GT(profile.files, 0);
    }
  }
  EXPECT_FALSE(MakeCorpusProfile("solaris-like", "small", 1, &profile));
  EXPECT_FALSE(MakeCorpusProfile("linux-like", "gigantic", 1, &profile));
}

TEST(Corpusgen, ProfileShapesMatchTheirArchetypes) {
  // linux-like = many small files; mysql-like = few huge files. The medium
  // scales of both clear the 100k-LOC floor the bench and the acceptance
  // pipeline rely on.
  CorpusProfile linux_like, mysql_like;
  ASSERT_TRUE(MakeCorpusProfile("linux-like", "medium", 1, &linux_like));
  ASSERT_TRUE(MakeCorpusProfile("mysql-like", "medium", 1, &mysql_like));
  EXPECT_GT(linux_like.files, 10 * mysql_like.files);

  for (const CorpusProfile& profile : {linux_like, mysql_like}) {
    int64_t lines = 0;
    for (int i = 0; i < profile.files; ++i) {
      lines += static_cast<int64_t>(GenerateCorpusFile(profile, i).lines.size());
    }
    EXPECT_GE(lines, 100000) << profile.name;
  }
}

TEST(Corpusgen, FilesAreDeterministicAndOrderFree) {
  CorpusProfile profile;
  ASSERT_TRUE(MakeCorpusProfile("linux-like", "small", 7, &profile));

  // Same (profile, index) twice -> identical file; generation order of other
  // indices is irrelevant (per-file seeding, no shared stream).
  SourceFile early = GenerateCorpusFile(profile, 5);
  GenerateCorpusFile(profile, 0);
  GenerateCorpusFile(profile, 100);
  SourceFile again = GenerateCorpusFile(profile, 5);
  EXPECT_EQ(early.path, again.path);
  EXPECT_EQ(early.Content(), again.Content());

  // Index is baked into both namespaces: path prefix and identifier prefix.
  EXPECT_EQ(early.path.rfind("m000005_", 0), 0u) << early.path;
  EXPECT_NE(early.Content().find("u5_"), std::string::npos);

  // A different profile seed changes content.
  CorpusProfile reseeded = profile;
  reseeded.seed = 8;
  EXPECT_NE(GenerateCorpusFile(reseeded, 5).Content(), early.Content());
}

TEST(Corpusgen, SourcesMatchPerFileGeneration) {
  CorpusProfile profile;
  ASSERT_TRUE(MakeCorpusProfile("mysql-like", "small", 3, &profile));
  auto sources = GenerateCorpusSources(profile);
  ASSERT_EQ(sources.size(), static_cast<size_t>(profile.files));
  for (int i = 0; i < profile.files; ++i) {
    SourceFile file = GenerateCorpusFile(profile, i);
    EXPECT_EQ(sources[i].first, file.path);
    EXPECT_EQ(sources[i].second, file.Content());
  }
}

TEST(Corpusgen, WriteCorpusRoundTripsAndReportsStats) {
  CorpusProfile profile;
  ASSERT_TRUE(MakeCorpusProfile("linux-like", "small", 11, &profile));
  profile.files = 12;  // keep the disk footprint tiny

  std::string dir = TempDir("roundtrip");
  CorpusStats stats;
  std::string error;
  ASSERT_TRUE(WriteCorpus(profile, dir, &stats, &error)) << error;
  EXPECT_EQ(stats.files, 12);

  auto sources = GenerateCorpusSources(profile);
  int64_t lines = 0;
  int64_t bytes = 0;
  for (const auto& [path, content] : sources) {
    std::ifstream in(dir + "/" + path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), content) << path;
    for (char c : content) {
      lines += c == '\n';
    }
    bytes += static_cast<int64_t>(content.size());
  }
  EXPECT_EQ(stats.lines, lines);
  EXPECT_EQ(stats.bytes, bytes);
  std::filesystem::remove_all(dir);
}

TEST(Corpusgen, WriteCorpusFailsCleanlyOnBadDirectory) {
  CorpusProfile profile;
  ASSERT_TRUE(MakeCorpusProfile("mysql-like", "small", 1, &profile));
  std::string error;
  EXPECT_FALSE(WriteCorpus(profile, "/dev/null/nope", nullptr, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// The scaling invariant: findings are byte-identical at any --jobs over a
// generated medium profile. (mysql-like medium: ~100k LOC in few files, so
// the run stays well inside ctest budgets even under sanitizers.)
// ---------------------------------------------------------------------------

AnalysisOptions SourceMode(int jobs) {
  AnalysisOptions options;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  options.jobs = jobs;
  return options;
}

TEST(Corpusgen, MediumProfileFindingsByteIdenticalAcrossJobs) {
  CorpusProfile profile;
  ASSERT_TRUE(MakeCorpusProfile("mysql-like", "medium", 1, &profile));
  auto sources = GenerateCorpusSources(profile);

  AnalysisReport baseline = Analysis(SourceMode(1)).RunOnSources(sources);
  EXPECT_FALSE(baseline.findings.empty());
  std::string expected = baseline.ToCsv();
  for (int jobs : {2, 8}) {
    AnalysisReport report = Analysis(SourceMode(jobs)).RunOnSources(sources);
    EXPECT_EQ(report.ToCsv(), expected) << "jobs=" << jobs;
  }
}

// ---------------------------------------------------------------------------
// Regression: the double-overwrite must-analysis used to seed blocks whose
// predecessors had no materialized out-state yet from the empty map (BOTTOM
// instead of TOP). On this shape — recursion writing an address-taken local,
// then a loop with a branch — the grown state oscillated against the
// intersection and the fixpoint never terminated. Found by the first
// corpus-scale sweep (linux-like medium, file index 354); minimized below.
// ---------------------------------------------------------------------------

TEST(Corpusgen, DoubleOverwriteFixpointTerminatesOnRecursionLoopShape) {
  const char* repro =
      "int fn3(int v8, int* v9) {\n"
      "  int v11 = fn3(v8, &v8);\n"
      "  v8 = v11;\n"
      "  for (int v12 = 0; v12 < 8; v12++) {\n"
      "    if (v12 != 1) {\n"
      "      v11 |= 1;\n"
      "    }\n"
      "  }\n"
      "  return v8;\n"
      "}\n";
  AnalysisOptions options = SourceMode(1);
  options.checkers = {"double-overwrite"};
  // Before the fix this never returned; ctest's timeout was the only exit.
  AnalysisReport report = Analysis(options).RunOnSources({{"repro.c", repro}});
  std::string expected = report.ToCsv();
  for (int jobs : {2, 8}) {
    AnalysisOptions parallel = SourceMode(jobs);
    parallel.checkers = {"double-overwrite"};
    AnalysisReport again = Analysis(parallel).RunOnSources({{"repro.c", repro}});
    EXPECT_EQ(again.ToCsv(), expected) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace vc

// Tests for the run-event stream (--events), the progress meter, the
// collapsed-stack profile exporter (--profile), and the trace buffer cap +
// dropped-span accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/support/events.h"
#include "src/support/json_reader.h"
#include "src/support/metrics.h"
#include "src/support/profile_export.h"
#include "src/support/trace.h"

namespace vc {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------
// RunEventLog / RunEvent
// ---------------------------------------------------------------------------

TEST(RunEventLog, GoldenFieldOrderAndOneObjectPerLine) {
  std::string path = TempPath("vc_events_golden.jsonl");
  ASSERT_TRUE(RunEventLog::Global().Open(path));
  RunEvent("run_start").Str("mode", "sources").Num("jobs", int64_t{2}).Emit();
  RunEvent("stage_start").Str("stage", "parse_file").Str("file", "a.c").Emit();
  RunEvent("stage_end")
      .Str("stage", "parse_file")
      .Str("file", "a.c")
      .Num("ast_bytes", uint64_t{128})
      .Flag("quarantined", false)
      .Emit();
  RunEvent("run_end").Num("findings", int64_t{0}).Dbl("analysis_seconds", 0.25).Emit();
  RunEventLog::Global().Close();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);

  // Golden layout: fixed prefix (event, seq, ts_us) then fields in emission
  // order. ts_us is clock-dependent, so the golden check splits around it.
  EXPECT_EQ(lines[0].rfind("{\"event\":\"run_start\",\"seq\":0,\"ts_us\":", 0), 0u);
  EXPECT_NE(lines[0].find("\"mode\":\"sources\",\"jobs\":2}"), std::string::npos);
  EXPECT_EQ(lines[1].rfind("{\"event\":\"stage_start\",\"seq\":1,\"ts_us\":", 0), 0u);
  EXPECT_NE(lines[1].find("\"stage\":\"parse_file\",\"file\":\"a.c\"}"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ast_bytes\":128,\"quarantined\":false}"), std::string::npos);
  EXPECT_NE(lines[3].find("\"findings\":0,\"analysis_seconds\":0.25"), std::string::npos);

  // Every line parses as one standalone JSON object via the project reader.
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string error;
    std::optional<JsonValue> value = ParseJson(lines[i], &error);
    ASSERT_TRUE(value.has_value()) << "line " << i << ": " << error;
    EXPECT_TRUE(value->IsObject());
    EXPECT_TRUE(value->Has("event"));
    EXPECT_EQ(value->GetInt("seq", -1), static_cast<int64_t>(i));
    EXPECT_GE(value->GetInt("ts_us", -1), 0);
  }
  std::remove(path.c_str());
}

TEST(RunEventLog, SeqIsDenseAndIncreasingUnderConcurrentEmitters) {
  std::string path = TempPath("vc_events_concurrent.jsonl");
  ASSERT_TRUE(RunEventLog::Global().Open(path));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunEvent("stage_end").Num("thread", static_cast<int64_t>(t)).Emit();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  RunEventLog::Global().Close();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::optional<JsonValue> value = ParseJson(lines[i]);
    ASSERT_TRUE(value.has_value()) << "line " << i;
    // Dense, strictly increasing in file order even when workers race.
    EXPECT_EQ(value->GetInt("seq", -1), static_cast<int64_t>(i));
  }
  std::remove(path.c_str());
}

TEST(RunEventLog, DisabledEmittersAreNoOps) {
  ASSERT_FALSE(RunEventsEnabled());
  // Must not crash or write anywhere.
  RunEvent("stage_start").Str("stage", "nope").Emit();
}

TEST(RunEvent, EscapesStringValues) {
  std::string path = TempPath("vc_events_escape.jsonl");
  ASSERT_TRUE(RunEventLog::Global().Open(path));
  RunEvent("stage_start").Str("file", "dir\\a \"b\".c").Emit();
  RunEventLog::Global().Close();
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  std::optional<JsonValue> value = ParseJson(lines[0]);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->GetString("file"), "dir\\a \"b\".c");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ProgressMeter
// ---------------------------------------------------------------------------

TEST(ProgressMeter, RendersCountsThroughputAndStopsCleanly) {
  // Render into a tmpfile stand-in for stderr.
  std::string path = TempPath("vc_progress.txt");
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);

  ProgressMeter& meter = ProgressMeter::Global();
  meter.Start(out);
  EXPECT_TRUE(ProgressEnabled());
  meter.SetPhase("detect");
  meter.AddTotalFiles(4);
  meter.FileDone();
  meter.AddTotalFunctions(10);
  for (int i = 0; i < 10; ++i) {
    meter.FunctionDone();
  }
  meter.AddFindings(3);
  meter.Stop();
  EXPECT_FALSE(ProgressEnabled());
  std::fclose(out);

  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string rendered = buffer.str();
  ASSERT_FALSE(rendered.empty());
  EXPECT_NE(rendered.find("[detect]"), std::string::npos);
  EXPECT_NE(rendered.find("files 1/4"), std::string::npos);
  EXPECT_NE(rendered.find("fns 10/10"), std::string::npos);
  EXPECT_NE(rendered.find("findings 3"), std::string::npos);
  // Final line is newline-terminated so the next output starts clean.
  EXPECT_EQ(rendered.back(), '\n');
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Collapsed-stack profile
// ---------------------------------------------------------------------------

TEST(ProfileExport, NestedSpansCollapseToSelfTimeStacks) {
  std::vector<TraceEvent> events;
  // Thread 0: run [0,100) containing detect [10,40) containing check [20,25).
  events.push_back({"run", "pipeline", 0, 100, 0, {}});
  events.push_back({"detect", "pipeline", 10, 30, 0, {}});
  events.push_back({"check", "pipeline", 20, 5, 0, {}});
  std::string folded = CollapseTraceEvents(std::move(events));
  // Self times: run 100-30=70, detect 30-5=25, check 5.
  EXPECT_NE(folded.find("run 70\n"), std::string::npos);
  EXPECT_NE(folded.find("run;detect 25\n"), std::string::npos);
  EXPECT_NE(folded.find("run;detect;check 5\n"), std::string::npos);

  // Round-trip: each line is `path weight`, weights sum to the root's span.
  std::istringstream lines(folded);
  std::string line;
  uint64_t total = 0;
  while (std::getline(lines, line)) {
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    total += std::stoull(line.substr(space + 1));
  }
  EXPECT_EQ(total, 100u);
}

TEST(ProfileExport, SeparatesThreadsAndSanitizesFrames) {
  std::vector<TraceEvent> events;
  events.push_back({"outer span;x", "pipeline", 0, 50, 1, {}});
  events.push_back({"inner", "pipeline", 5, 10, 2, {}});  // different tid: no nesting
  std::string folded = CollapseTraceEvents(std::move(events));
  EXPECT_NE(folded.find("outer_span_x 50\n"), std::string::npos);
  EXPECT_NE(folded.find("inner 10\n"), std::string::npos);
  EXPECT_EQ(folded.find(";"), std::string::npos);
}

TEST(ProfileExport, DegenerateZeroDurationTraceStillEmits) {
  std::vector<TraceEvent> events;
  events.push_back({"blink", "pipeline", 0, 0, 0, {}});
  std::string folded = CollapseTraceEvents(std::move(events));
  EXPECT_EQ(folded, "blink 1\n");
}

TEST(ProfileExport, WriteCollapsedProfileRoundTripsThroughCollector) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  {
    TraceSpan outer("profile_outer", "test");
    TraceSpan inner("profile_inner", "test");
    (void)outer;
    (void)inner;
  }
  collector.Disable();
  std::string path = TempPath("vc_profile.folded");
  ASSERT_TRUE(WriteCollapsedProfile(path));
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_FALSE(lines.empty());
  bool saw_frame = false;
  for (const std::string& line : lines) {
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u);
    if (line.find("profile_") != std::string::npos) {
      saw_frame = true;
    }
  }
  EXPECT_TRUE(saw_frame);
  collector.Clear();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Trace buffer cap / dropped spans
// ---------------------------------------------------------------------------

TEST(Trace, BufferCapDropsAreCountedNeverSilent) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  collector.SetThreadBufferCapForTest(8);
  uint64_t dropped_before = MetricsRegistry::Global().GetCounter("trace.dropped_spans").value();
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("capped_span", "test");
  }
  collector.Disable();

  EXPECT_EQ(collector.EventCount(), 8u);
  EXPECT_EQ(collector.dropped_count(), 12u);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("trace.dropped_spans").value(),
            dropped_before + 12);
  // The export names the loss instead of pretending completeness.
  std::string json = collector.ToJson();
  EXPECT_NE(json.find("\"droppedEvents\":12"), std::string::npos);
  EXPECT_NE(json.find("droppedNote"), std::string::npos);

  collector.SetThreadBufferCapForTest(TraceCollector::kDefaultThreadBufferCap);
  collector.Clear();
  EXPECT_EQ(collector.dropped_count(), 0u);  // Clear resets the loss counter
}

TEST(Trace, SnapshotEventsReturnsSortedCopy) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  { TraceSpan a("snap_a", "test"); }
  { TraceSpan b("snap_b", "test"); }
  collector.Disable();
  std::vector<TraceEvent> events = collector.SnapshotEvents();
  ASSERT_GE(events.size(), 2u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_micros, events[i].ts_micros);
  }
  collector.Clear();
}

}  // namespace
}  // namespace vc

// Parser tests: declaration shapes, expression precedence, statement forms,
// name resolution, implicit externs, attributes, and error recovery.

#include <gtest/gtest.h>

#include "src/ast/ast_printer.h"
#include "src/parser/parser.h"

namespace vc {
namespace {

struct Parsed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
};

std::unique_ptr<Parsed> Parse(const std::string& code, bool expect_clean = true) {
  auto parsed = std::make_unique<Parsed>();
  parsed->unit = ParseString(parsed->sm, "test.c", code, parsed->diags);
  if (expect_clean) {
    EXPECT_FALSE(parsed->diags.HasErrors()) << parsed->diags.Render(parsed->sm);
  }
  return parsed;
}

// Extracts the printed form of the first statement of function `name`.
std::string BodyOf(const Parsed& parsed, const std::string& name) {
  const FunctionDecl* func = parsed.unit.FindFunction(name);
  EXPECT_NE(func, nullptr);
  return func != nullptr && func->body != nullptr ? PrintStmt(func->body) : "";
}

TEST(Parser, FunctionWithParams) {
  auto parsed = Parse("int add(int a, int b) { return a + b; }");
  const FunctionDecl* func = parsed->unit.FindFunction("add");
  ASSERT_NE(func, nullptr);
  EXPECT_TRUE(func->IsDefined());
  ASSERT_EQ(func->params.size(), 2u);
  EXPECT_EQ(func->params[0]->name, "a");
  EXPECT_TRUE(func->params[0]->is_param);
  EXPECT_EQ(func->params[0]->param_index, 0);
  EXPECT_EQ(func->params[1]->param_index, 1);
  EXPECT_EQ(PrintFunction(func), "int add(int a, int b) { (return (+ a b)) }");
}

TEST(Parser, Prototype) {
  auto parsed = Parse("int ext(int a);");
  const FunctionDecl* func = parsed->unit.FindFunction("ext");
  ASSERT_NE(func, nullptr);
  EXPECT_FALSE(func->IsDefined());
  EXPECT_FALSE(func->is_implicit);
}

TEST(Parser, VoidParameterList) {
  auto parsed = Parse("int f(void) { return 1; }");
  EXPECT_TRUE(parsed->unit.FindFunction("f")->params.empty());
}

TEST(Parser, StructDeclAndFieldResolution) {
  auto parsed = Parse(
      "struct point { int x; int y; };\n"
      "int get_x(struct point p) { return p.x; }");
  ASSERT_EQ(parsed->unit.structs.size(), 1u);
  const StructDecl* s = parsed->unit.structs[0];
  EXPECT_EQ(s->fields.size(), 2u);
  EXPECT_EQ(s->FindField("y")->index, 1);
  EXPECT_EQ(s->FindField("z"), nullptr);
  EXPECT_EQ(BodyOf(*parsed, "get_x"), "{ (return (. p x)) }");
}

TEST(Parser, ArrowResolvesThroughPointer) {
  auto parsed = Parse(
      "struct node { int v; };\n"
      "int val(struct node *n) { return n->v; }");
  EXPECT_EQ(BodyOf(*parsed, "val"), "{ (return (-> n v)) }");
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto parsed = Parse("int f(int a, int b, int c) { return a + b * c; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (return (+ a (* b c))) }");
}

TEST(Parser, PrecedenceComparisonAndLogic) {
  auto parsed = Parse("int f(int a, int b) { return a < b && b != 0; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (return (&& (< a b) (!= b 0))) }");
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto parsed = Parse("int f(int a, int b) { a = b = 1; return a; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (= a (= b 1)); (return a) }");
}

TEST(Parser, CompoundAssignment) {
  auto parsed = Parse("int f(int a) { a += 2; a -= 1; return a; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (+= a 2); (-= a 1); (return a) }");
}

TEST(Parser, UnaryAndPostfix) {
  auto parsed = Parse("int f(int a) { ++a; a--; return -a; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (pre++ a); (post-- a); (return (pre- a)) }");
}

TEST(Parser, PointerDeclaratorAndDeref) {
  auto parsed = Parse("int f(int *p) { *p = 3; return *p; }");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  EXPECT_TRUE(func->params[0]->type->IsPointer());
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (= (pre* p) 3); (return (pre* p)) }");
}

TEST(Parser, AddressOf) {
  auto parsed = Parse("int g(int *p); int f(int x) { return g(&x); }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (return (call g (pre& x))) }");
}

TEST(Parser, TernaryConditional) {
  auto parsed = Parse("int f(int a) { return a > 0 ? a : 0 - a; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (return (?: (> a 0) a (- 0 a))) }");
}

TEST(Parser, CastAndVoidCast) {
  auto parsed = Parse("int f(int a) { (void)a; return (int)a; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (cast void a); (return (cast int a)) }");
}

TEST(Parser, IfElseChain) {
  auto parsed = Parse("int f(int a) { if (a > 1) { return 1; } else if (a > 0) { return 2; } return 3; }");
  EXPECT_EQ(BodyOf(*parsed, "f"),
            "{ (if (> a 1) { (return 1) } else (if (> a 0) { (return 2) })) (return 3) }");
}

TEST(Parser, WhileAndFor) {
  auto parsed = Parse(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) { s += i; }\n"
      "  while (s > 100) { s -= 10; }\n"
      "  return s;\n"
      "}");
  std::string body = BodyOf(*parsed, "f");
  EXPECT_NE(body.find("(for (decl int i = 0) (< i n) (= i (+ i 1))"), std::string::npos);
  EXPECT_NE(body.find("(while (> s 100)"), std::string::npos);
}

TEST(Parser, BreakContinue) {
  auto parsed = Parse("void f(int n) { while (n) { if (n > 5) { break; } continue; } }");
  std::string body = BodyOf(*parsed, "f");
  EXPECT_NE(body.find("(break)"), std::string::npos);
  EXPECT_NE(body.find("(continue)"), std::string::npos);
}

TEST(Parser, CommaDeclList) {
  auto parsed = Parse("int f(void) { int a = 1, b = 2; return a + b; }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ { (decl int a = 1) (decl int b = 2) } (return (+ a b)) }");
}

TEST(Parser, ArrayDeclBecomesPointer) {
  auto parsed = Parse("int f(void) { char buf[16]; buf[0] = 1; return buf[0]; }");
  std::string body = BodyOf(*parsed, "f");
  EXPECT_NE(body.find("(decl char* buf)"), std::string::npos);
  EXPECT_NE(body.find("(index buf 0)"), std::string::npos);
}

TEST(Parser, UnknownCalleeBecomesImplicitExtern) {
  auto parsed = Parse("int f(int x) { return ext_call(x); }");
  const FunctionDecl* ext = parsed->unit.FindFunction("ext_call");
  ASSERT_NE(ext, nullptr);
  EXPECT_TRUE(ext->is_implicit);
  EXPECT_FALSE(ext->IsDefined());
}

TEST(Parser, SameNameCalleeReusedAcrossCalls) {
  auto parsed = Parse("int f(int x) { log_it(x); log_it(x + 1); return x; }");
  int count = 0;
  for (const FunctionDecl* func : parsed->unit.functions) {
    count += func->name == "log_it" ? 1 : 0;
  }
  EXPECT_EQ(count, 1);
}

TEST(Parser, PrototypeThenDefinitionSharesDecl) {
  auto parsed = Parse("int f(int x);\nint f(int x) { return x; }");
  int count = 0;
  for (const FunctionDecl* func : parsed->unit.functions) {
    count += func->name == "f" ? 1 : 0;
  }
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(parsed->unit.FindFunction("f")->IsDefined());
}

TEST(Parser, UnusedAttributeOnParam) {
  auto parsed = Parse("int f(int a, int b [[maybe_unused]]) { return a; }");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  EXPECT_FALSE(func->params[0]->has_unused_attr);
  EXPECT_TRUE(func->params[1]->has_unused_attr);
}

TEST(Parser, UnusedAttributeOnLocal) {
  auto parsed = Parse("int f(int a) { int x [[maybe_unused]] = a; return a; }");
  // Find the decl through the body.
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  const auto* decl = static_cast<const DeclStmt*>(static_cast<const CompoundStmt*>(
      static_cast<const Stmt*>(func->body))->body[0]);
  EXPECT_TRUE(decl->var->has_unused_attr);
}

TEST(Parser, GnuAttributeSpelling) {
  auto parsed = Parse("int f(int a __attribute__((unused))) { return 1; }");
  EXPECT_TRUE(parsed->unit.FindFunction("f")->params[0]->has_unused_attr);
}

TEST(Parser, GlobalsRegistered) {
  auto parsed = Parse("int g_counter;\nint f(void) { g_counter = 1; return g_counter; }");
  ASSERT_EQ(parsed->unit.globals.size(), 1u);
  EXPECT_TRUE(parsed->unit.globals[0]->is_global);
}

TEST(Parser, StaticFunction) {
  auto parsed = Parse("static int helper(int a) { return a; }");
  EXPECT_TRUE(parsed->unit.FindFunction("helper")->is_static);
}

TEST(Parser, FunctionRangeCoversBody) {
  auto parsed = Parse("int one(void) { return 1; }\nint two(void) {\n  return 2;\n}\n");
  const FunctionDecl* two = parsed->unit.FindFunction("two");
  EXPECT_EQ(two->range.begin.line, 2);
  EXPECT_EQ(two->range.end.line, 4);
  EXPECT_TRUE(two->range.ContainsLine(3));
  EXPECT_FALSE(two->range.ContainsLine(1));
}

TEST(Parser, UndeclaredVariableReportsErrorButRecovers) {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit = ParseString(sm, "bad.c", "int f(void) { return mystery + 1; }", diags);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_NE(unit.FindFunction("f"), nullptr);  // function still parsed
}

TEST(Parser, RecoversAfterBadStatement) {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit = ParseString(
      sm, "bad.c", "int f(int a) { a = ; return a; }\nint g(int b) { return b; }", diags);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_NE(unit.FindFunction("g"), nullptr);
}

TEST(Parser, TypeCollapsing) {
  auto parsed = Parse(
      "int f(unsigned long n, size_t s, long long m, const char *p) { return n + s + m; }");
  const FunctionDecl* func = parsed->unit.FindFunction("f");
  EXPECT_TRUE(func->params[0]->type->IsInt());
  EXPECT_TRUE(func->params[1]->type->IsInt());
  EXPECT_TRUE(func->params[2]->type->IsInt());
  EXPECT_TRUE(func->params[3]->type->IsPointer());
  EXPECT_EQ(func->params[3]->type->pointee()->kind(), TypeKind::kChar);
}

TEST(Parser, BoolAndNullLiterals) {
  auto parsed = Parse("int f(int *p) { if (p == NULL) { return true; } return false; }");
  std::string body = BodyOf(*parsed, "f");
  EXPECT_NE(body.find("(== p null)"), std::string::npos);
  EXPECT_NE(body.find("(return true)"), std::string::npos);
}

TEST(Parser, SizeofForms) {
  auto parsed = Parse("int f(int a) { return sizeof(int) + sizeof(a); }");
  EXPECT_EQ(BodyOf(*parsed, "f"), "{ (return (+ (sizeof) (sizeof))) }");
}

TEST(Parser, PreprocessorDisabledCodeNotParsed) {
  auto parsed = Parse(
      "int f(int a) {\n"
      "  int n = 0;\n"
      "#if FEATURE_X\n"
      "  n = this_would_not_parse(a;;\n"
      "#endif\n"
      "  return n + a;\n"
      "}");
  EXPECT_NE(parsed->unit.FindFunction("f"), nullptr);
}

// Adversarial nesting must produce a diagnostic, not a stack overflow: the
// parser recurses per nesting level, so without the depth cap a ~10k-deep
// expression would blow the runtime stack long before lexing becomes slow.
TEST(Parser, DeeplyNestedExpressionHitsDepthCapNotStack) {
  constexpr int kDepth = 10000;
  std::string code = "int f(void) { return ";
  code.append(kDepth, '(');
  code += "1";
  code.append(kDepth, ')');
  code += "; }";
  auto parsed = Parse(code, /*expect_clean=*/false);
  EXPECT_TRUE(parsed->diags.HasErrors());
  EXPECT_NE(parsed->diags.Render(parsed->sm).find("nesting too deep"), std::string::npos);
}

TEST(Parser, DeeplyChainedElseIfHitsDepthCapNotStack) {
  constexpr int kDepth = 10000;
  std::string code = "int f(int a) {\n  if (a == 0) { return 0; }\n";
  for (int i = 1; i < kDepth; ++i) {
    code += "  else if (a == " + std::to_string(i) + ") { return " + std::to_string(i) + "; }\n";
  }
  code += "  return -1;\n}";
  auto parsed = Parse(code, /*expect_clean=*/false);
  EXPECT_TRUE(parsed->diags.HasErrors());
  EXPECT_NE(parsed->diags.Render(parsed->sm).find("nesting too deep"), std::string::npos);
}

// A shallow program parsed with an explicit tiny cap degrades the same way —
// the budget plumbing, not just the default constant.
TEST(Parser, ExplicitDepthLimitHonored) {
  SourceManager sm;
  DiagnosticEngine diags;
  FileId file = sm.AddFile("tiny.c", "int f(void) { return ((((1)))); }");
  TranslationUnit unit = ParseFile(sm, file, Config(), diags, /*max_depth=*/3);
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_NE(diags.Render(sm).find("nesting too deep"), std::string::npos);
  (void)unit;
}

}  // namespace
}  // namespace vc

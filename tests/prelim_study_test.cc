// Tests of the §3.1 preliminary-study reproduction: two-snapshot differential
// comparison, sampling, commit-message classification, cross-scope fraction.

#include <gtest/gtest.h>

#include "src/core/detector.h"
#include "src/corpus/prelim_study.h"

namespace vc {
namespace {

TEST(PrelimStudy, DifferentialMatchesPopulation) {
  PrelimStudySpec spec;
  spec.total_differential = 60;
  spec.bug_fix_removals = 42;
  spec.sample_size = 60;  // sample everything: exact population counts
  PrelimStudyData data = GeneratePrelimStudy(spec);
  PrelimStudyOutcome outcome = RunPrelimStudy(data, spec);
  EXPECT_EQ(outcome.differential, 60);
  EXPECT_EQ(outcome.sampled, 60);
  EXPECT_EQ(outcome.bug_related, 42);
  // ~93% of bug fixes cross author scopes.
  EXPECT_GE(outcome.cross_author, 36);
  EXPECT_LE(outcome.cross_author, 42);
}

TEST(PrelimStudy, OldSnapshotHasTheUnusedDefs) {
  PrelimStudySpec spec;
  spec.total_differential = 30;
  spec.bug_fix_removals = 20;
  PrelimStudyData data = GeneratePrelimStudy(spec);
  Project old_project = Project::FromRepositoryAt(data.repo, data.snapshot_2019);
  EXPECT_FALSE(old_project.diags().HasErrors())
      << old_project.diags().Render(old_project.sources()).substr(0, 1000);
  EXPECT_EQ(DetectAll(old_project).size(), 30u);
}

TEST(PrelimStudy, NewSnapshotIsClean) {
  PrelimStudySpec spec;
  spec.total_differential = 30;
  spec.bug_fix_removals = 20;
  PrelimStudyData data = GeneratePrelimStudy(spec);
  Project new_project = Project::FromRepositoryAt(data.repo, data.snapshot_2021);
  EXPECT_FALSE(new_project.diags().HasErrors());
  EXPECT_TRUE(DetectAll(new_project).empty());
}

TEST(PrelimStudy, SampleSizeCapped) {
  PrelimStudySpec spec;
  spec.total_differential = 40;
  spec.bug_fix_removals = 28;
  spec.sample_size = 15;
  PrelimStudyData data = GeneratePrelimStudy(spec);
  PrelimStudyOutcome outcome = RunPrelimStudy(data, spec);
  EXPECT_EQ(outcome.sampled, 15);
  EXPECT_LE(outcome.bug_related, 15);
}

TEST(PrelimStudy, PaperScaleRunsAndMatchesShape) {
  // Full 325-site study: ~70% of a 60-sample should be bug-related, and the
  // overwhelming majority of those cross author scopes (paper: 42 and 39).
  PrelimStudySpec spec;  // defaults are the paper-scale numbers
  PrelimStudyData data = GeneratePrelimStudy(spec);
  PrelimStudyOutcome outcome = RunPrelimStudy(data, spec);
  EXPECT_EQ(outcome.differential, 325);
  EXPECT_EQ(outcome.sampled, 60);
  EXPECT_NEAR(outcome.bug_related, 42, 6);
  EXPECT_GT(outcome.cross_author, outcome.bug_related * 0.8);
}

}  // namespace
}  // namespace vc

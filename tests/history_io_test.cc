// Tests for the vchist history serialization: parsing, error reporting, and
// save/load round-trips (including through the full pipeline).

#include <gtest/gtest.h>

#include "src/core/analysis.h"
#include "src/vcs/history_io.h"

namespace vc {
namespace {

TEST(HistoryIo, ParsesMinimalHistory) {
  std::string text =
      "# a comment\n"
      "commit\n"
      "author alice\n"
      "time 1000\n"
      "message first\n"
      "write a.c\n"
      "<<<\n"
      "int f(int x) {\n"
      "  return x;\n"
      "}\n"
      ">>>\n"
      "end\n";
  std::string error;
  std::optional<Repository> repo = LoadHistory(text, &error);
  ASSERT_TRUE(repo.has_value()) << error;
  EXPECT_EQ(repo->NumCommits(), 1);
  EXPECT_EQ(repo->NumAuthors(), 1);
  EXPECT_EQ(repo->Head("a.c").value(), "int f(int x) {\n  return x;\n}\n");
  const Commit& commit = repo->GetCommit(0);
  EXPECT_EQ(commit.timestamp, 1000);
  EXPECT_EQ(commit.message, "first");
}

TEST(HistoryIo, AuthorsInternedAcrossCommits) {
  std::string text =
      "commit\nauthor dev\ntime 1\nmessage a\nwrite x.c\n<<<\n1\n>>>\nend\n"
      "commit\nauthor dev\ntime 2\nmessage b\nwrite x.c\n<<<\n1\n2\n>>>\nend\n"
      "commit\nauthor other\ntime 3\nmessage c\ndelete x.c\nend\n";
  std::string error;
  std::optional<Repository> repo = LoadHistory(text, &error);
  ASSERT_TRUE(repo.has_value()) << error;
  EXPECT_EQ(repo->NumAuthors(), 2);
  EXPECT_EQ(repo->NumCommits(), 3);
  EXPECT_FALSE(repo->Head("x.c").has_value());  // deleted
}

TEST(HistoryIo, ErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(LoadHistory("bogus\n", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  EXPECT_FALSE(LoadHistory("commit\nauthor a\nwrite f.c\nno-marker\n", &error).has_value());
  EXPECT_NE(error.find("'<<<'"), std::string::npos);

  EXPECT_FALSE(
      LoadHistory("commit\nauthor a\nwrite f.c\n<<<\nnever closed\n", &error).has_value());
  EXPECT_NE(error.find("unterminated"), std::string::npos);

  EXPECT_FALSE(LoadHistory("commit\nauthor a\ntime 1\nmessage m\n", &error).has_value());
  EXPECT_NE(error.find("missing 'end'"), std::string::npos);

  EXPECT_FALSE(LoadHistory("commit\ntime 1\nend\n", &error).has_value());
  EXPECT_NE(error.find("missing 'author'"), std::string::npos);
}

TEST(HistoryIo, EmptyInputIsEmptyRepo) {
  std::string error;
  std::optional<Repository> repo = LoadHistory("", &error);
  ASSERT_TRUE(repo.has_value());
  EXPECT_EQ(repo->NumCommits(), 0);
}

TEST(HistoryIo, SaveLoadRoundTrip) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  repo.AddCommit(alice, 100, "create module", {{"a.c", "line1\nline2\n"}});
  repo.AddCommit(bob, 200, "edit and add", {{"a.c", "line1\nnew\n"}, {"b.c", "other\n"}});
  repo.AddCommit(alice, 300, "remove b", {}, {"b.c"});

  std::string error;
  std::optional<Repository> loaded = LoadHistory(SaveHistory(repo), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->NumCommits(), repo.NumCommits());
  EXPECT_EQ(loaded->Head("a.c"), repo.Head("a.c"));
  EXPECT_EQ(loaded->Head("b.c").has_value(), false);
  // Blame survives the round trip.
  const auto& blame = loaded->Blame("a.c");
  ASSERT_EQ(blame.size(), 2u);
  EXPECT_EQ(loaded->GetAuthor(blame[0].author).name, "alice");
  EXPECT_EQ(loaded->GetAuthor(blame[1].author).name, "bob");
}

TEST(HistoryIo, PipelineOverLoadedHistoryFindsCrossScopeBug) {
  std::string text =
      "commit\n"
      "author alice\n"
      "time 1\n"
      "message add work\n"
      "write w.c\n"
      "<<<\n"
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n"
      ">>>\n"
      "end\n"
      "commit\n"
      "author bob\n"
      "time 2\n"
      "message tweak work\n"
      "write w.c\n"
      "<<<\n"
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  ret = helper(x + 2);\n"
      "  return ret;\n"
      "}\n"
      ">>>\n"
      "end\n";
  std::string error;
  std::optional<Repository> repo = LoadHistory(text, &error);
  ASSERT_TRUE(repo.has_value()) << error;
  AnalysisReport report = Analysis().RunOnRepository(*repo);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, CandidateKind::kOverwrittenDef);
  EXPECT_EQ(repo->GetAuthor(report.findings[0].responsible_author).name, "bob");
}

}  // namespace
}  // namespace vc

// Andersen points-to analysis and value-flow graph tests.

#include <gtest/gtest.h>

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/pointer/andersen.h"
#include "src/pointer/value_flow.h"

namespace vc {
namespace {

struct Analyzed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
  std::unique_ptr<IrModule> module;
};

std::unique_ptr<Analyzed> Analyze(const std::string& code) {
  auto a = std::make_unique<Analyzed>();
  a->unit = ParseString(a->sm, "test.c", code, a->diags);
  EXPECT_FALSE(a->diags.HasErrors()) << a->diags.Render(a->sm);
  a->module = LowerUnit(a->unit);
  return a;
}

SlotId SlotNamed(const IrFunction& func, const std::string& name) {
  for (SlotId i = 0; i < func.slots.size(); ++i) {
    if (func.slots[i].name == name) {
      return i;
    }
  }
  return kInvalidSlot;
}

TEST(Andersen, AddressFlowThroughCopy) {
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 1;\n"
      "  int *p = &x;\n"
      "  int *q = p;\n"
      "  return *q;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  EXPECT_TRUE(pts.SlotIsPointee(SlotNamed(func, "x")));
  // The LoadInd at `*q` must be able to reach x: find the LoadInd operand.
  bool load_sees_x = false;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        load_sees_x = pts.SlotsPointedBy(inst.operands[0]).count(SlotNamed(func, "x")) > 0;
      }
    }
  }
  EXPECT_TRUE(load_sees_x);
}

TEST(Andersen, BranchMergesPointees) {
  auto a = Analyze(
      "int f(int c) {\n"
      "  int x = 1;\n"
      "  int y = 2;\n"
      "  int *p = &x;\n"
      "  if (c) {\n"
      "    p = &y;\n"
      "  }\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  bool sees_x = false;
  bool sees_y = false;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        const auto& set = pts.SlotsPointedBy(inst.operands[0]);
        sees_x = set.count(SlotNamed(func, "x")) > 0;
        sees_y = set.count(SlotNamed(func, "y")) > 0;
      }
    }
  }
  EXPECT_TRUE(sees_x);
  EXPECT_TRUE(sees_y);
}

TEST(Andersen, FieldSensitiveFieldPtr) {
  auto a = Analyze(
      "struct s { int a; int b; };\n"
      "int f(void) {\n"
      "  struct s v;\n"
      "  struct s *p = &v;\n"
      "  p->b = 7;\n"
      "  return p->b;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  SlotId vb = SlotNamed(func, "v#1");
  ASSERT_NE(vb, kInvalidSlot);
  // The StoreInd through p->b must target exactly the v#1 slot.
  bool store_targets_field = false;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kStoreInd) {
        const auto& set = pts.SlotsPointedBy(inst.operands[0]);
        store_targets_field = set.count(vb) > 0 && set.count(SlotNamed(func, "v#0")) == 0;
      }
    }
  }
  EXPECT_TRUE(store_targets_field);
}

TEST(Andersen, FunctionPointerResolution) {
  auto a = Analyze(
      "int target(int x) { return x; }\n"
      "int other(int x) { return x + 1; }\n"
      "int f(int c) {\n"
      "  void *fp = target;\n"
      "  if (c) {\n"
      "    fp = other;\n"
      "  }\n"
      "  g_use(fp);\n"
      "  return 0;\n"
      "}\nint g_use(void *);");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  // The load of fp before g_use sees both functions.
  SlotId fp = SlotNamed(func, "fp");
  ASSERT_NE(fp, kInvalidSlot);
  std::set<std::string> names;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoad && inst.slot == fp) {
        for (const FunctionDecl* callee : pts.FunctionsPointedBy(inst.result)) {
          names.insert(callee->name);
        }
      }
    }
  }
  EXPECT_EQ(names, (std::set<std::string>{"target", "other"}));
}

TEST(Andersen, CallResultIsUnknown) {
  auto a = Analyze("int *g(void);\nint f(void) { int *p = g(); return *p; }");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        EXPECT_TRUE(pts.PointsToUnknown(inst.operands[0]));
      }
    }
  }
}

TEST(Andersen, PointerArithmeticPreservesPointees) {
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 1;\n"
      "  int *p = &x;\n"
      "  p = p + 1;\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  bool sees_x = false;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        sees_x = pts.SlotsPointedBy(inst.operands[0]).count(SlotNamed(func, "x")) > 0;
      }
    }
  }
  EXPECT_TRUE(sees_x);
}

TEST(Andersen, ConvergesOnCycles) {
  // p and q point to each other's pointees through a loop: must terminate.
  auto a = Analyze(
      "int f(int n) {\n"
      "  int x = 1;\n"
      "  int y = 2;\n"
      "  int *p = &x;\n"
      "  int *q = &y;\n"
      "  while (n > 0) {\n"
      "    int *t = p;\n"
      "    p = q;\n"
      "    q = t;\n"
      "    n = n - 1;\n"
      "  }\n"
      "  return *p + *q;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  EXPECT_GT(pts.iterations(), 1);
  EXPECT_TRUE(pts.SlotIsPointee(SlotNamed(func, "x")));
  EXPECT_TRUE(pts.SlotIsPointee(SlotNamed(func, "y")));
}

TEST(Andersen, IterationCeilingFallsBackToTop) {
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 1;\n"
      "  int *p = &x;\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  // With the fix point forced to never converge, a tiny ceiling must trip and
  // degrade to the sound "top" state instead of hanging.
  PointsTo::ForceNonConvergenceForTest(true);
  PointsTo pts(func, /*max_iterations=*/100);
  PointsTo::ForceNonConvergenceForTest(false);
  EXPECT_TRUE(pts.capped());
  for (ValueId v = 0; v < func.next_value; ++v) {
    EXPECT_TRUE(pts.PointsToUnknown(v));
  }
  for (SlotId s = 0; s < func.slots.size(); ++s) {
    EXPECT_TRUE(pts.SlotIsPointee(s));
  }
  // A normal run of the same function is unaffected by the ceiling.
  PointsTo clean(func, /*max_iterations=*/100);
  EXPECT_FALSE(clean.capped());
  EXPECT_TRUE(clean.SlotIsPointee(SlotNamed(func, "x")));
}

// --- ValueFlowGraph -----------------------------------------------------------

TEST(ValueFlow, CountsDirectDefsAndUses) {
  auto a = Analyze(
      "int f(int a) {\n"
      "  int x = a;\n"
      "  x = x + 1;\n"
      "  return x;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  ValueFlowGraph vfg(func, pts);
  SlotId x = SlotNamed(func, "x");
  EXPECT_EQ(vfg.NumDefs(x), 2);
  EXPECT_EQ(vfg.NumUses(x), 2);  // load for x+1, load for return
}

TEST(ValueFlow, IncrementCounting) {
  auto a = Analyze(
      "void f(char *o, int c) {\n"
      "  *o = c;\n"
      "  o = o + 1;\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "  o = o - 1;\n"
      "  *o = 1;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  ValueFlowGraph vfg(func, pts);
  SlotId o = SlotNamed(func, "o");
  EXPECT_EQ(vfg.NumIncrementDefs(o, 1), 2);
  EXPECT_EQ(vfg.NumIncrementDefs(o, -1), 1);
  EXPECT_EQ(vfg.NumIncrementDefs(o, 0), 3);  // any step
}

TEST(ValueFlow, IndirectUseDetected) {
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 5;\n"
      "  int *p = &x;\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  ValueFlowGraph vfg(func, pts);
  EXPECT_TRUE(vfg.HasIndirectUse(SlotNamed(func, "x")));
  EXPECT_FALSE(vfg.HasIndirectUse(SlotNamed(func, "p")));
}

TEST(ValueFlow, AccessOrderWithinBlock) {
  auto a = Analyze("int g_sink;\nint f(int a) { int x = a; g_sink = x; return x; }");
  const IrFunction& func = *a->module->FindFunction("f");
  PointsTo pts(func);
  ValueFlowGraph vfg(func, pts);
  const auto& accesses = vfg.AccessesOf(SlotNamed(func, "x"));
  ASSERT_EQ(accesses.size(), 3u);
  EXPECT_TRUE(accesses[0].is_def);
  EXPECT_FALSE(accesses[1].is_def);
  EXPECT_FALSE(accesses[2].is_def);
  EXPECT_LT(accesses[0].index, accesses[1].index);
}

}  // namespace
}  // namespace vc

// The checker-framework migration gate. The unused-definition detector moved
// from a hardwired pipeline stage onto the vc::Checker interface; these tests
// pin that `--checkers unused-def` on the checked-in corpus still produces
// the pre-refactor findings and fingerprints, byte for byte, at every job
// count — and that each checker's output is deterministic and composable
// (a solo run equals its slice of a combined run).

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/analysis.h"
#include "src/corpus/generator.h"
#include "src/corpus/profile.h"

namespace vc {
namespace {

const char* kCorpusFiles[] = {
    "netdev.c",
    "ringbuf.c",
    "sched.c",
    "fuzz/fuzz_param_overwrite.c",
    "fuzz/fuzz_global_loop.c",
};

// The findings the pre-refactor pipeline (no checker framework) reported on
// examples/corpus, serialized "fingerprint file line function variable kind"
// and sorted. Captured from the last commit before the vc::Checker migration.
const char* kPreRefactorGolden[] = {
    "10ec8d33bb657678 examples/corpus/netdev.c 12 bring_up status plain-unused",
    "387b845b9f2431ae examples/corpus/fuzz/fuzz_param_overwrite.c 7 fn1 v4 plain-unused",
    "970f8d8463fc9318 examples/corpus/fuzz/fuzz_param_overwrite.c 6 fn1 v4 overwritten-param",
    "cca4591951de5324 examples/corpus/fuzz/fuzz_global_loop.c 15 fn7 v15 plain-unused",
    "f08cf68f27a6a8ed examples/corpus/fuzz/fuzz_param_overwrite.c 6 fn1 v5 unused-param",
    "f6375c18a6431613 examples/corpus/fuzz/fuzz_global_loop.c 13 fn7 v13 unused-param",
};

std::vector<std::pair<std::string, std::string>> CorpusSources() {
  std::vector<std::pair<std::string, std::string>> sources;
  for (const char* relative : kCorpusFiles) {
    std::ifstream in(std::string(VALUECHECK_CORPUS_DIR) + "/" + relative);
    EXPECT_TRUE(in.good()) << relative;
    std::stringstream contents;
    contents << in.rdbuf();
    sources.push_back({std::string("examples/corpus/") + relative, contents.str()});
  }
  return sources;
}

// Source-mode analysis, exactly as the CLI configures it for a directory of
// sources: no history, so the cross-scope filter and ranking are off.
AnalysisOptions SourceMode(std::vector<std::string> checkers, int jobs) {
  AnalysisOptions options;
  options.checkers = std::move(checkers);
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  options.jobs = jobs;
  return options;
}

std::vector<std::string> Serialize(const AnalysisReport& report) {
  std::vector<std::string> lines;
  for (const UnusedDefCandidate& cand : report.findings) {
    lines.push_back(cand.fingerprint + " " + cand.file + " " +
                    std::to_string(cand.def_loc.line) + " " + cand.function + " " +
                    cand.slot_name + " " + CandidateKindName(cand.kind));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(MigrationEquivalence, UnusedDefAloneMatchesPreRefactorGolden) {
  std::vector<std::pair<std::string, std::string>> sources = CorpusSources();
  for (int jobs : {1, 2, 8}) {
    AnalysisReport report =
        Analysis(SourceMode({"unused-def"}, jobs)).RunOnSources(sources);
    std::vector<std::string> expected(std::begin(kPreRefactorGolden),
                                      std::end(kPreRefactorGolden));
    EXPECT_EQ(Serialize(report), expected) << "jobs=" << jobs;
    // The prune accounting the old pipeline reported on this corpus.
    EXPECT_EQ(report.prune_stats.original, 7) << "jobs=" << jobs;
    EXPECT_EQ(report.prune_stats.config_dependency, 1) << "jobs=" << jobs;
    EXPECT_EQ(report.prune_stats.remaining, 6) << "jobs=" << jobs;
    ASSERT_EQ(report.checkers, std::vector<std::string>{"unused-def"});
    for (const UnusedDefCandidate& cand : report.findings) {
      EXPECT_EQ(cand.checker, "unused-def");
    }
  }
}

TEST(MigrationEquivalence, DefaultCheckerSetAddsNothingOnThisCorpus) {
  // examples/corpus contains no double-overwrite / dead-global-store /
  // out-param-unused / stale-copy patterns, so the default multi-checker run
  // reports exactly the unused-def findings. The CLI golden locks and the
  // self-diff smoke rely on this.
  std::vector<std::pair<std::string, std::string>> sources = CorpusSources();
  AnalysisReport all = Analysis(SourceMode({}, 1)).RunOnSources(sources);
  EXPECT_EQ(all.checkers.size(), 5u);
  std::vector<std::string> expected(std::begin(kPreRefactorGolden),
                                    std::end(kPreRefactorGolden));
  EXPECT_EQ(Serialize(all), expected);
}

// A generated repository where every checker has something to find.
ProjectProfile CheckerMixProfile() {
  ProjectProfile profile;
  profile.name = "CheckerMix";
  profile.seed = 0x5eedu;
  profile.counts.retval_ignored = 6;
  profile.counts.param_unused = 4;
  profile.counts.double_overwrite = 5;
  profile.counts.dead_global_store = 4;
  profile.counts.out_param_unused = 3;
  profile.counts.stale_copy = 4;
  profile.counts.filler_functions = 20;
  return profile;
}

std::set<std::string> CheckerQualifiedFingerprints(const AnalysisReport& report) {
  std::set<std::string> set;
  for (const UnusedDefCandidate& cand : report.findings) {
    set.insert(cand.checker + ":" + cand.fingerprint);
  }
  return set;
}

TEST(PerCheckerDeterminism, EachCheckerAloneIsByteIdenticalAcrossJobs) {
  GeneratedApp app = GenerateApp(CheckerMixProfile());
  for (const std::string& checker :
       {std::string("unused-def"), std::string("double-overwrite"),
        std::string("dead-global-store"), std::string("out-param-unused"),
        std::string("stale-copy")}) {
    AnalysisOptions serial;
    serial.checkers = {checker};
    serial.jobs = 1;
    AnalysisReport baseline = Analysis(serial).RunOnRepository(app.repo);
    std::string expected = baseline.ToCsv();
    for (int jobs : {2, 8}) {
      AnalysisOptions options;
      options.checkers = {checker};
      options.jobs = jobs;
      AnalysisReport report = Analysis(options).RunOnRepository(app.repo);
      EXPECT_EQ(report.ToCsv(), expected) << checker << " jobs=" << jobs;
      EXPECT_EQ(Serialize(report), Serialize(baseline)) << checker << " jobs=" << jobs;
    }
  }
}

TEST(PerCheckerDeterminism, SoloRunsEqualSlicesOfCombinedRun) {
  GeneratedApp app = GenerateApp(CheckerMixProfile());
  AnalysisReport combined = Analysis().RunOnRepository(app.repo);
  ASSERT_EQ(combined.checkers.size(), 5u);

  std::set<std::string> combined_fps = CheckerQualifiedFingerprints(combined);
  ASSERT_FALSE(combined_fps.empty());
  std::set<std::string> union_of_solos;
  for (const std::string& checker : combined.checkers) {
    AnalysisOptions options;
    options.checkers = {checker};
    AnalysisReport solo = Analysis(options).RunOnRepository(app.repo);
    for (const UnusedDefCandidate& cand : solo.findings) {
      EXPECT_EQ(cand.checker, checker);
      union_of_solos.insert(cand.checker + ":" + cand.fingerprint);
    }
  }
  EXPECT_EQ(union_of_solos, combined_fps);
}

}  // namespace
}  // namespace vc

// The incremental engine's differential battery: at EVERY commit of a
// history, the engine's report must be byte-identical (CSV rendering and
// fingerprint sequence) to a fresh full analysis of the repository truncated
// at that commit — at jobs 1, 2, and 8, with and without the disk cache,
// across the edit shapes real repositories produce (file adds, deletes,
// renames, signature changes, cross-file callee edits, whitespace touches).
//
// The synthesized histories come from src/testing/history_gen.h, which emits
// exactly those shapes by construction; the hand-written history below pins
// each shape individually so a battery failure localizes.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/incremental.h"
#include "src/testing/history_gen.h"

namespace vc {
namespace {

std::vector<std::string> Fingerprints(const AnalysisReport& report) {
  std::vector<std::string> prints;
  for (const UnusedDefCandidate& cand : report.findings) {
    prints.push_back(cand.fingerprint);
  }
  return prints;
}

// Replays `repo` through one warm engine and diffs every commit against a
// fresh full run truncated there.
void ExpectReplayEquivalent(const Repository& repo, const AnalysisOptions& options,
                            const std::string& cache_dir = "") {
  IncrementalOptions inc;
  inc.cache_dir = cache_dir;
  IncrementalEngine engine(options, inc);
  Analysis full(options);
  for (CommitId commit = 0; commit < repo.NumCommits(); ++commit) {
    IncrementalResult result = engine.AnalyzeCommit(repo, commit);
    AnalysisReport fresh = full.RunOnRepository(repo.PrefixCopy(commit));
    ASSERT_EQ(result.report.ToCsv(), fresh.ToCsv())
        << "divergence at commit " << commit << " (" << repo.GetCommit(commit).message
        << "), jobs=" << options.jobs;
    ASSERT_EQ(Fingerprints(result.report), Fingerprints(fresh))
        << "fingerprint divergence at commit " << commit;
  }
}

testing::HistoryGenOptions SmallHistory(uint64_t seed, int commits) {
  testing::HistoryGenOptions options;
  options.seed = seed;
  options.commits = commits;
  options.initial_modules = 3;
  options.max_modules = 8;
  options.authors = 3;
  options.per_module.max_functions_per_file = 3;
  options.per_module.max_stmts_per_function = 6;
  return options;
}

TEST(IncrementalEquivalence, GeneratedHistoryAtJobs1) {
  Repository repo = testing::GenerateHistory(SmallHistory(7, 24));
  AnalysisOptions options;
  options.jobs = 1;
  ExpectReplayEquivalent(repo, options);
}

TEST(IncrementalEquivalence, GeneratedHistoryAtJobs2) {
  Repository repo = testing::GenerateHistory(SmallHistory(7, 24));
  AnalysisOptions options;
  options.jobs = 2;
  ExpectReplayEquivalent(repo, options);
}

TEST(IncrementalEquivalence, GeneratedHistoryAtJobs8) {
  Repository repo = testing::GenerateHistory(SmallHistory(7, 24));
  AnalysisOptions options;
  options.jobs = 8;
  ExpectReplayEquivalent(repo, options);
}

TEST(IncrementalEquivalence, SecondSeedShiftsTheOpMixAndStillMatches) {
  Repository repo = testing::GenerateHistory(SmallHistory(1234, 18));
  AnalysisOptions options;
  options.jobs = 2;
  ExpectReplayEquivalent(repo, options);
}

// Hand-written history pinning each edit shape the generator mixes freely.
TEST(IncrementalEquivalence, HandWrittenEditShapes) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");

  std::string util =
      "int util_compute(int x) {\n"
      "  int t = x * 2;\n"
      "  return t;\n"
      "}\n";
  std::string caller =
      "int caller_run(int x) {\n"
      "  int r = util_compute(x);\n"
      "  return r;\n"
      "}\n";
  repo.AddCommit(alice, 100, "create", {{"util.c", util}, {"caller.c", caller}});

  // File add.
  repo.AddCommit(bob, 200, "add helper",
                 {{"helper.c", "int helper(int y) {\n  return y + 1;\n}\n"}});

  // Cross-file callee edit: util_compute's body changes; caller.c untouched
  // on disk but dirty through the dependency graph.
  std::string util2 =
      "int util_compute(int x) {\n"
      "  int t = x * 2;\n"
      "  t = x * 3;\n"
      "  return t;\n"
      "}\n";
  repo.AddCommit(bob, 300, "rework util", {{"util.c", util2}});

  // Signature change rippling to the caller.
  std::string util3 =
      "int util_compute(int x, int bias) {\n"
      "  int t = x * 3 + bias;\n"
      "  return t;\n"
      "}\n";
  std::string caller2 =
      "int caller_run(int x) {\n"
      "  int r = util_compute(x, 1);\n"
      "  return r;\n"
      "}\n";
  repo.AddCommit(alice, 400, "widen util_compute", {{"util.c", util3}, {"caller.c", caller2}});

  // Rename: same bytes, new path.
  repo.AddCommit(alice, 500, "move helper", {{"support.c", "int helper(int y) {\n  return y + 1;\n}\n"}},
                 {"helper.c"});

  // File delete.
  repo.AddCommit(bob, 600, "drop support", {}, {"support.c"});

  // Whitespace-only touch.
  repo.AddCommit(bob, 700, "tidy caller", {{"caller.c", caller2 + "\n"}});

  for (int jobs : {1, 2, 8}) {
    AnalysisOptions options;
    options.jobs = jobs;
    ExpectReplayEquivalent(repo, options);
  }
}

TEST(IncrementalEquivalence, DiskCacheColdRestartStaysEquivalent) {
  std::filesystem::path dir = std::filesystem::temp_directory_path() /
                              ("vc_inc_equiv_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  Repository repo = testing::GenerateHistory(SmallHistory(42, 12));
  AnalysisOptions options;
  options.jobs = 2;

  // First process: populates the disk cache while staying equivalent.
  ExpectReplayEquivalent(repo, options, dir.string());

  // Second process (fresh engine, same cache dir): must restore from disk
  // and still match full runs at every commit.
  {
    IncrementalOptions inc;
    inc.cache_dir = dir.string();
    IncrementalEngine engine(options, inc);
    IncrementalResult first = engine.AnalyzeCommit(repo, 0);
    EXPECT_GT(first.cache.disk_loads, 0u) << "cold start never read the disk cache";
    Analysis full(options);
    for (CommitId commit = 0; commit < repo.NumCommits(); ++commit) {
      IncrementalResult result =
          commit == 0 ? std::move(first) : engine.AnalyzeCommit(repo, commit);
      AnalysisReport fresh = full.RunOnRepository(repo.PrefixCopy(commit));
      ASSERT_EQ(result.report.ToCsv(), fresh.ToCsv()) << "disk-restored divergence at " << commit;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vc

// Integration tests for the `valuecheck` CLI binary: runs the real executable
// (path injected by CMake) against fixtures written to a temp directory and
// checks exit codes and output.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#ifndef VALUECHECK_CLI_PATH
#define VALUECHECK_CLI_PATH "valuecheck"
#endif

namespace vc {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  std::array<char, 4096> buffer;
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunCli(const std::string& args) {
  return RunCommand(std::string(VALUECHECK_CLI_PATH) + " " + args + " 2>&1");
}

// stdout only — used by the determinism checks, where stderr deliberately
// differs (metrics table, logs) but findings must be byte-identical.
RunResult RunCliStdout(const std::string& args) {
  return RunCommand(std::string(VALUECHECK_CLI_PATH) + " " + args + " 2>/dev/null");
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vc_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    std::filesystem::path path = dir_ / name;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path);
    out << content;
    return path.string();
  }

  std::filesystem::path dir_;
};

constexpr const char* kBuggy =
    "int get_status(int entry) {\n"
    "  return entry + 1;\n"
    "}\n"
    "int handle(int entry, int mode) {\n"
    "  int ret = get_status(entry);\n"
    "  ret = mode * 2;\n"
    "  if (ret) {\n"
    "    return 0;\n"
    "  }\n"
    "  return 1;\n"
    "}\n";

constexpr const char* kClean =
    "int add(int a, int b) {\n"
    "  int s = a + b;\n"
    "  return s;\n"
    "}\n";

TEST_F(CliTest, CleanFileExitsZero) {
  std::string path = Write("clean.c", kClean);
  RunResult result = RunCli(path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("0 unused definition(s)"), std::string::npos);
}

TEST_F(CliTest, FindingExitsOneWithWarning) {
  std::string path = Write("buggy.c", kBuggy);
  RunResult result = RunCli(path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("buggy.c:5: warning:"), std::string::npos);
  EXPECT_NE(result.output.find("'ret' is overwritten before use"), std::string::npos);
}

TEST_F(CliTest, DirectoryModeScansRecursively) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  Write("ignored.txt", "not c code {{{");
  RunResult result = RunCli(dir_.string());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("1 unused definition(s)"), std::string::npos);
}

TEST_F(CliTest, JsonFormat) {
  std::string path = Write("buggy.c", kBuggy);
  RunResult result = RunCli(path + " --format=json");
  EXPECT_NE(result.output.find("\"variable\":\"ret\""), std::string::npos);
  EXPECT_NE(result.output.find("\"value_from_call\":\"get_status\""), std::string::npos);
}

TEST_F(CliTest, SarifFormat) {
  std::string path = Write("buggy.c", kBuggy);
  RunResult result = RunCli(path + " --format=sarif");
  EXPECT_NE(result.output.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(result.output.find("\"startLine\":5"), std::string::npos);
}

TEST_F(CliTest, DefineFlagControlsConfig) {
  std::string code =
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host = mk(x);\n"
      "  int n = 1;\n"
      "#if USE_ICMP\n"
      "  n = host;\n"
      "#endif\n"
      "  return n;\n"
      "}\n";
  std::string path = Write("cfg.c", code);
  // Feature off: the candidate is config-pruned -> exit 0.
  RunResult off = RunCli(path);
  EXPECT_EQ(off.exit_code, 0) << off.output;
  EXPECT_NE(off.output.find("1 config"), std::string::npos);
  // With config pruning disabled, the finding depends on the configuration:
  // feature off leaves 'host' dead, feature on leaves the 'n = 1' initializer
  // dead (the guarded line both uses host and overwrites n).
  RunResult off_noprune = RunCli(path + " --no-prune-config");
  EXPECT_EQ(off_noprune.exit_code, 1) << off_noprune.output;
  EXPECT_NE(off_noprune.output.find("'host'"), std::string::npos);
  RunResult on_noprune = RunCli(path + " --define=USE_ICMP --no-prune-config");
  EXPECT_EQ(on_noprune.exit_code, 1) << on_noprune.output;
  EXPECT_NE(on_noprune.output.find("'n'"), std::string::npos);
}

TEST_F(CliTest, HistoryModeRanksAndAttributes) {
  std::string hist =
      "commit\nauthor alice\ntime 1000\nmessage add handler\nwrite h.c\n<<<\n"
      "int get_status(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int handle(int entry, int mode) {\n"
      "  int ret = get_status(entry);\n"
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return mode;\n"
      "}\n"
      ">>>\nend\n"
      "commit\nauthor bob\ntime 2000\nmessage recompute\nwrite h.c\n<<<\n"
      "int get_status(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int handle(int entry, int mode) {\n"
      "  int ret = get_status(entry);\n"
      "  ret = mode * 2;\n"
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return mode;\n"
      "}\n"
      ">>>\nend\n";
  std::string path = Write("proj.vchist", hist);
  RunResult result = RunCli("--history=" + path);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("introduced by bob"), std::string::npos);
  EXPECT_NE(result.output.find("familiarity"), std::string::npos);
}

TEST_F(CliTest, BadHistoryReportsError) {
  std::string path = Write("bad.vchist", "not a history\n");
  RunResult result = RunCli("--history=" + path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("line 1"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagFails) {
  RunResult result = RunCli("--bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown option"), std::string::npos);
}

TEST_F(CliTest, ParseErrorExitsTwo) {
  std::string path = Write("broken.c", "int f( {{{\n");
  RunResult result = RunCli(path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, TraceFlagWritesWellFormedChromeTrace) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  std::string trace_path = (dir_ / "trace.json").string();
  RunResult result =
      RunCli("--trace=" + trace_path + " --metrics --jobs=0 " + dir_.string());
  EXPECT_EQ(result.exit_code, 1) << result.output;

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_path;
  std::string trace((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  // Chrome trace-event envelope with complete ("X") events carrying
  // timestamps, durations, and thread ids.
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u) << trace.substr(0, 120);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Spans from every pipeline layer made it into the export.
  EXPECT_NE(trace.find("\"analysis.run\""), std::string::npos);
  EXPECT_NE(trace.find("\"parse_lower\""), std::string::npos);
  EXPECT_NE(trace.find("\"detect_fn\""), std::string::npos);
  EXPECT_NE(trace.find("\"prune.match\""), std::string::npos);
  // The outer rank span always fires; rank.score only when ranking is
  // enabled, which needs history (authorship) — not the case here.
  EXPECT_NE(trace.find("\"rank\""), std::string::npos);
}

TEST_F(CliTest, MetricsFlagPrintsStageTable) {
  Write("buggy.c", kBuggy);
  RunResult result = RunCli("--metrics " + dir_.string());
  EXPECT_EQ(result.exit_code, 1) << result.output;
  // The stage table covers every pipeline phase, including per-pattern prune
  // rows, and the registry table lists the hot-path counters.
  EXPECT_NE(result.output.find("pipeline stage metrics"), std::string::npos);
  EXPECT_NE(result.output.find("parse"), std::string::npos);
  EXPECT_NE(result.output.find("detect"), std::string::npos);
  EXPECT_NE(result.output.find("prune:cursor"), std::string::npos);
  EXPECT_NE(result.output.find("rank"), std::string::npos);
  EXPECT_NE(result.output.find("thread-pool"), std::string::npos);
  EXPECT_NE(result.output.find("metrics registry"), std::string::npos);
  EXPECT_NE(result.output.find("detect.functions"), std::string::npos);
}

TEST_F(CliTest, ObservabilityDoesNotChangeFindings) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  std::string trace_path = (dir_ / "trace.json").string();
  for (const char* format : {"text", "json", "csv"}) {
    std::string fmt = std::string(" --format=") + format + " " + dir_.string();
    RunResult plain = RunCliStdout(fmt);
    RunResult observed = RunCliStdout("--metrics --trace=" + trace_path +
                                      " --log-level=debug --jobs=2" + fmt);
    EXPECT_EQ(plain.exit_code, observed.exit_code) << format;
    if (std::string(format) == "json") {
      // The JSON report legitimately gains the metrics + memory blocks;
      // the findings array (not the checker_stats "findings" counts, hence
      // the "[" anchor) must agree byte for byte.
      EXPECT_NE(observed.output.find("\"metrics\":"), std::string::npos);
      size_t plain_findings = plain.output.find("\"findings\":[");
      size_t observed_findings = observed.output.find("\"findings\":[");
      ASSERT_NE(plain_findings, std::string::npos);
      ASSERT_NE(observed_findings, std::string::npos);
      EXPECT_EQ(plain.output.substr(plain_findings),
                observed.output.substr(observed_findings));
    } else {
      EXPECT_EQ(plain.output, observed.output) << format;
    }
  }
}

TEST_F(CliTest, BadFormatValueRejectedWithUsage) {
  std::string path = Write("clean.c", kClean);
  RunResult result = RunCli("--format=yaml " + path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown format 'yaml'"), std::string::npos);
  EXPECT_NE(result.output.find("usage: valuecheck"), std::string::npos);
}

TEST_F(CliTest, BadLogLevelRejectedWithUsage) {
  std::string path = Write("clean.c", kClean);
  RunResult result = RunCli("--log-level=chatty " + path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown log level 'chatty'"), std::string::npos);
  EXPECT_NE(result.output.find("usage: valuecheck"), std::string::npos);
}

TEST_F(CliTest, JsonReportCarriesDiagnosticsBlock) {
  std::string path = Write("buggy.c", kBuggy);
  RunResult result = RunCli(path + " --format=json");
  EXPECT_NE(result.output.find("\"schema_version\":8"), std::string::npos);
  EXPECT_NE(result.output.find("\"diagnostics\":{\"warnings\":"), std::string::npos);
}

TEST_F(CliTest, JsonFindingsCarryFingerprints) {
  std::string path = Write("buggy.c", kBuggy);
  RunResult result = RunCli(path + " --format=json");
  EXPECT_NE(result.output.find("\"fingerprint\":\""), std::string::npos);
  RunResult sarif = RunCli(path + " --format=sarif");
  EXPECT_NE(sarif.output.find("\"valueCheckFingerprint/v1\":\""), std::string::npos);
}

TEST_F(CliTest, DashDashTreatsFollowingArgsAsInputs) {
  // A file literally named like a flag must be analyzable after `--`.
  std::string path = Write("--metrics.c", kClean);
  RunResult result = RunCli("-- " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("0 unused definition(s)"), std::string::npos);
}

TEST_F(CliTest, TraceCreatesParentDirectories) {
  std::string path = Write("buggy.c", kBuggy);
  std::string trace_path = (dir_ / "nested" / "deep" / "trace.json").string();
  RunResult result = RunCli("--trace=" + trace_path + " " + path);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  std::ifstream in(trace_path);
  EXPECT_TRUE(in.good()) << "trace not written under created parents: " << trace_path;
}

TEST_F(CliTest, LedgerSelfDiffIsCleanAndCheckPasses) {
  std::string path = Write("buggy.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  // Two identical runs; findings exist, so analyze exits 1 both times.
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  RunResult diff = RunCli("diff --ledger=" + ledger + " --check");
  EXPECT_EQ(diff.exit_code, 0) << diff.output;
  EXPECT_NE(diff.output.find("0 new, 0 fixed, 1 persistent"), std::string::npos);
  EXPECT_NE(diff.output.find("check: PASSED"), std::string::npos);
}

TEST_F(CliTest, LedgerDiffFlagsNewFindingAndFailsCheck) {
  std::string path = Write("evolving.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  // Introduce a second unused definition in a new function.
  Write("evolving.c", std::string(kBuggy) +
                          "int extra(int entry, int mode) {\n"
                          "  int val = get_status(entry);\n"
                          "  val = mode + 3;\n"
                          "  return val;\n"
                          "}\n");
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  RunResult diff = RunCli("diff --ledger=" + ledger + " --check");
  EXPECT_EQ(diff.exit_code, 1) << diff.output;
  EXPECT_NE(diff.output.find("1 new, 0 fixed, 1 persistent"), std::string::npos);
  EXPECT_NE(diff.output.find("check: FAILED"), std::string::npos);
  EXPECT_NE(diff.output.find("extra(): val"), std::string::npos);
}

TEST_F(CliTest, LedgerDiffFlagsFixedFinding) {
  std::string path = Write("evolving.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  Write("evolving.c", kClean);
  EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 0);
  RunResult diff = RunCli("diff --ledger=" + ledger + " --check");
  EXPECT_EQ(diff.exit_code, 0) << diff.output;  // fixes don't fail the gate
  EXPECT_NE(diff.output.find("0 new, 1 fixed, 0 persistent"), std::string::npos);
}

TEST_F(CliTest, DiffOutputByteIdenticalAcrossJobs) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  std::string serial = (dir_ / "ledger_j1").string();
  std::string parallel = (dir_ / "ledger_j8").string();
  for (int i = 0; i < 2; ++i) {
    RunCli("analyze --ledger=" + serial + " --jobs=1 " + dir_.string());
    RunCli("analyze --ledger=" + parallel + " --jobs=8 " + dir_.string());
  }
  RunResult diff_serial = RunCliStdout("diff --ledger=" + serial);
  RunResult diff_parallel = RunCliStdout("diff --ledger=" + parallel);
  EXPECT_EQ(diff_serial.exit_code, 0);
  EXPECT_EQ(diff_serial.output, diff_parallel.output);
}

TEST_F(CliTest, HistoryListsRunsAndHonorsLimit) {
  std::string path = Write("buggy.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  RunCli("analyze --ledger=" + ledger + " --label=first " + path);
  RunCli("analyze --ledger=" + ledger + " --label=second " + path);
  RunResult history = RunCli("history --ledger=" + ledger);
  EXPECT_EQ(history.exit_code, 0) << history.output;
  EXPECT_NE(history.output.find("r0001"), std::string::npos);
  EXPECT_NE(history.output.find("r0002"), std::string::npos);
  EXPECT_NE(history.output.find("first"), std::string::npos);
  EXPECT_NE(history.output.find("second"), std::string::npos);
  RunResult limited = RunCli("history --ledger=" + ledger + " --limit=1");
  EXPECT_EQ(limited.output.find("r0001"), std::string::npos) << limited.output;
  EXPECT_NE(limited.output.find("r0002"), std::string::npos);
}

TEST_F(CliTest, ReportHtmlRendersTrendDashboard) {
  std::string path = Write("buggy.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  RunCli("analyze --ledger=" + ledger + " " + path);
  RunCli("analyze --ledger=" + ledger + " " + path);
  std::string html_path = (dir_ / "dash" / "index.html").string();
  RunResult report = RunCli("report --ledger=" + ledger + " --html=" + html_path);
  EXPECT_EQ(report.exit_code, 0) << report.output;
  EXPECT_NE(report.output.find("2 run(s)"), std::string::npos);
  std::ifstream in(html_path);
  ASSERT_TRUE(in.good()) << "dashboard not written: " << html_path;
  std::string html((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(html.find("<svg"), std::string::npos) << "no trend sparkline";
  EXPECT_NE(html.find("valuecheck run ledger"), std::string::npos);
  EXPECT_NE(html.find("r0002"), std::string::npos);
}

TEST_F(CliTest, ObservabilityFlagsProduceArtifactsWithoutPerturbingFindings) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  std::string events_path = (dir_ / "obs" / "events.jsonl").string();
  std::string profile_path = (dir_ / "obs" / "profile.folded").string();
  std::string prom_path = (dir_ / "obs" / "metrics.prom").string();

  RunResult plain = RunCliStdout("--format=json --jobs=2 " + dir_.string());
  RunResult observed = RunCliStdout(
      "--format=json --jobs=2 --progress --events=" + events_path +
      " --profile=" + profile_path + " --metrics-out=" + prom_path + " " + dir_.string());
  EXPECT_EQ(plain.exit_code, observed.exit_code);
  // --metrics-out implies metrics collection, so the JSON gains the metrics
  // and memory blocks; the findings tail must be byte-identical.
  EXPECT_NE(observed.output.find("\"memory\":{"), std::string::npos);
  EXPECT_NE(observed.output.find("\"tracked_bytes\":"), std::string::npos);
  size_t plain_findings = plain.output.find("\"findings\":[");
  size_t observed_findings = observed.output.find("\"findings\":[");
  ASSERT_NE(plain_findings, std::string::npos);
  ASSERT_NE(observed_findings, std::string::npos);
  EXPECT_EQ(plain.output.substr(plain_findings), observed.output.substr(observed_findings));

  // Events stream: JSONL bracketed by run_start/run_end, with per-file stages.
  std::ifstream events_in(events_path);
  ASSERT_TRUE(events_in.good()) << "events not written: " << events_path;
  std::string events((std::istreambuf_iterator<char>(events_in)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(events.rfind("{\"event\":\"run_start\",\"seq\":0,", 0), 0u)
      << events.substr(0, 120);
  EXPECT_NE(events.find("\"event\":\"stage_end\""), std::string::npos);
  EXPECT_NE(events.find("\"event\":\"checker_done\""), std::string::npos);
  EXPECT_NE(events.find("\"event\":\"run_end\""), std::string::npos);
  EXPECT_NE(events.find("\"findings\":"), std::string::npos);

  // Collapsed profile: non-empty, every line "frame[;frame...] weight".
  std::ifstream profile_in(profile_path);
  ASSERT_TRUE(profile_in.good()) << "profile not written: " << profile_path;
  std::string line;
  int profile_lines = 0;
  while (std::getline(profile_in, line)) {
    ++profile_lines;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
  }
  EXPECT_GT(profile_lines, 0);

  // Prometheus dump: typed vc_-prefixed families incl. the mem gauges.
  std::ifstream prom_in(prom_path);
  ASSERT_TRUE(prom_in.good()) << "metrics not written: " << prom_path;
  std::string prom((std::istreambuf_iterator<char>(prom_in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(prom.find("# TYPE vc_detect_functions_total counter"), std::string::npos);
  EXPECT_NE(prom.find("vc_mem_tracked_bytes"), std::string::npos);
  EXPECT_NE(prom.find("_bucket{le="), std::string::npos);
}

TEST_F(CliTest, PerfReportWritesAnalyticsWithoutPerturbingFindings) {
  Write("sub/buggy.c", kBuggy);
  Write("clean.c", kClean);
  std::string perf_path = (dir_ / "obs" / "perf.json").string();

  RunResult plain = RunCliStdout("--format=csv --jobs=2 " + dir_.string());
  RunResult observed = RunCliStdout("--format=csv --jobs=2 --perf-report=" +
                                    perf_path + " " + dir_.string());
  EXPECT_EQ(plain.exit_code, observed.exit_code);
  EXPECT_EQ(plain.output, observed.output);

  std::ifstream in(perf_path);
  ASSERT_TRUE(in.good()) << "perf report not written: " << perf_path;
  std::string perf((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Stable field order from the first byte; vc_obs_lint perf checks the rest.
  EXPECT_EQ(perf.rfind("{\"schema_version\":1,\"wall_seconds\":", 0), 0u)
      << perf.substr(0, 120);
  for (const char* key :
       {"\"critical_path\":{", "\"folded\":[", "\"serial_fraction\":",
        "\"workers\":[", "\"utilization\":", "\"timeline\":[",
        "\"mean_utilization\":", "\"imbalance\":{", "\"steals\":{",
        "\"latency_ns_log2\":["}) {
    EXPECT_NE(perf.find(key), std::string::npos) << key;
  }
}

TEST_F(CliTest, DashboardRendersPerCheckerAndMemoryTrends) {
  std::string path = Write("buggy.c", kBuggy);
  std::string ledger = (dir_ / "ledger").string();
  // Three ledger runs (--ledger implies metrics, hence memory accounting).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(RunCli("analyze --ledger=" + ledger + " " + path).exit_code, 1);
  }
  std::string html_path = (dir_ / "dashboard.html").string();
  RunResult report = RunCli("report --ledger=" + ledger + " --html=" + html_path);
  EXPECT_EQ(report.exit_code, 0) << report.output;
  std::ifstream in(html_path);
  ASSERT_TRUE(in.good());
  std::string html((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(html.find("Per-checker trends"), std::string::npos);
  EXPECT_NE(html.find("unused-def findings"), std::string::npos);
  EXPECT_NE(html.find("precision % (findings/candidates)"), std::string::npos);
  EXPECT_NE(html.find("Memory (3 run(s) with accounting)"), std::string::npos);
  EXPECT_NE(html.find("tracked MB (exact)"), std::string::npos);
  EXPECT_NE(html.find("peak RSS MB (sampled)"), std::string::npos);
}

TEST_F(CliTest, DiffOnMissingLedgerExitsTwo) {
  RunResult result = RunCli("diff --ledger=" + (dir_ / "nope").string());
  EXPECT_EQ(result.exit_code, 2);
}

TEST_F(CliTest, TopLimitsTextOutput) {
  std::string code;
  for (int i = 0; i < 5; ++i) {
    code += "int g" + std::to_string(i) + "(int);\n";
    code += "int f" + std::to_string(i) + "(int x) {\n";
    code += "  int r" + std::to_string(i) + " = g" + std::to_string(i) + "(x);\n";
    code += "  r" + std::to_string(i) + " = x;\n";
    code += "  return r" + std::to_string(i) + ";\n}\n";
  }
  std::string path = Write("many.c", code);
  RunResult result = RunCli(path + " --top=2");
  EXPECT_NE(result.output.find("... 3 more"), std::string::npos);
}

// --- Fault isolation ----------------------------------------------------------

TEST_F(CliTest, FaultInjectRateOneDegradesGracefully) {
  Write("buggy.c", kBuggy);
  Write("clean.c", kClean);
  // Every parse faults: no findings survive, but the run completes and exits
  // 0 (no findings) in the default graceful mode.
  RunResult result = RunCli(dir_.string() + " --fault-inject 1:1.0");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("degraded run"), std::string::npos);
  EXPECT_NE(result.output.find("quarantined [parse]"), std::string::npos);
}

TEST_F(CliTest, StrictModeTurnsQuarantineIntoExitThree) {
  Write("buggy.c", kBuggy);
  RunResult result = RunCli(dir_.string() + " --strict --fault-inject 1:1.0");
  EXPECT_EQ(result.exit_code, 3) << result.output;
  // Without injected faults, --strict changes nothing.
  RunResult clean = RunCli(dir_.string() + " --strict");
  EXPECT_EQ(clean.exit_code, 1) << clean.output;
}

TEST_F(CliTest, FaultInjectJsonReportCarriesQuarantineBlock) {
  Write("buggy.c", kBuggy);
  RunResult result = RunCliStdout(dir_.string() + " --format=json --fault-inject 1:1.0");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("\"schema_version\":8"), std::string::npos);
  EXPECT_NE(result.output.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(result.output.find("\"quarantined\":[{"), std::string::npos);
  EXPECT_NE(result.output.find("\"stage\":\"parse\""), std::string::npos);
}

TEST_F(CliTest, CleanJsonReportHasEmptyQuarantineBlock) {
  Write("buggy.c", kBuggy);
  RunResult result = RunCliStdout(dir_.string() + " --format=json");
  EXPECT_NE(result.output.find("\"degraded\":false"), std::string::npos);
  EXPECT_NE(result.output.find("\"quarantined\":[]"), std::string::npos);
}

TEST_F(CliTest, BadFaultInjectSpecExitsTwo) {
  std::string path = Write("clean.c", kClean);
  RunResult result = RunCli(path + " --fault-inject not-a-spec");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("--fault-inject"), std::string::npos);
}

TEST_F(CliTest, FaultInjectOutputIdenticalAcrossJobs) {
  for (int i = 0; i < 6; ++i) {
    Write("file" + std::to_string(i) + ".c",
          "int g" + std::to_string(i) + "(int);\n"
          "int f" + std::to_string(i) + "(int x) {\n"
          "  int r = g" + std::to_string(i) + "(x);\n"
          "  r = x;\n"
          "  return r;\n}\n");
  }
  // CSV carries only findings (no timings or the jobs count, which
  // legitimately differ); the stderr quarantine lines cover the rest.
  std::string args = dir_.string() + " --format=csv --fault-inject 7:0.5";
  auto stderr_only = [&](const std::string& a) {
    return RunCommand(std::string(VALUECHECK_CLI_PATH) + " " + a + " 2>&1 1>/dev/null");
  };
  RunResult serial = RunCliStdout(args + " --jobs 1");
  RunResult parallel = RunCliStdout(args + " --jobs 8");
  EXPECT_EQ(serial.output, parallel.output);
  EXPECT_EQ(serial.exit_code, parallel.exit_code);
  RunResult serial_err = stderr_only(args + " --jobs 1");
  RunResult parallel_err = stderr_only(args + " --jobs 8");
  EXPECT_EQ(serial_err.output, parallel_err.output);
  EXPECT_NE(serial_err.output.find("quarantined ["), std::string::npos)
      << "seed 7 rate 0.5 quarantined nothing; the comparison is vacuous";
}

}  // namespace
}  // namespace vc

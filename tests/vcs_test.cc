// Version-control substrate tests: Myers diff, repository storage, blame
// replay, per-file logs, changed-line extraction.

#include <gtest/gtest.h>

#include "src/vcs/diff.h"
#include "src/vcs/repository.h"

namespace vc {
namespace {

// --- SplitLines -------------------------------------------------------------

TEST(Diff, SplitLines) {
  auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_TRUE(SplitLines("").empty());
  EXPECT_EQ(SplitLines("no-newline").size(), 1u);
}

// --- Myers diff ----------------------------------------------------------------

std::vector<std::string_view> Views(const std::vector<std::string>& lines) {
  return {lines.begin(), lines.end()};
}

TEST(Diff, IdenticalInputsAllKeep) {
  std::vector<std::string> a = {"x", "y", "z"};
  auto edits = DiffLines(Views(a), Views(a));
  ASSERT_EQ(edits.size(), 3u);
  for (const Edit& edit : edits) {
    EXPECT_EQ(edit.op, EditOp::kKeep);
  }
}

TEST(Diff, PureInsertion) {
  std::vector<std::string> a = {"x", "z"};
  std::vector<std::string> b = {"x", "y", "z"};
  auto edits = DiffLines(Views(a), Views(b));
  int inserts = 0;
  for (const Edit& edit : edits) {
    inserts += edit.op == EditOp::kInsert ? 1 : 0;
  }
  EXPECT_EQ(inserts, 1);
}

TEST(Diff, PureDeletion) {
  std::vector<std::string> a = {"x", "y", "z"};
  std::vector<std::string> b = {"x", "z"};
  auto edits = DiffLines(Views(a), Views(b));
  int deletes = 0;
  for (const Edit& edit : edits) {
    deletes += edit.op == EditOp::kDelete ? 1 : 0;
  }
  EXPECT_EQ(deletes, 1);
}

TEST(Diff, EmptySides) {
  std::vector<std::string> empty;
  std::vector<std::string> b = {"a", "b"};
  auto edits = DiffLines(Views(empty), Views(b));
  ASSERT_EQ(edits.size(), 2u);
  EXPECT_EQ(edits[0].op, EditOp::kInsert);
  edits = DiffLines(Views(b), Views(empty));
  ASSERT_EQ(edits.size(), 2u);
  EXPECT_EQ(edits[0].op, EditOp::kDelete);
  EXPECT_TRUE(DiffLines({}, {}).empty());
}

TEST(Diff, RoundTripReconstructsTarget) {
  std::vector<std::string> a = {"one", "two", "three", "four", "five"};
  std::vector<std::string> b = {"zero", "two", "three2", "four", "five", "six"};
  auto edits = DiffLines(Views(a), Views(b));
  EXPECT_EQ(ApplyEdits(Views(a), Views(b), edits), b);
}

TEST(Diff, ScriptIndicesAreOrderedAndComplete) {
  std::vector<std::string> a = {"k", "k", "a", "k"};
  std::vector<std::string> b = {"k", "b", "k", "k", "c"};
  auto edits = DiffLines(Views(a), Views(b));
  int next_old = 0;
  int next_new = 0;
  for (const Edit& edit : edits) {
    switch (edit.op) {
      case EditOp::kKeep:
        EXPECT_EQ(edit.old_index, next_old++);
        EXPECT_EQ(edit.new_index, next_new++);
        EXPECT_EQ(a[edit.old_index], b[edit.new_index]);
        break;
      case EditOp::kDelete:
        EXPECT_EQ(edit.old_index, next_old++);
        break;
      case EditOp::kInsert:
        EXPECT_EQ(edit.new_index, next_new++);
        break;
    }
  }
  EXPECT_EQ(next_old, static_cast<int>(a.size()));
  EXPECT_EQ(next_new, static_cast<int>(b.size()));
}

// --- Repository -------------------------------------------------------------------

TEST(Repository, AuthorsInterned) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  EXPECT_NE(alice, bob);
  EXPECT_EQ(repo.GetAuthor(alice).name, "alice");
  EXPECT_EQ(repo.FindAuthor("bob"), bob);
  EXPECT_EQ(repo.FindAuthor("carol"), kInvalidAuthor);
}

TEST(Repository, FileAtWalksHistory) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  CommitId c1 = repo.AddCommit(a, 100, "v1", {{"f.c", "one\n"}});
  CommitId c2 = repo.AddCommit(a, 200, "v2", {{"f.c", "two\n"}});
  EXPECT_EQ(repo.FileAt("f.c", c1).value(), "one\n");
  EXPECT_EQ(repo.FileAt("f.c", c2).value(), "two\n");
  EXPECT_EQ(repo.Head("f.c").value(), "two\n");
  EXPECT_FALSE(repo.FileAt("g.c", c2).has_value());
}

TEST(Repository, DeletionRemovesFromHead) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  repo.AddCommit(a, 100, "add", {{"f.c", "x\n"}});
  repo.AddCommit(a, 200, "rm", {}, {"f.c"});
  EXPECT_FALSE(repo.Head("f.c").has_value());
  EXPECT_TRUE(repo.ListFiles().empty());
}

TEST(Repository, LogTracksTouchesInOrder) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  CommitId c1 = repo.AddCommit(a, 1, "1", {{"f.c", "1\n"}});
  repo.AddCommit(a, 2, "other", {{"g.c", "x\n"}});
  CommitId c3 = repo.AddCommit(a, 3, "2", {{"f.c", "2\n"}});
  EXPECT_EQ(repo.LogOf("f.c"), (std::vector<CommitId>{c1, c3}));
}

TEST(Repository, BlameAttributesInsertedLines) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  CommitId c1 = repo.AddCommit(alice, 1, "create", {{"f.c", "a1\na2\na3\n"}});
  CommitId c2 = repo.AddCommit(bob, 2, "insert", {{"f.c", "a1\nb1\na2\na3\n"}});
  const auto& blame = repo.Blame("f.c");
  ASSERT_EQ(blame.size(), 4u);
  EXPECT_EQ(blame[0].author, alice);
  EXPECT_EQ(blame[0].commit, c1);
  EXPECT_EQ(blame[1].author, bob);
  EXPECT_EQ(blame[1].commit, c2);
  EXPECT_EQ(blame[2].author, alice);
  EXPECT_EQ(blame[3].author, alice);
}

TEST(Repository, BlameModifiedLineReattributed) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  repo.AddCommit(alice, 1, "create", {{"f.c", "keep\nchange-me\nkeep2\n"}});
  repo.AddCommit(bob, 2, "edit", {{"f.c", "keep\nchanged\nkeep2\n"}});
  const auto& blame = repo.Blame("f.c");
  EXPECT_EQ(blame[0].author, alice);
  EXPECT_EQ(blame[1].author, bob);
  EXPECT_EQ(blame[2].author, alice);
}

TEST(Repository, BlameAtHistoricalCommit) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  CommitId c1 = repo.AddCommit(alice, 1, "create", {{"f.c", "x\n"}});
  repo.AddCommit(bob, 2, "append", {{"f.c", "x\ny\n"}});
  auto historical = repo.BlameAt("f.c", c1);
  ASSERT_EQ(historical.size(), 1u);
  EXPECT_EQ(historical[0].author, alice);
  EXPECT_EQ(repo.Blame("f.c").size(), 2u);
}

TEST(Repository, BlameLineCountMatchesContent) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  std::string v1 = "l1\nl2\nl3\nl4\n";
  std::string v2 = "l1\nnew\nl3\nl4\nl5\n";  // l2 swapped, l5 appended
  repo.AddCommit(a, 1, "v1", {{"f.c", v1}});
  repo.AddCommit(b, 2, "v2", {{"f.c", v2}});
  EXPECT_EQ(repo.Blame("f.c").size(), SplitLines(v2).size());
}

TEST(Repository, BlameCacheInvalidatedByCommit) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  repo.AddCommit(a, 1, "v1", {{"f.c", "x\n"}});
  EXPECT_EQ(repo.Blame("f.c").size(), 1u);
  repo.AddCommit(b, 2, "v2", {{"f.c", "x\ny\n"}});
  ASSERT_EQ(repo.Blame("f.c").size(), 2u);
  EXPECT_EQ(repo.Blame("f.c")[1].author, b);
}

TEST(Repository, RecreatedFileOwnedByRecreator) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  repo.AddCommit(a, 1, "create", {{"f.c", "old\n"}});
  repo.AddCommit(a, 2, "delete", {}, {"f.c"});
  repo.AddCommit(b, 3, "recreate", {{"f.c", "old\n"}});
  const auto& blame = repo.Blame("f.c");
  ASSERT_EQ(blame.size(), 1u);
  EXPECT_EQ(blame[0].author, b);
}

TEST(Repository, ChangedLinesForInsertions) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  repo.AddCommit(a, 1, "v1", {{"f.c", "a\nb\nc\n"}});
  CommitId c2 = repo.AddCommit(a, 2, "v2", {{"f.c", "a\nX\nb\nc\nY\n"}});
  EXPECT_EQ(repo.ChangedLines("f.c", c2), (std::vector<int>{2, 5}));
}

TEST(Repository, ChangedLinesForNewFile) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  CommitId c1 = repo.AddCommit(a, 1, "new", {{"f.c", "a\nb\n"}});
  EXPECT_EQ(repo.ChangedLines("f.c", c1), (std::vector<int>{1, 2}));
  EXPECT_TRUE(repo.ChangedLines("untouched.c", c1).empty());
}

}  // namespace
}  // namespace vc

// Fingerprint stability: the content-based finding identity must survive the
// edits that shift line numbers or reorder inputs without touching the finding
// itself. These are the invariants the run ledger's new/fixed classification
// rests on — if any of them breaks, every unrelated edit shows up in
// `valuecheck diff` as one "fixed" plus one "new" finding.

#include "src/core/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/core/analysis.h"

namespace vc {
namespace {

// Analyze in-memory sources with the same fallback the CLI uses when no
// history is given: all scopes, unranked.
std::vector<UnusedDefCandidate> Findings(
    const std::vector<std::pair<std::string, std::string>>& files) {
  AnalysisOptions options;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  return Analysis(options).RunOnSources(files).findings;
}

const UnusedDefCandidate* FindBySlot(const std::vector<UnusedDefCandidate>& findings,
                                     const std::string& slot) {
  for (const UnusedDefCandidate& cand : findings) {
    if (cand.slot_name == slot) {
      return &cand;
    }
  }
  return nullptr;
}

constexpr const char* kBuggy =
    "int get_status(int entry) {\n"
    "  return entry + 1;\n"
    "}\n"
    "int handle(int entry, int mode) {\n"
    "  int ret = get_status(entry);\n"
    "  ret = mode * 2;\n"
    "  return ret;\n"
    "}\n";

bool IsHex16(const std::string& s) {
  return s.size() == 16 &&
         std::all_of(s.begin(), s.end(), [](char c) {
           return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
         });
}

TEST(Fingerprint, HashIsSixteenLowercaseHexDigits) {
  EXPECT_TRUE(IsHex16(FingerprintHash("some key")));
  EXPECT_NE(FingerprintHash("a"), FingerprintHash("b"));
  // FNV-1a is deterministic: same key, same hash, across runs and platforms.
  EXPECT_EQ(FingerprintHash("x"), FingerprintHash("x"));
}

TEST(Fingerprint, EveryFindingGetsAWellFormedFingerprint) {
  std::vector<UnusedDefCandidate> findings = Findings({{"a.c", kBuggy}});
  ASSERT_FALSE(findings.empty());
  for (const UnusedDefCandidate& cand : findings) {
    EXPECT_TRUE(IsHex16(cand.fingerprint)) << cand.fingerprint;
  }
}

TEST(Fingerprint, KeyCarriesNoLineNumbers) {
  std::vector<UnusedDefCandidate> findings = Findings({{"a.c", kBuggy}});
  ASSERT_FALSE(findings.empty());
  const UnusedDefCandidate& cand = findings.front();
  ASSERT_GT(cand.def_loc.line, 0);
  std::string key = FingerprintKey(cand);
  EXPECT_EQ(key.find(std::to_string(cand.def_loc.line)), std::string::npos)
      << "line number leaked into key: " << key;
}

TEST(Fingerprint, StableUnderUnrelatedLinesInsertedAbove) {
  std::vector<UnusedDefCandidate> base = Findings({{"a.c", kBuggy}});
  // Push the finding 5 lines down with an unrelated helper above it.
  std::string shifted =
      "int helper_a(int x) {\n"
      "  return x * 3;\n"
      "}\n"
      "int helper_b(int x) {\n"
      "  return helper_a(x) - 1;\n"
      "}\n" +
      std::string(kBuggy);
  std::vector<UnusedDefCandidate> moved = Findings({{"a.c", shifted}});

  const UnusedDefCandidate* before = FindBySlot(base, "ret");
  const UnusedDefCandidate* after = FindBySlot(moved, "ret");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  ASSERT_NE(before->def_loc.line, after->def_loc.line) << "edit did not shift lines";
  EXPECT_EQ(before->fingerprint, after->fingerprint);
}

TEST(Fingerprint, StableUnderUnrelatedVariableRename) {
  std::string renamed =
      "int get_status(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int handle(int entry, int selected_mode) {\n"  // mode -> selected_mode
      "  int ret = get_status(entry);\n"
      "  ret = selected_mode * 2;\n"
      "  return ret;\n"
      "}\n";
  std::vector<UnusedDefCandidate> base = Findings({{"a.c", kBuggy}});
  std::vector<UnusedDefCandidate> edited = Findings({{"a.c", renamed}});
  const UnusedDefCandidate* before = FindBySlot(base, "ret");
  const UnusedDefCandidate* after = FindBySlot(edited, "ret");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(before->fingerprint, after->fingerprint);
}

TEST(Fingerprint, StableUnderInputFileReordering) {
  std::string other =
      "int probe(int x) {\n"
      "  return x + 7;\n"
      "}\n"
      "int drive(int x, int y) {\n"
      "  int got = probe(x);\n"
      "  got = y;\n"
      "  return got;\n"
      "}\n";
  std::vector<UnusedDefCandidate> ab = Findings({{"a.c", kBuggy}, {"b.c", other}});
  std::vector<UnusedDefCandidate> ba = Findings({{"b.c", other}, {"a.c", kBuggy}});

  std::set<std::string> prints_ab;
  std::set<std::string> prints_ba;
  for (const UnusedDefCandidate& cand : ab) {
    prints_ab.insert(cand.fingerprint);
  }
  for (const UnusedDefCandidate& cand : ba) {
    prints_ba.insert(cand.fingerprint);
  }
  ASSERT_GE(prints_ab.size(), 2u);
  EXPECT_EQ(prints_ab, prints_ba);
}

TEST(Fingerprint, RenamingTheVariableItselfChangesIdentity) {
  // Control: the fingerprint is content-based, so renaming the *finding's own*
  // variable is a different finding.
  std::string renamed =
      "int get_status(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int handle(int entry, int mode) {\n"
      "  int status = get_status(entry);\n"
      "  status = mode * 2;\n"
      "  return status;\n"
      "}\n";
  std::vector<UnusedDefCandidate> base = Findings({{"a.c", kBuggy}});
  std::vector<UnusedDefCandidate> edited = Findings({{"a.c", renamed}});
  const UnusedDefCandidate* before = FindBySlot(base, "ret");
  const UnusedDefCandidate* after = FindBySlot(edited, "status");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before->fingerprint, after->fingerprint);
}

// --- Duplicate disambiguation: exercised directly on candidates so the
// occurrence-ordinal logic is pinned down independent of detector shapes. ---

UnusedDefCandidate MakeCandidate(int line) {
  UnusedDefCandidate cand;
  cand.function = "handle";
  cand.slot_name = "ret";
  cand.file = "a.c";
  cand.def_loc.file = 0;
  cand.def_loc.line = line;
  cand.def_loc.column = 3;
  cand.overwritten = true;
  cand.overwriter_locs.push_back({0, line + 1, 3});
  cand.kind = CandidateKind::kOverwrittenDef;
  return cand;
}

TEST(Fingerprint, DuplicatesInSameFunctionGetDistinctFingerprints) {
  std::vector<UnusedDefCandidate> cands = {MakeCandidate(5), MakeCandidate(9)};
  ASSERT_EQ(FingerprintKey(cands[0]), FingerprintKey(cands[1]))
      << "fixture should produce identical keys";
  AssignFingerprints(cands);
  EXPECT_TRUE(IsHex16(cands[0].fingerprint));
  EXPECT_TRUE(IsHex16(cands[1].fingerprint));
  EXPECT_NE(cands[0].fingerprint, cands[1].fingerprint);
}

TEST(Fingerprint, OccurrenceOrdinalFollowsSourceOrderNotListOrder) {
  std::vector<UnusedDefCandidate> forward = {MakeCandidate(5), MakeCandidate(9)};
  std::vector<UnusedDefCandidate> reversed = {MakeCandidate(9), MakeCandidate(5)};
  AssignFingerprints(forward);
  AssignFingerprints(reversed);
  // Same source positions -> same fingerprints, regardless of list order.
  EXPECT_EQ(forward[0].fingerprint, reversed[1].fingerprint);
  EXPECT_EQ(forward[1].fingerprint, reversed[0].fingerprint);
}

TEST(Fingerprint, AppendingADuplicateBelowKeepsTheFirstFingerprint) {
  // A singleton is hashed as occurrence #1, so pasting a duplicate *below* it
  // later must not rename the existing finding.
  std::vector<UnusedDefCandidate> alone = {MakeCandidate(5)};
  AssignFingerprints(alone);
  std::vector<UnusedDefCandidate> with_dup = {MakeCandidate(5), MakeCandidate(20)};
  AssignFingerprints(with_dup);
  EXPECT_EQ(alone[0].fingerprint, with_dup[0].fingerprint);
  EXPECT_NE(with_dup[0].fingerprint, with_dup[1].fingerprint);
}

TEST(Fingerprint, DuplicateOrdinalSurvivesLineShifts) {
  // Both occurrences move down; relative order is what matters.
  std::vector<UnusedDefCandidate> before = {MakeCandidate(5), MakeCandidate(9)};
  std::vector<UnusedDefCandidate> after = {MakeCandidate(12), MakeCandidate(31)};
  AssignFingerprints(before);
  AssignFingerprints(after);
  EXPECT_EQ(before[0].fingerprint, after[0].fingerprint);
  EXPECT_EQ(before[1].fingerprint, after[1].fingerprint);
}

}  // namespace
}  // namespace vc

// Edge-case tests for the JSON reader: adversarial nesting, \uXXXX escapes
// including surrogate pairs, numeric extremes, and truncated documents. The
// reader feeds the run ledger and the fuzzer's round-trip oracle, so its
// failure mode must always be a clean error, never a crash or silent
// mis-parse.

#include <cstdint>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "src/support/json_reader.h"

namespace vc {
namespace {

std::optional<JsonValue> Parse(const std::string& text, std::string* error = nullptr) {
  return ParseJson(text, error);
}

TEST(JsonReader, ParsesBasicDocument) {
  auto value = Parse(R"({"name":"x","n":3,"ok":true,"items":[1,2,3],"none":null})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->GetString("name"), "x");
  EXPECT_EQ(value->GetInt("n"), 3);
  EXPECT_TRUE(value->GetBool("ok"));
  EXPECT_EQ(value->Get("items").Size(), 3u);
  EXPECT_TRUE(value->Get("none").IsNull());
}

TEST(JsonReader, DeepNestingWithinLimitParses) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += '[';
  }
  text += "1";
  for (int i = 0; i < 200; ++i) {
    text += ']';
  }
  EXPECT_TRUE(Parse(text).has_value());
}

TEST(JsonReader, PathologicalNestingRejectedNotCrashed) {
  // 100k unclosed brackets used to recurse once per bracket; now the depth
  // cap rejects the document long before the stack is at risk.
  std::string text(100000, '[');
  std::string error;
  EXPECT_FALSE(Parse(text, &error).has_value());
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  std::string mixed;
  for (int i = 0; i < 5000; ++i) {
    mixed += R"({"a":[)";
  }
  EXPECT_FALSE(Parse(mixed).has_value());
}

TEST(JsonReader, BasicUnicodeEscapes) {
  // U+0041 'A' (1 byte), U+00E9 'é' (2 bytes), U+4E2D '中' (3 bytes).
  auto value = Parse(R"(["\u0041\u00e9\u4e2d"])");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->At(0).AsString(), "A\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonReader, SurrogatePairBecomesOneCodePoint) {
  // U+1F600 as the pair D83D DE00 must decode to 4-byte UTF-8, not two
  // 3-byte CESU-8 surrogate encodings.
  auto value = Parse(R"(["\ud83d\ude00"])");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->At(0).AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonReader, LoneSurrogatesRejected) {
  std::string error;
  EXPECT_FALSE(Parse(R"(["\ud83d"])", &error).has_value());
  EXPECT_NE(error.find("unpaired surrogate"), std::string::npos);
  EXPECT_FALSE(Parse(R"(["\ude00"])").has_value());       // low first
  EXPECT_FALSE(Parse(R"(["\ud83dA"])").has_value()); // high + non-low
  EXPECT_FALSE(Parse(R"(["\ud83dxx"])").has_value());     // high + raw text
}

TEST(JsonReader, MalformedEscapesRejected) {
  EXPECT_FALSE(Parse(R"(["\u12"])").has_value());   // truncated quad
  EXPECT_FALSE(Parse(R"(["\u12zz"])").has_value()); // bad hex
  EXPECT_FALSE(Parse(R"(["\q"])").has_value());     // unknown escape
}

TEST(JsonReader, IntegerExtremesRoundTrip) {
  auto value = Parse(R"([9223372036854775807,-9223372036854775808,0,-0])");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->At(0).AsInt(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(value->At(1).AsInt(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(value->At(2).AsInt(), 0);
  EXPECT_EQ(value->At(3).AsInt(), 0);
}

TEST(JsonReader, IntegerOverflowFallsBackToDouble) {
  // One past int64 max: must not wrap to a bogus negative integer; AsInt
  // saturates and AsDouble keeps the magnitude.
  auto value = Parse("[9223372036854775808,-99999999999999999999]");
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(value->At(0).AsDouble(), 9223372036854775808.0);
  EXPECT_EQ(value->At(0).AsInt(), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(value->At(1).AsInt(), std::numeric_limits<int64_t>::min());
}

TEST(JsonReader, DoublesAndExponents) {
  auto value = Parse("[0.5,-2.25,1e3,1.5E-2,1e+10]");
  ASSERT_TRUE(value.has_value());
  EXPECT_DOUBLE_EQ(value->At(0).AsDouble(), 0.5);
  EXPECT_DOUBLE_EQ(value->At(1).AsDouble(), -2.25);
  EXPECT_DOUBLE_EQ(value->At(2).AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(value->At(3).AsDouble(), 0.015);
  EXPECT_DOUBLE_EQ(value->At(4).AsDouble(), 1e10);
}

TEST(JsonReader, MalformedNumbersRejected) {
  EXPECT_FALSE(Parse("[12.]").has_value());   // digit required after '.'
  EXPECT_FALSE(Parse("[.5]").has_value());    // digit required before '.'
  EXPECT_FALSE(Parse("[1e]").has_value());    // empty exponent
  EXPECT_FALSE(Parse("[1e+]").has_value());   // sign-only exponent
  EXPECT_FALSE(Parse("[+1]").has_value());    // leading '+'
  EXPECT_FALSE(Parse("[--1]").has_value());
  EXPECT_FALSE(Parse("[01]").has_value());    // leading zero
  EXPECT_FALSE(Parse("[-]").has_value());
  EXPECT_FALSE(Parse("[1..2]").has_value());
}

TEST(JsonReader, TruncatedDocumentsRejected) {
  const char* cases[] = {
      "{",       "[",           "{\"a\"",    "{\"a\":",     "{\"a\":1",
      "[1,",     "\"abc",       "tru",       "nul",         "{\"a\":1,",
      "[1,2",    "\"\\",        "",          "   ",
  };
  for (const char* text : cases) {
    std::string error;
    EXPECT_FALSE(Parse(text, &error).has_value()) << "'" << text << "'";
    EXPECT_FALSE(error.empty()) << "'" << text << "'";
  }
}

TEST(JsonReader, TrailingContentRejected) {
  EXPECT_FALSE(Parse("{} extra").has_value());
  EXPECT_FALSE(Parse("1 2").has_value());
  EXPECT_TRUE(Parse("{}  \n ").has_value());  // trailing whitespace is fine
}

TEST(JsonReader, ErrorCarriesOffset) {
  std::string error;
  EXPECT_FALSE(Parse("[1,x]", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos);
}

}  // namespace
}  // namespace vc

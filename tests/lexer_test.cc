// Tests for the Mini-C tokenizer and the conditional preprocessor.

#include <gtest/gtest.h>

#include "src/lexer/lexer.h"
#include "src/lexer/preprocessor.h"
#include "src/support/source_manager.h"

namespace vc {
namespace {

std::vector<Token> LexAll(const std::string& code, const Config& config = Config()) {
  static SourceManager sm;  // tokens keep no pointers into it; reuse is fine
  FileId file = sm.AddFile("test.c", code);
  PreprocessResult pp = Preprocess(code, config);
  DiagnosticEngine diags;
  std::vector<Token> tokens = Lex(sm, file, pp, diags);
  EXPECT_FALSE(diags.HasErrors()) << diags.Render(sm);
  return tokens;
}

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> kinds;
  for (const Token& tok : tokens) {
    kinds.push_back(tok.kind);
  }
  return kinds;
}

// --- Lexer -------------------------------------------------------------------

TEST(Lexer, KeywordsAndIdentifiers) {
  auto tokens = LexAll("int foo; struct Bar b;");
  auto kinds = Kinds(tokens);
  std::vector<TokenKind> expected = {
      TokenKind::kKwInt,   TokenKind::kIdentifier, TokenKind::kSemi,
      TokenKind::kKwStruct, TokenKind::kIdentifier, TokenKind::kIdentifier,
      TokenKind::kSemi,    TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[4].text, "Bar");
}

TEST(Lexer, IntegerLiterals) {
  auto tokens = LexAll("42 0x1f 0 100UL");
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, 31);
  EXPECT_EQ(tokens[2].int_value, 0);
  EXPECT_EQ(tokens[3].int_value, 100);
}

TEST(Lexer, CharLiterals) {
  auto tokens = LexAll("'a' '\\n' '\\0'");
  EXPECT_EQ(tokens[0].int_value, 'a');
  EXPECT_EQ(tokens[1].int_value, '\n');
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(Lexer, StringLiteral) {
  auto tokens = LexAll("\"hello world\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello world");
}

TEST(Lexer, TwoCharOperators) {
  auto tokens = LexAll("-> ++ -- += -= == != <= >= && || << >>");
  auto kinds = Kinds(tokens);
  std::vector<TokenKind> expected = {
      TokenKind::kArrow,     TokenKind::kPlusPlus, TokenKind::kMinusMinus,
      TokenKind::kPlusAssign, TokenKind::kMinusAssign, TokenKind::kEq,
      TokenKind::kNe,        TokenKind::kLe,       TokenKind::kGe,
      TokenKind::kAmpAmp,    TokenKind::kPipePipe, TokenKind::kShl,
      TokenKind::kShr,       TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, LineCommentsSkipped) {
  auto tokens = LexAll("int x; // trailing comment with unused keyword\nint y;");
  EXPECT_EQ(Kinds(tokens).size(), 7u);  // int x ; int y ; eof
}

TEST(Lexer, BlockCommentsSpanLines) {
  auto tokens = LexAll("int a; /* multi\nline\ncomment */ int b;");
  auto kinds = Kinds(tokens);
  std::vector<TokenKind> expected = {TokenKind::kKwInt, TokenKind::kIdentifier,
                                     TokenKind::kSemi,  TokenKind::kKwInt,
                                     TokenKind::kIdentifier, TokenKind::kSemi, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, AttributeDoubleBracket) {
  auto tokens = LexAll("int x [[maybe_unused]];");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAttribute);
  EXPECT_EQ(tokens[2].text, "[[maybe_unused]]");
}

TEST(Lexer, AttributeGnu) {
  auto tokens = LexAll("int x __attribute__((unused));");
  EXPECT_EQ(tokens[2].kind, TokenKind::kAttribute);
  EXPECT_EQ(tokens[2].text, "__attribute__((unused))");
}

TEST(Lexer, LocationsAreOneBased) {
  auto tokens = LexAll("int x;\n  foo();");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[3].text, "foo");
  EXPECT_EQ(tokens[3].loc.line, 2);
  EXPECT_EQ(tokens[3].loc.column, 3);
}

TEST(Lexer, ErrorOnUnterminatedString) {
  SourceManager sm;
  FileId file = sm.AddFile("bad.c", "\"oops");
  PreprocessResult pp = Preprocess("\"oops", Config());
  DiagnosticEngine diags;
  Lex(sm, file, pp, diags);
  EXPECT_TRUE(diags.HasErrors());
}

TEST(Lexer, TokenKindNamesCoverOperators) {
  EXPECT_STREQ(TokenKindName(TokenKind::kArrow), "->");
  EXPECT_STREQ(TokenKindName(TokenKind::kKwReturn), "return");
  EXPECT_STREQ(TokenKindName(TokenKind::kIdentifier), "identifier");
}

// --- Preprocessor ---------------------------------------------------------------

TEST(Preprocessor, UndefinedIfDisablesRegion) {
  std::string code = "a\n#if FOO\nb\n#endif\nc\n";
  PreprocessResult pp = Preprocess(code, Config());
  EXPECT_TRUE(pp.LineActive(1));
  EXPECT_FALSE(pp.LineActive(2));  // directive
  EXPECT_FALSE(pp.LineActive(3));  // disabled
  EXPECT_FALSE(pp.LineActive(4));  // directive
  EXPECT_TRUE(pp.LineActive(5));
  ASSERT_EQ(pp.regions.size(), 1u);
  EXPECT_EQ(pp.regions[0].begin_line, 2);
  EXPECT_EQ(pp.regions[0].end_line, 4);
  EXPECT_EQ(pp.regions[0].condition, "FOO");
  EXPECT_FALSE(pp.regions[0].taken);
}

TEST(Preprocessor, DefinedMacroEnablesRegion) {
  Config config;
  config.Define("FOO");
  PreprocessResult pp = Preprocess("#if FOO\nx\n#endif\n", config);
  EXPECT_TRUE(pp.LineActive(2));
  EXPECT_TRUE(pp.regions[0].taken);
}

TEST(Preprocessor, MacroDefinedZeroIsFalseUnderIf) {
  Config config;
  config.Define("FOO", 0);
  PreprocessResult pp = Preprocess("#if FOO\nx\n#endif\n", config);
  EXPECT_FALSE(pp.LineActive(2));
  // ...but #ifdef sees it as defined.
  pp = Preprocess("#ifdef FOO\nx\n#endif\n", config);
  EXPECT_TRUE(pp.LineActive(2));
}

TEST(Preprocessor, IfndefAndElse) {
  PreprocessResult pp = Preprocess("#ifndef BAR\na\n#else\nb\n#endif\n", Config());
  EXPECT_TRUE(pp.LineActive(2));
  EXPECT_FALSE(pp.LineActive(4));
  Config config;
  config.Define("BAR");
  pp = Preprocess("#ifndef BAR\na\n#else\nb\n#endif\n", config);
  EXPECT_FALSE(pp.LineActive(2));
  EXPECT_TRUE(pp.LineActive(4));
}

TEST(Preprocessor, NestedConditionals) {
  Config config;
  config.Define("OUTER");
  std::string code =
      "#if OUTER\n"   // 1
      "a\n"           // 2 active
      "#if INNER\n"   // 3
      "b\n"           // 4 inactive
      "#endif\n"      // 5
      "c\n"           // 6 active
      "#endif\n"      // 7
      "d\n";          // 8 active
  PreprocessResult pp = Preprocess(code, config);
  EXPECT_TRUE(pp.LineActive(2));
  EXPECT_FALSE(pp.LineActive(4));
  EXPECT_TRUE(pp.LineActive(6));
  EXPECT_TRUE(pp.LineActive(8));
  EXPECT_EQ(pp.regions.size(), 2u);  // inner closes first
  EXPECT_EQ(pp.regions[0].begin_line, 3);
  EXPECT_EQ(pp.regions[0].end_line, 5);
  EXPECT_EQ(pp.regions[1].begin_line, 1);
  EXPECT_EQ(pp.regions[1].end_line, 7);
}

TEST(Preprocessor, DisabledOuterSuppressesInnerEvenIfTrue) {
  Config config;
  config.Define("INNER");
  std::string code = "#if OUTER\n#if INNER\nx\n#endif\n#endif\n";
  PreprocessResult pp = Preprocess(code, config);
  EXPECT_FALSE(pp.LineActive(3));
}

TEST(Preprocessor, InlineDefineAffectsLaterConditionals) {
  std::string code = "#define FEATURE 1\n#if FEATURE\nx\n#endif\n";
  PreprocessResult pp = Preprocess(code, Config());
  EXPECT_TRUE(pp.LineActive(3));
}

TEST(Preprocessor, DefinedFunctionForm) {
  Config config;
  config.Define("X", 0);
  PreprocessResult pp = Preprocess("#if defined(X)\na\n#endif\n", config);
  EXPECT_TRUE(pp.LineActive(2));
  pp = Preprocess("#if !defined(X)\na\n#endif\n", config);
  EXPECT_FALSE(pp.LineActive(2));
}

TEST(Preprocessor, LiteralConditions) {
  PreprocessResult pp = Preprocess("#if 0\na\n#endif\n#if 1\nb\n#endif\n", Config());
  EXPECT_FALSE(pp.LineActive(2));
  EXPECT_TRUE(pp.LineActive(5));
}

TEST(Preprocessor, ErrorsOnStrayEndifAndUnterminated) {
  PreprocessResult pp = Preprocess("#endif\n", Config());
  EXPECT_EQ(pp.errors.size(), 1u);
  pp = Preprocess("#if A\nx\n", Config());
  EXPECT_EQ(pp.errors.size(), 1u);
  // Unterminated blocks still record a region to the end of the file.
  ASSERT_EQ(pp.regions.size(), 1u);
  EXPECT_EQ(pp.regions[0].end_line, 2);
}

TEST(Preprocessor, IncludeIsInert) {
  PreprocessResult pp = Preprocess("#include \"other.h\"\nint x;\n", Config());
  EXPECT_TRUE(pp.errors.empty());
  EXPECT_FALSE(pp.LineActive(1));
  EXPECT_TRUE(pp.LineActive(2));
}

}  // namespace
}  // namespace vc

// End-to-end tests of the ValueCheck pipeline on hand-written projects with
// synthesized commit histories, covering the paper's motivating examples:
// Fig. 1a (overwritten definition), Fig. 1b (overwritten parameter),
// Fig. 8 (overwritten return value missed by other tools).

#include "src/core/analysis.h"

#include <gtest/gtest.h>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/vcs/repository.h"

namespace vc {
namespace {

// Builds a two-author repository in which `alice_code` is committed first and
// then `bob_lines` get inserted (by matching the final content). The final
// content must contain every line of `alice_code` unchanged so blame
// attributes precisely.
class TwoAuthorRepo {
 public:
  TwoAuthorRepo() {
    alice_ = repo_.AddAuthor("alice");
    bob_ = repo_.AddAuthor("bob");
  }

  void Commit(AuthorId who, const std::string& path, const std::string& content,
              const std::string& message = "change") {
    repo_.AddCommit(who, next_time_++, message, {{path, content}});
  }

  Repository repo_;
  AuthorId alice_;
  AuthorId bob_;
  int64_t next_time_ = 1000;
};

TEST(CorePipeline, Fig8OverwrittenRetvalCrossScope) {
  TwoAuthorRepo two;
  // Alice writes the original function where ret is checked.
  std::string v1 =
      "int get_permset(int en) {\n"
      "  return en + 1;\n"
      "}\n"
      "int calc_mask(int m) {\n"
      "  return m * 2;\n"
      "}\n"
      "int fsal_acl_posix(int en, int m) {\n"
      "  int ret = get_permset(en);\n"
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return 1;\n"
      "}\n";
  // Bob inserts the calc_mask call, making Alice's definition unused.
  std::string v2 =
      "int get_permset(int en) {\n"
      "  return en + 1;\n"
      "}\n"
      "int calc_mask(int m) {\n"
      "  return m * 2;\n"
      "}\n"
      "int fsal_acl_posix(int en, int m) {\n"
      "  int ret = get_permset(en);\n"
      "  ret = calc_mask(m);\n"
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return 1;\n"
      "}\n";
  two.Commit(two.alice_, "acl.c", v1, "add posix acl support");
  two.Commit(two.bob_, "acl.c", v2, "fix mask calculation");

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  ASSERT_EQ(report.findings.size(), 1u);
  const UnusedDefCandidate& cand = report.findings[0];
  EXPECT_EQ(cand.function, "fsal_acl_posix");
  EXPECT_EQ(cand.slot_name, "ret");
  EXPECT_EQ(cand.def_loc.line, 8);
  EXPECT_TRUE(cand.cross_scope);
  EXPECT_EQ(cand.kind, CandidateKind::kOverwrittenDef);
  EXPECT_EQ(cand.def_author, two.alice_);
  EXPECT_EQ(cand.responsible_author, two.bob_);
}

TEST(CorePipeline, SameAuthorOverwriteIsNotCrossScope) {
  TwoAuthorRepo two;
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  ret = helper(x + 1);\n"
      "  return ret;\n"
      "}\n";
  two.Commit(two.alice_, "work.c", v1);

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  EXPECT_TRUE(report.findings.empty());
  // The candidate exists but is same-author.
  ASSERT_EQ(report.non_cross_scope, 1);
}

TEST(CorePipeline, Fig1bOverwrittenParameterCrossScope) {
  TwoAuthorRepo two;
  // Bob implements logfile_mod_open overwriting bufsz; Alice's call site
  // passes a configured size that therefore has no effect.
  std::string v1 =
      "int logfile_mod_open(int path, int bufsz) {\n"
      "  bufsz = 1400;\n"
      "  if (bufsz > path) {\n"
      "    return bufsz;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  std::string v2 =
      "int logfile_mod_open(int path, int bufsz) {\n"
      "  bufsz = 1400;\n"
      "  if (bufsz > path) {\n"
      "    return bufsz;\n"
      "  }\n"
      "  return 0;\n"
      "}\n"
      "int open_headers_log(int p) {\n"
      "  int h = logfile_mod_open(p, 0);\n"
      "  return h;\n"
      "}\n";
  two.Commit(two.bob_, "logfile.c", v1, "add logfile module");
  two.Commit(two.alice_, "logfile.c", v2, "open headers log");

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  ASSERT_EQ(report.findings.size(), 1u);
  const UnusedDefCandidate& cand = report.findings[0];
  EXPECT_EQ(cand.kind, CandidateKind::kOverwrittenParam);
  EXPECT_EQ(cand.slot_name, "bufsz");
  EXPECT_TRUE(cand.is_param);
  EXPECT_TRUE(cand.overwritten);
  EXPECT_EQ(cand.responsible_author, two.bob_);
}

TEST(CorePipeline, LibraryRetvalIgnoredIsCrossScope) {
  TwoAuthorRepo two;
  // write() is not defined in the project: library call, implicitly
  // cross-author. Single call site, so peer pruning cannot fire.
  std::string v1 =
      "int flush(int fd, int n) {\n"
      "  write(fd, n);\n"
      "  return 0;\n"
      "}\n";
  two.Commit(two.alice_, "io.c", v1);

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].kind, CandidateKind::kUnusedRetVal);
  EXPECT_TRUE(report.findings[0].is_synthetic);
}

TEST(CorePipeline, CursorPatternIsPruned) {
  TwoAuthorRepo two;
  std::string v1 =
      "void dashes_to_underscores(char *output, int c) {\n"
      "  char *o = output;\n"
      "  if (c == 45) {\n"
      "    *o = 95;\n"
      "    o = o + 1;\n"
      "  }\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "}\n";
  two.Commit(two.alice_, "str.c", v1, "add converter");
  std::string v2 = v1 + "int use_it(char *buf) {\n  dashes_to_underscores(buf, 45);\n  return 0;\n}\n";
  two.Commit(two.bob_, "str.c", v2, "use converter");

  // The trailing increment is not on an authorship boundary, so run without
  // the cross-scope filter to exercise the pruning stage on it.
  AnalysisOptions options;
  options.cross_scope_only = false;
  AnalysisReport report = Analysis(options).RunOnRepository(two.repo_);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GE(report.prune_stats.cursor, 1);
}

TEST(CorePipeline, UnusedHintIsPruned) {
  TwoAuthorRepo two;
  std::string v1 =
      "int do_flush_info(int force [[maybe_unused]], int x) {\n"
      "  return x;\n"
      "}\n";
  std::string v2 = v1 +
      "int caller(int x) {\n"
      "  return do_flush_info(1, x);\n"
      "}\n";
  two.Commit(two.alice_, "flush.c", v1);
  two.Commit(two.bob_, "flush.c", v2);

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.prune_stats.unused_hints, 1);
}

TEST(CorePipeline, ConfigGuardedUseIsPruned) {
  TwoAuthorRepo two;
  // get_addr is a library function, so the unused `host` definition is
  // cross-scope (scenario 1) and reaches the pruning stage.
  std::string v1 =
      "int netdbLookupHost(int h);\n"
      "int probe(int x) {\n"
      "  int host = get_addr(x);\n"
      "  int n = 0;\n"
      "#if USE_ICMP\n"
      "  n = netdbLookupHost(host);\n"
      "#endif\n"
      "  return n;\n"
      "}\n";
  two.Commit(two.alice_, "net.c", v1);
  std::string v2 = v1 + "int c1(int x) {\n  return probe(x);\n}\n";
  two.Commit(two.bob_, "net.c", v2);

  // USE_ICMP is not defined: the use of `host` is not compiled, but the
  // configuration-dependency pruning must find it in the raw region text.
  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  for (const UnusedDefCandidate& cand : report.findings) {
    EXPECT_NE(cand.slot_name, "host") << "config-guarded use must be pruned";
  }
  EXPECT_GE(report.prune_stats.config_dependency, 1);
}

TEST(CorePipeline, PeerDefinitionPruningSuppressesPrintfLikeCalls) {
  TwoAuthorRepo two;
  // 12 call sites of log_msg, all ignoring the result: peer pruning drops
  // every one of them (occurrences > 10, unused fraction > 0.5).
  std::string code = "int log_msg(int level);\n";
  for (int i = 0; i < 12; ++i) {
    code += "int op" + std::to_string(i) + "(int x) {\n";
    code += "  log_msg(x);\n";
    code += "  return x + " + std::to_string(i) + ";\n";
    code += "}\n";
  }
  two.Commit(two.alice_, "ops.c", code);

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.prune_stats.peer_definition, 12);
}

TEST(CorePipeline, FieldSensitiveDetection) {
  TwoAuthorRepo two;
  std::string v1 =
      "struct ctx { int host; int port; };\n"
      "int assign_host(int h);\n"
      "int setup(int h, int p) {\n"
      "  struct ctx sctx;\n"
      "  sctx.host = h;\n"
      "  sctx.port = p;\n"
      "  return assign_host(sctx.port);\n"
      "}\n";
  two.Commit(two.alice_, "ctx.c", v1, "initial");
  // Bob overwrites the host field without the first value ever being read.
  std::string v2 =
      "struct ctx { int host; int port; };\n"
      "int assign_host(int h);\n"
      "int setup(int h, int p) {\n"
      "  struct ctx sctx;\n"
      "  sctx.host = h;\n"
      "  sctx.host = 0;\n"
      "  sctx.port = p;\n"
      "  return assign_host(sctx.port);\n"
      "}\n";
  two.Commit(two.bob_, "ctx.c", v2, "reset host");

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].is_field_slot);
  EXPECT_EQ(report.findings[0].slot_name, "sctx#0");
  EXPECT_EQ(report.findings[0].kind, CandidateKind::kOverwrittenDef);
}

TEST(CorePipeline, AddressTakenSlotIsSuppressed) {
  TwoAuthorRepo two;
  std::string v1 =
      "int fill(int *out);\n"
      "int getval(int x) {\n"
      "  int pset = x;\n"
      "  fill(&pset);\n"
      "  int r = pset;\n"
      "  pset = 0;\n"
      "  return r;\n"
      "}\n";
  two.Commit(two.alice_, "a.c", v1);
  std::string v2 = v1 + "int c2(int x) {\n  return getval(x);\n}\n";
  two.Commit(two.bob_, "a.c", v2);

  AnalysisReport report = Analysis().RunOnRepository(two.repo_);
  for (const UnusedDefCandidate& cand : report.findings) {
    EXPECT_NE(cand.slot_name, "pset");
  }
}

TEST(CorePipeline, RankingOrdersByFamiliarity) {
  Repository repo;
  AuthorId veteran = repo.AddAuthor("veteran");
  AuthorId newcomer = repo.AddAuthor("newcomer");

  // veteran owns f1.c with many commits; newcomer makes a drive-by change
  // introducing an unused def. In f2.c the roles are reversed but the
  // newcomer file has fewer commits.
  std::string f1_base =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n";
  repo.AddCommit(veteran, 1, "create f1", {{"f1.c", f1_base}});
  for (int i = 0; i < 8; ++i) {
    std::string updated = f1_base + "int extra" + std::to_string(i) + "(int v) {\n  return v;\n}\n";
    repo.AddCommit(veteran, 2 + i, "evolve f1 " + std::to_string(i), {{"f1.c", updated}});
    f1_base = updated;
  }
  // Newcomer breaks the dataflow in veteran's file.
  std::string f1_buggy = f1_base;
  f1_buggy.replace(f1_buggy.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  repo.AddCommit(newcomer, 100, "tweak work", {{"f1.c", f1_buggy}});

  // Veteran also leaves an unused def in a file he co-owns heavily... use a
  // second pair where the responsible author is the veteran with high DOK.
  std::string f2 =
      "int helper2(int x) {\n"
      "  return x - 1;\n"
      "}\n"
      "int work2(int x) {\n"
      "  int ret = helper2(x);\n"
      "  return ret;\n"
      "}\n";
  repo.AddCommit(newcomer, 101, "create f2", {{"f2.c", f2}});
  std::string f2_buggy = f2;
  f2_buggy.replace(f2_buggy.find("  return ret;"), 13, "  ret = helper2(x + 2);\n  return ret;");
  repo.AddCommit(veteran, 102, "tweak work2", {{"f2.c", f2_buggy}});
  for (int i = 0; i < 8; ++i) {
    std::string updated =
        f2_buggy + "int pad" + std::to_string(i) + "(int v) {\n  return v;\n}\n";
    repo.AddCommit(veteran, 103 + i, "evolve f2 " + std::to_string(i), {{"f2.c", updated}});
    f2_buggy = updated;
  }

  AnalysisReport report = Analysis().RunOnRepository(repo);
  ASSERT_EQ(report.findings.size(), 2u);
  // The newcomer's finding (low familiarity) ranks first.
  EXPECT_EQ(report.findings[0].responsible_author, newcomer);
  EXPECT_EQ(report.findings[1].responsible_author, veteran);
  EXPECT_LT(report.findings[0].familiarity, report.findings[1].familiarity);
}

}  // namespace
}  // namespace vc

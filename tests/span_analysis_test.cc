// Tests for the scalability observatory's span analytics: span-graph
// reconstruction (same-tid nesting + cross-tid fork edges), critical-path
// computation and its wall-clock clamp, busy/idle utilization, the Amdahl
// serial-fraction fit, dropped-span accounting, and the stable-field-order
// JSON rendering — plus structural determinism of the whole report under
// input shuffling.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/support/json_reader.h"
#include "src/support/span_analysis.h"
#include "src/support/trace.h"

namespace vc {
namespace {

TraceEvent Ev(const char* name, int tid, int64_t ts, int64_t dur) {
  TraceEvent event;
  event.name = name;
  event.tid = tid;
  event.ts_micros = ts;
  event.dur_micros = dur;
  return event;
}

PerfInputs Inputs(double wall = 0.0, int jobs = 1) {
  PerfInputs inputs;
  inputs.wall_seconds = wall;
  inputs.jobs = jobs;
  inputs.hardware_threads = 4;
  return inputs;
}

// ---------------------------------------------------------------------------
// Empty input
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, EmptyTraceYieldsStructurallyCompleteReport) {
  PerfReport report = AnalyzeSpans({}, Inputs());
  EXPECT_EQ(report.span_count, 0u);
  EXPECT_EQ(report.critical_path_seconds, 0.0);
  EXPECT_TRUE(report.critical_path.empty());
  EXPECT_TRUE(report.workers.empty());
  EXPECT_EQ(report.mean_utilization, 0.0);
  EXPECT_EQ(report.serial_fraction, 1.0);  // no measured work = serial

  // The JSON render must still be complete and parseable.
  std::string json = PerfReportToJson(report);
  std::string error;
  std::optional<JsonValue> value = ParseJson(json, &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_EQ(value->GetInt("schema_version", -1), PerfReport::kSchemaVersion);
  EXPECT_TRUE(value->Has("critical_path"));
  EXPECT_TRUE(value->Has("workers"));
  EXPECT_TRUE(value->Has("steals"));
}

// ---------------------------------------------------------------------------
// Same-tid nesting
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, SingleThreadNestingAndCriticalPath) {
  // root [0,1000] containing child [100,500) (with grandchild [150,250))
  // and sibling [600,900).
  std::vector<TraceEvent> events = {
      Ev("root", 0, 0, 1000),
      Ev("child", 0, 100, 400),
      Ev("grandchild", 0, 150, 100),
      Ev("sibling", 0, 600, 300),
  };
  SpanGraph graph = SpanGraph::Build(events);
  ASSERT_EQ(graph.nodes.size(), 4u);
  ASSERT_EQ(graph.roots.size(), 1u);
  const SpanNode& root = graph.nodes[graph.roots[0]];
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.parent, -1);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(graph.nodes[root.children[0]].name, "child");
  EXPECT_EQ(graph.nodes[root.children[1]].name, "sibling");
  EXPECT_EQ(graph.nodes[root.children[0]].children.size(), 1u);

  // Same-tid children are sequential: the chain is the whole root span.
  EXPECT_EQ(root.critical_micros, 1000);

  PerfReport report = AnalyzeSpans(events, Inputs());
  EXPECT_DOUBLE_EQ(report.wall_seconds, 0.001);  // window = 1000us
  EXPECT_DOUBLE_EQ(report.critical_path_seconds, 0.001);
  EXPECT_DOUBLE_EQ(report.critical_path_fraction, 1.0);

  // Folded listing covers the full chain, in first-seen stack order, and its
  // contributions sum to the critical path.
  std::vector<std::string> stacks;
  double total = 0.0;
  for (const CriticalPathStep& step : report.critical_path) {
    stacks.push_back(step.stack);
    total += step.seconds;
  }
  EXPECT_EQ(stacks, (std::vector<std::string>{
                        "root", "root;child", "root;child;grandchild",
                        "root;sibling"}));
  EXPECT_NEAR(total, report.critical_path_seconds, 1e-9);

  // One worker, fully busy (intervals cover the window).
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].spans, 4u);
  EXPECT_DOUBLE_EQ(report.workers[0].utilization, 1.0);
  EXPECT_EQ(report.serial_fraction, 1.0);  // one worker = serial
}

// ---------------------------------------------------------------------------
// Cross-tid fork edges + the wall clamp
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, CrossTidForkJoinAttachesAndClampsToWall) {
  // Two worker lanes whose windows overlap (neither contains the other), so
  // cross-tid attachment anchors both to the containing run span on tid 0.
  std::vector<TraceEvent> events = {
      Ev("run", 0, 0, 1000),
      Ev("lane_a", 1, 100, 600),
      Ev("lane_b", 2, 150, 600),
  };
  SpanGraph graph = SpanGraph::Build(events);
  ASSERT_EQ(graph.roots.size(), 1u);
  const SpanNode& run = graph.nodes[graph.roots[0]];
  ASSERT_EQ(run.children.size(), 2u);
  EXPECT_EQ(graph.nodes[run.children[0]].name, "lane_a");
  EXPECT_EQ(graph.nodes[run.children[0]].parent, graph.roots[0]);
  EXPECT_EQ(graph.nodes[run.children[1]].name, "lane_b");

  // Uncovered self time (1000, nothing on tid 0 is covered by same-tid
  // children) + heaviest lane (600) would be 1600 — the clamp caps the
  // chain at the containing span's own duration.
  EXPECT_EQ(run.critical_micros, 1000);

  PerfReport report = AnalyzeSpans(events, Inputs());
  EXPECT_LE(report.critical_path_seconds, report.wall_seconds);
  ASSERT_EQ(report.workers.size(), 3u);
  EXPECT_DOUBLE_EQ(report.workers[0].busy_seconds, 1000e-6);
  EXPECT_DOUBLE_EQ(report.workers[1].busy_seconds, 600e-6);
  EXPECT_DOUBLE_EQ(report.workers[2].busy_seconds, 600e-6);
  EXPECT_NEAR(report.total_busy_seconds, 2200e-6, 1e-9);
  EXPECT_NEAR(report.mean_utilization, (1.0 + 0.6 + 0.6) / 3.0, 1e-9);
  EXPECT_NEAR(report.imbalance_ratio, 1000.0 / (2200.0 / 3.0), 1e-9);
  // Amdahl: T = s*W + (1-s)*W/n solved for s = (n*T - W) / (W*(n-1)),
  // with T=1ms, W=2.2ms, n=3.
  EXPECT_NEAR(report.serial_fraction, (3 * 0.001 - 0.0022) / (0.0022 * 2), 1e-9);
}

TEST(SpanAnalysis, ExplicitWallClampWhenSpansOutlastTheClock) {
  std::vector<TraceEvent> events = {Ev("run", 0, 0, 1000)};
  PerfInputs inputs = Inputs(/*wall=*/500e-6);
  PerfReport report = AnalyzeSpans(events, inputs);
  EXPECT_DOUBLE_EQ(report.wall_seconds, 500e-6);
  EXPECT_LE(report.critical_path_seconds, report.wall_seconds);
  EXPECT_DOUBLE_EQ(report.critical_path_fraction, 1.0);
}

// ---------------------------------------------------------------------------
// Overlapping spans: busy time is an interval union, never double-counted
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, OverlappingSpansBusyUnionAndTimelineBounds) {
  // [0,500) and [400,800) overlap by 100us: union is 800us, not 900.
  std::vector<TraceEvent> events = {
      Ev("a", 3, 0, 500),
      Ev("b", 3, 400, 400),
  };
  PerfInputs inputs = Inputs();
  inputs.timeline_buckets = 8;
  PerfReport report = AnalyzeSpans(events, inputs);
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(report.workers[0].busy_seconds, 800e-6);
  EXPECT_DOUBLE_EQ(report.workers[0].utilization, 1.0);
  EXPECT_DOUBLE_EQ(report.workers[0].idle_seconds, 0.0);
  ASSERT_EQ(report.workers[0].timeline.size(), 8u);
  for (double v : report.workers[0].timeline) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, 1.0);  // fully covered window
  }
}

TEST(SpanAnalysis, IdleGapShowsInUtilizationAndTimeline) {
  // Busy [0,250) and [750,1000): half the window idle.
  std::vector<TraceEvent> events = {
      Ev("a", 1, 0, 250),
      Ev("b", 1, 750, 250),
  };
  PerfInputs inputs = Inputs();
  inputs.timeline_buckets = 4;
  PerfReport report = AnalyzeSpans(events, inputs);
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(report.workers[0].busy_seconds, 500e-6);
  EXPECT_DOUBLE_EQ(report.workers[0].idle_seconds, 500e-6);
  EXPECT_DOUBLE_EQ(report.workers[0].utilization, 0.5);
  ASSERT_EQ(report.workers[0].timeline.size(), 4u);
  EXPECT_DOUBLE_EQ(report.workers[0].timeline[0], 1.0);
  EXPECT_DOUBLE_EQ(report.workers[0].timeline[1], 0.0);
  EXPECT_DOUBLE_EQ(report.workers[0].timeline[2], 0.0);
  EXPECT_DOUBLE_EQ(report.workers[0].timeline[3], 1.0);
}

// ---------------------------------------------------------------------------
// Dropped spans
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, DroppedSpanCountPassesThrough) {
  PerfInputs inputs = Inputs();
  inputs.dropped_spans = 7;
  PerfReport report = AnalyzeSpans({Ev("run", 0, 0, 100)}, inputs);
  EXPECT_EQ(report.dropped_spans, 7u);
  EXPECT_NE(PerfReportToJson(report).find("\"dropped_spans\":7"),
            std::string::npos);
}

TEST(SpanAnalysis, CapOverflowedCollectorStillAnalyzable) {
  TraceCollector& collector = TraceCollector::Global();
  size_t saved_cap = collector.thread_buffer_cap();
  collector.SetThreadBufferCapForTest(2);
  collector.Enable();
  { TraceSpan span("kept1"); }
  { TraceSpan span("kept2"); }
  { TraceSpan span("dropped1"); }
  { TraceSpan span("dropped2"); }
  collector.Disable();

  PerfInputs inputs = Inputs();
  inputs.dropped_spans = collector.dropped_count();
  PerfReport report = AnalyzeSpans(collector.SnapshotEvents(), inputs);
  EXPECT_EQ(report.span_count, 2u);
  EXPECT_EQ(report.dropped_spans, 2u);
  EXPECT_LE(report.critical_path_seconds, report.wall_seconds + 1e-9);

  collector.SetThreadBufferCapForTest(saved_cap);
  collector.Clear();
}

// ---------------------------------------------------------------------------
// Structural determinism
// ---------------------------------------------------------------------------

TEST(SpanAnalysis, ReportIsInvariantUnderInputShuffles) {
  std::vector<TraceEvent> events = {
      Ev("run", 0, 0, 2000),     Ev("parse", 0, 100, 800),
      Ev("lane_a", 1, 150, 600), Ev("file1", 1, 200, 200),
      Ev("file2", 1, 450, 250),  Ev("lane_b", 2, 150, 400),
      Ev("detect", 0, 1000, 900), Ev("fn", 2, 1100, 300),
  };
  PerfInputs inputs = Inputs(/*wall=*/0.002, /*jobs=*/2);
  std::string baseline = PerfReportToJson(AnalyzeSpans(events, inputs));

  // Any permutation of the event buffer produces the identical report
  // (Build sorts into a canonical order first).
  std::vector<TraceEvent> shuffled = events;
  std::reverse(shuffled.begin(), shuffled.end());
  EXPECT_EQ(PerfReportToJson(AnalyzeSpans(shuffled, inputs)), baseline);

  std::rotate(shuffled.begin(), shuffled.begin() + 3, shuffled.end());
  EXPECT_EQ(PerfReportToJson(AnalyzeSpans(shuffled, inputs)), baseline);
}

TEST(SpanAnalysis, JsonFieldOrderIsStable) {
  PerfReport report = AnalyzeSpans({Ev("run", 0, 0, 100)}, Inputs());
  std::string json = PerfReportToJson(report);
  const char* order[] = {"\"schema_version\":", "\"wall_seconds\":", "\"jobs\":",
                         "\"hardware_threads\":", "\"span_count\":",
                         "\"dropped_spans\":",   "\"critical_path\":",
                         "\"serial_fraction\":", "\"total_busy_seconds\":",
                         "\"workers\":",         "\"mean_utilization\":",
                         "\"imbalance\":",       "\"steals\":"};
  size_t cursor = 0;
  for (const char* key : order) {
    size_t pos = json.find(key, cursor);
    ASSERT_NE(pos, std::string::npos) << key;
    cursor = pos;
  }
}

}  // namespace
}  // namespace vc

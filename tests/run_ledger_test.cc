// Run ledger: JSONL round-trip, append-order ids, torn-line tolerance,
// selector resolution, and compaction.

#include "src/support/run_ledger.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace vc {
namespace {

class RunLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vc_ledger_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string LedgerDir() const { return (dir_ / "ledger").string(); }

  std::filesystem::path dir_;
};

RunRecord SampleRecord(const std::string& label) {
  RunRecord record;
  record.timestamp_ms = 1700000000123;
  record.label = label;
  record.options_summary = "all-scopes no-prune-cursor";
  record.jobs = 4;
  record.findings.push_back({"0123456789abcdef", "unused-def", "src/a.c", 42, "handle", "ret",
                             "overwritten_def", 0.25});
  record.findings.push_back({"fedcba9876543210", "double-overwrite", "src/b.c", 7, "drive", "got",
                             "unused_retval", 0.0});
  LedgerMetrics& m = record.metrics;
  m.collected = true;
  m.analysis_seconds = 1.5;
  m.parse_seconds = 0.75;
  m.detect_seconds = 0.25;
  m.files_parsed = 12;
  m.functions_analyzed = 340;
  m.candidates_detected = 9;
  m.prune_original = 9;
  m.prune_total = 7;
  m.prune_remaining = 2;
  m.prune_patterns.push_back({"config_dependency", 9, 4});
  m.prune_patterns.push_back({"cursor", 5, 3});
  m.pool_workers = 4;
  m.pool_tasks = 88;
  m.pool_steals = 3;
  m.pool_idle_seconds = 0.01;
  return record;
}

TEST_F(RunLedgerTest, RecordRoundTripsThroughJson) {
  RunRecord record = SampleRecord("round-trip");
  record.run_id = "r0042";
  std::string json = RunRecordToJson(record);
  EXPECT_EQ(json.find('\n'), std::string::npos) << "record must be a single line";

  std::string error;
  std::optional<RunRecord> back = RunRecordFromJson(json, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->run_id, "r0042");
  EXPECT_EQ(back->timestamp_ms, 1700000000123);
  EXPECT_EQ(back->label, "round-trip");
  EXPECT_EQ(back->options_summary, "all-scopes no-prune-cursor");
  EXPECT_EQ(back->jobs, 4);
  ASSERT_EQ(back->findings.size(), 2u);
  EXPECT_EQ(back->findings[0].fingerprint, "0123456789abcdef");
  EXPECT_EQ(back->findings[0].file, "src/a.c");
  EXPECT_EQ(back->findings[0].line, 42);
  EXPECT_EQ(back->findings[0].function, "handle");
  EXPECT_EQ(back->findings[0].variable, "ret");
  EXPECT_EQ(back->findings[0].kind, "overwritten_def");
  EXPECT_DOUBLE_EQ(back->findings[0].familiarity, 0.25);
  EXPECT_TRUE(back->metrics.collected);
  EXPECT_DOUBLE_EQ(back->metrics.analysis_seconds, 1.5);
  EXPECT_EQ(back->metrics.files_parsed, 12);
  EXPECT_EQ(back->metrics.functions_analyzed, 340);
  ASSERT_EQ(back->metrics.prune_patterns.size(), 2u);
  EXPECT_EQ(back->metrics.prune_patterns[1].name, "cursor");
  EXPECT_EQ(back->metrics.prune_patterns[1].tested, 5);
  EXPECT_EQ(back->metrics.prune_patterns[1].pruned, 3);
  EXPECT_EQ(back->metrics.pool_workers, 4);
  EXPECT_EQ(back->metrics.pool_tasks, 88);
}

TEST_F(RunLedgerTest, ServeMetricsRoundTripInV5Records) {
  RunRecord record;
  record.label = "serve-session";
  LedgerMetrics& m = record.metrics;
  m.serve_collected = true;
  m.serve_wall_seconds = 12.5;
  m.serve_clients = 6;
  m.serve_requests = 240;
  m.serve_succeeded = 200;
  m.serve_degraded = 20;
  m.serve_shed = 12;
  m.serve_deadline = 5;
  m.serve_failed = 3;
  m.serve_retried = 31;
  m.serve_qps = 19.2;
  m.serve_p50_ms = 4.5;
  m.serve_p95_ms = 30.0;
  m.serve_p99_ms = 55.25;

  std::string error;
  std::optional<RunRecord> back = RunRecordFromJson(RunRecordToJson(record), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(back->metrics.serve_collected);
  EXPECT_DOUBLE_EQ(back->metrics.serve_wall_seconds, 12.5);
  EXPECT_EQ(back->metrics.serve_clients, 6);
  EXPECT_EQ(back->metrics.serve_requests, 240);
  EXPECT_EQ(back->metrics.serve_succeeded, 200);
  EXPECT_EQ(back->metrics.serve_degraded, 20);
  EXPECT_EQ(back->metrics.serve_shed, 12);
  EXPECT_EQ(back->metrics.serve_deadline, 5);
  EXPECT_EQ(back->metrics.serve_failed, 3);
  EXPECT_EQ(back->metrics.serve_retried, 31);
  EXPECT_DOUBLE_EQ(back->metrics.serve_qps, 19.2);
  EXPECT_DOUBLE_EQ(back->metrics.serve_p50_ms, 4.5);
  EXPECT_DOUBLE_EQ(back->metrics.serve_p95_ms, 30.0);
  EXPECT_DOUBLE_EQ(back->metrics.serve_p99_ms, 55.25);
  // The accounting identity survives the round trip.
  EXPECT_EQ(back->metrics.serve_requests,
            back->metrics.serve_succeeded + back->metrics.serve_degraded +
                back->metrics.serve_shed + back->metrics.serve_deadline +
                back->metrics.serve_failed);
}

TEST_F(RunLedgerTest, BatchRecordsOmitTheServeBlock) {
  RunRecord record = SampleRecord("batch");
  std::string json = RunRecordToJson(record);
  EXPECT_EQ(json.find("\"serve\""), std::string::npos)
      << "batch records must not carry an empty serve block";
  std::optional<RunRecord> back = RunRecordFromJson(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->metrics.serve_collected);
  EXPECT_EQ(back->metrics.serve_requests, 0);
}

TEST_F(RunLedgerTest, GarbageLineIsRejectedWithError) {
  std::string error;
  EXPECT_FALSE(RunRecordFromJson("{\"run_id\":", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(RunRecordFromJson("[1,2,3]").has_value());
}

TEST_F(RunLedgerTest, AppendAssignsSequentialRunIds) {
  RunLedger ledger(LedgerDir());
  EXPECT_EQ(ledger.Append(SampleRecord("one")), "r0001");
  EXPECT_EQ(ledger.Append(SampleRecord("two")), "r0002");
  EXPECT_EQ(ledger.Append(SampleRecord("three")), "r0003");

  std::optional<std::vector<RunRecord>> runs = ledger.Load();
  ASSERT_TRUE(runs.has_value());
  ASSERT_EQ(runs->size(), 3u);
  EXPECT_EQ((*runs)[0].label, "one");
  EXPECT_EQ((*runs)[2].run_id, "r0003");
}

TEST_F(RunLedgerTest, AppendCreatesNestedDirectories) {
  RunLedger ledger((dir_ / "deeply" / "nested" / "ledger").string());
  std::string error;
  EXPECT_EQ(ledger.Append(SampleRecord("nested"), &error), "r0001") << error;
  EXPECT_TRUE(std::filesystem::exists(ledger.LedgerFile()));
}

TEST_F(RunLedgerTest, LoadOnMissingDirectoryYieldsEmptyHistory) {
  RunLedger ledger(LedgerDir());
  std::optional<std::vector<RunRecord>> runs = ledger.Load();
  ASSERT_TRUE(runs.has_value());
  EXPECT_TRUE(runs->empty());
}

TEST_F(RunLedgerTest, TornFinalLineIsSkippedNotFatal) {
  RunLedger ledger(LedgerDir());
  ledger.Append(SampleRecord("one"));
  ledger.Append(SampleRecord("two"));
  // Simulate a crashed writer: a half-flushed record on the final line.
  {
    std::ofstream out(ledger.LedgerFile(), std::ios::app);
    out << "{\"schema\":1,\"run_id\":\"r00";
  }
  std::string error;
  int skipped = 0;
  std::optional<std::vector<RunRecord>> runs = ledger.Load(&error, &skipped);
  ASSERT_TRUE(runs.has_value()) << error;
  EXPECT_EQ(runs->size(), 2u);
  EXPECT_EQ(skipped, 1);
  // And the ledger stays appendable after the torn line.
  EXPECT_EQ(ledger.Append(SampleRecord("three")), "r0003");
}

TEST_F(RunLedgerTest, FindResolvesSelectors) {
  RunLedger ledger(LedgerDir());
  ledger.Append(SampleRecord("one"));
  ledger.Append(SampleRecord("two"));
  ledger.Append(SampleRecord("three"));

  auto label_of = [&](const std::string& selector) {
    std::optional<RunRecord> run = ledger.Find(selector);
    return run.has_value() ? run->label : std::string("<none>");
  };
  EXPECT_EQ(label_of("latest"), "three");
  EXPECT_EQ(label_of("prev"), "two");
  EXPECT_EQ(label_of("r0001"), "one");
  EXPECT_EQ(label_of("2"), "two");
  EXPECT_EQ(label_of("-1"), "three");
  EXPECT_EQ(label_of("-3"), "one");

  std::string error;
  EXPECT_FALSE(ledger.Find("r0099", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ledger.Find("-4").has_value());
  EXPECT_FALSE(ledger.Find("0").has_value());
  EXPECT_FALSE(ledger.Find("bogus").has_value());
}

TEST_F(RunLedgerTest, CompactKeepsNewestRuns) {
  RunLedger ledger(LedgerDir());
  for (int i = 1; i <= 5; ++i) {
    ledger.Append(SampleRecord("run" + std::to_string(i)));
  }
  std::string error;
  EXPECT_EQ(ledger.Compact(2, &error), 3) << error;

  std::optional<std::vector<RunRecord>> runs = ledger.Load();
  ASSERT_TRUE(runs.has_value());
  ASSERT_EQ(runs->size(), 2u);
  // Surviving records keep their original ids; new appends continue after.
  EXPECT_EQ((*runs)[0].run_id, "r0004");
  EXPECT_EQ((*runs)[1].run_id, "r0005");
  EXPECT_EQ(ledger.Append(SampleRecord("after")), "r0006");
}

TEST_F(RunLedgerTest, DegradedAndQuarantineCountersRoundTrip) {
  RunRecord record = SampleRecord("degraded");
  record.run_id = "r0001";
  record.degraded = true;
  record.metrics.quarantined_units = 3;
  std::optional<RunRecord> back = RunRecordFromJson(RunRecordToJson(record));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->degraded);
  EXPECT_EQ(back->metrics.quarantined_units, 3);
  // Pre-v5 records lack both fields and must read as clean runs.
  std::optional<RunRecord> old = RunRecordFromJson(
      "{\"run_id\":\"r0001\",\"findings\":[],\"metrics\":{}}");
  ASSERT_TRUE(old.has_value());
  EXPECT_FALSE(old->degraded);
  EXPECT_EQ(old->metrics.quarantined_units, 0);
}

TEST_F(RunLedgerTest, MemoryAndCheckerStatsRoundTripInV2Records) {
  RunRecord record = SampleRecord("v2");
  record.run_id = "r0001";
  record.metrics.mem_collected = true;
  record.metrics.mem_ast_bytes = 1000;
  record.metrics.mem_ast_objects = 10;
  record.metrics.mem_ir_bytes = 2000;
  record.metrics.mem_ir_objects = 20;
  record.metrics.mem_points_to_bytes = 300;
  record.metrics.mem_points_to_objects = 3;
  record.metrics.mem_strings_bytes = 40;
  record.metrics.mem_strings_objects = 4;
  record.metrics.mem_tracked_bytes = 3340;
  record.metrics.mem_peak_rss_bytes = 50000000;
  record.checker_stats.push_back({"unused-def", 9, 2});
  record.checker_stats.push_back({"double-overwrite", 4, 1});

  std::optional<RunRecord> back = RunRecordFromJson(RunRecordToJson(record));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->metrics.mem_collected);
  EXPECT_EQ(back->metrics.mem_ast_bytes, 1000);
  EXPECT_EQ(back->metrics.mem_ir_objects, 20);
  EXPECT_EQ(back->metrics.mem_points_to_bytes, 300);
  EXPECT_EQ(back->metrics.mem_strings_objects, 4);
  EXPECT_EQ(back->metrics.mem_tracked_bytes, 3340);
  EXPECT_EQ(back->metrics.mem_peak_rss_bytes, 50000000);
  ASSERT_EQ(back->checker_stats.size(), 2u);
  EXPECT_EQ(back->checker_stats[0].name, "unused-def");
  EXPECT_EQ(back->checker_stats[0].candidates, 9);
  EXPECT_EQ(back->checker_stats[1].findings, 1);
}

// Schema v1 lines (pre memory accounting / per-checker stats) must keep
// loading: absent blocks read as "not recorded", never as an error.
TEST_F(RunLedgerTest, PreV2RecordsLoadWithAbsentMeansNotRecorded) {
  std::string error;
  std::optional<RunRecord> old = RunRecordFromJson(
      "{\"schema\":1,\"run_id\":\"r0001\",\"label\":\"legacy\",\"jobs\":2,"
      "\"findings\":[],\"metrics\":{\"collected\":true,\"analysis_seconds\":1.0}}",
      &error);
  ASSERT_TRUE(old.has_value()) << error;
  EXPECT_FALSE(old->metrics.mem_collected);
  EXPECT_EQ(old->metrics.mem_tracked_bytes, 0);
  EXPECT_EQ(old->metrics.mem_peak_rss_bytes, 0);
  EXPECT_TRUE(old->checker_stats.empty());
  // And a v2 writer never re-emits the absent blocks for such a record.
  std::string rewritten = RunRecordToJson(*old);
  EXPECT_EQ(rewritten.find("\"memory\""), std::string::npos);
  EXPECT_EQ(rewritten.find("\"checker_stats\""), std::string::npos);
}

TEST_F(RunLedgerTest, MixedVersionLedgerLoadsAllRecords) {
  RunLedger ledger(LedgerDir());
  ledger.Append(SampleRecord("v1-era"));  // no memory, no checker stats
  RunRecord modern = SampleRecord("v2-era");
  modern.metrics.mem_collected = true;
  modern.metrics.mem_tracked_bytes = 1234;
  modern.checker_stats.push_back({"unused-def", 5, 2});
  ledger.Append(modern);
  // A literal pre-v2 line as an old binary would have written it.
  {
    std::ofstream out(ledger.LedgerFile(), std::ios::app);
    out << "{\"schema\":1,\"run_id\":\"r0003\",\"label\":\"ancient\","
           "\"findings\":[],\"metrics\":{}}\n";
  }
  std::string error;
  int skipped = 0;
  std::optional<std::vector<RunRecord>> runs = ledger.Load(&error, &skipped);
  ASSERT_TRUE(runs.has_value()) << error;
  EXPECT_EQ(skipped, 0);
  ASSERT_EQ(runs->size(), 3u);
  EXPECT_FALSE((*runs)[0].metrics.mem_collected);
  EXPECT_TRUE((*runs)[1].metrics.mem_collected);
  EXPECT_EQ((*runs)[1].metrics.mem_tracked_bytes, 1234);
  ASSERT_EQ((*runs)[1].checker_stats.size(), 1u);
  EXPECT_FALSE((*runs)[2].metrics.mem_collected);
  EXPECT_TRUE((*runs)[2].checker_stats.empty());
}

// Append is a single O_APPEND write() per record, so concurrent appenders
// (CI jobs sharing one ledger) must never tear each other's lines. Run ids
// are preassigned: id *assignment* reads the ledger first and is only
// advisory under concurrency; byte-level line atomicity is the contract.
TEST_F(RunLedgerTest, ConcurrentAppendersNeverTearRecords) {
  RunLedger ledger(LedgerDir());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  // A long label makes each line span several kilobytes, well past any
  // stdio buffer size where interleaving bugs would hide.
  const std::string padding(4096, 'x');
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RunRecord record = SampleRecord("writer" + std::to_string(t) + "-" +
                                        std::to_string(i) + "-" + padding);
        record.run_id = "r" + std::to_string(t) + "_" + std::to_string(i);
        std::string error;
        ASSERT_FALSE(ledger.Append(record, &error).empty()) << error;
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  std::string error;
  int skipped = 0;
  std::optional<std::vector<RunRecord>> runs = ledger.Load(&error, &skipped);
  ASSERT_TRUE(runs.has_value()) << error;
  EXPECT_EQ(skipped, 0) << "torn (interleaved) lines in the ledger";
  EXPECT_EQ(runs->size(), static_cast<size_t>(kThreads * kPerThread));
  for (const RunRecord& record : *runs) {
    // Each record came through intact: full label with its padding tail.
    EXPECT_EQ(record.label.compare(record.label.size() - padding.size(),
                                   padding.size(), padding),
              0);
  }
}

TEST_F(RunLedgerTest, CompactLargerThanHistoryDropsNothing) {
  RunLedger ledger(LedgerDir());
  ledger.Append(SampleRecord("one"));
  EXPECT_EQ(ledger.Compact(10), 0);
  std::optional<std::vector<RunRecord>> runs = ledger.Load();
  ASSERT_TRUE(runs.has_value());
  EXPECT_EQ(runs->size(), 1u);
}

}  // namespace
}  // namespace vc

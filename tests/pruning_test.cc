// Pruning pipeline tests: each of the four patterns (§5, Table 1), threshold
// behavior, pipeline charging order, and the prune-universe semantics.

#include <gtest/gtest.h>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/core/pruning.h"
#include "src/core/analysis.h"

namespace vc {
namespace {

struct Pruned {
  Project project;
  std::vector<UnusedDefCandidate> candidates;
  PruneStats stats;
};

Pruned RunPrune(const std::string& code, PruneOptions options = PruneOptions()) {
  Pruned p;
  p.project = Project::FromSources({{"test.c", code}});
  EXPECT_FALSE(p.project.diags().HasErrors())
      << p.project.diags().Render(p.project.sources());
  p.candidates = DetectAll(p.project);
  p.stats = RunPruning(p.project, p.candidates, options);
  return p;
}

PruneReason ReasonOf(const Pruned& p, const std::string& slot) {
  for (const UnusedDefCandidate& cand : p.candidates) {
    if (cand.slot_name == slot) {
      return cand.pruned_by;
    }
  }
  return PruneReason::kNone;
}

// --- Configuration dependency -------------------------------------------------

TEST(Pruning, ConfigDependencyMatchesDisabledUse) {
  Pruned p = RunPrune(
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host = mk(x);\n"
      "  int n = 1;\n"
      "#if USE_ICMP\n"
      "  n = ping(host);\n"
      "#endif\n"
      "  return n;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "host"), PruneReason::kConfigDependency);
  EXPECT_EQ(p.stats.config_dependency, 1);
}

TEST(Pruning, ConfigDependencyIgnoresOtherFunctions) {
  // The guarded use is in a different function: no prune.
  Pruned p = RunPrune(
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host = mk(x);\n"
      "  return x;\n"
      "}\n"
      "int g(int host2) {\n"
      "#if USE_ICMP\n"
      "  host2 = host2 + 1;\n"
      "#endif\n"
      "  return host2;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "host"), PruneReason::kNone);
}

TEST(Pruning, ConfigDependencyRequiresWordMatch) {
  Pruned p = RunPrune(
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host = mk(x);\n"
      "#if USE_ICMP\n"
      "  ping(hostname);\n"  // 'hostname' is not a use of 'host'
      "#endif\n"
      "  return x;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "host"), PruneReason::kNone);
}

TEST(Pruning, ConfigDependencyDisabled) {
  PruneOptions options;
  options.config_dependency = false;
  Pruned p = RunPrune(
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host = mk(x);\n"
      "  int n = 1;\n"
      "#if USE_ICMP\n"
      "  n = ping(host);\n"
      "#endif\n"
      "  return n;\n"
      "}",
      options);
  EXPECT_EQ(ReasonOf(p, "host"), PruneReason::kNone);
}

// --- Cursor ----------------------------------------------------------------------

constexpr const char* kCursorCode =
    "void f(char *o, char *base, int c) {\n"
    "  *o = c;\n"
    "  o = o + 1;\n"
    "  *o = 0;\n"
    "  o = o + 1;\n"
    "  o = base;\n"
    "  *o = 9;\n"
    "}";

TEST(Pruning, CursorPruned) {
  Pruned p = RunPrune(kCursorCode);
  EXPECT_EQ(ReasonOf(p, "o"), PruneReason::kCursor);
  EXPECT_EQ(p.stats.cursor, 1);
}

TEST(Pruning, SingleIncrementIsNotACursor) {
  // Only one increment of the variable: not "incremented repeatedly".
  Pruned p = RunPrune(
      "int g(int);\n"
      "int f(int a) {\n"
      "  int count = g(a);\n"
      "  count = count + 1;\n"  // unused increment, but the only one
      "  return a;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "count"), PruneReason::kNone);
}

TEST(Pruning, MixedStepIncrementsNotCursor) {
  // Increments by different constants: the repeated-same-constant rule fails.
  Pruned p = RunPrune(
      "void f(char *o, char *base, int c) {\n"
      "  *o = c;\n"
      "  o = o + 2;\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "  o = base;\n"
      "  *o = 9;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "o"), PruneReason::kNone);
}

TEST(Pruning, CursorDisabled) {
  PruneOptions options;
  options.cursor = false;
  Pruned p = RunPrune(kCursorCode, options);
  EXPECT_EQ(ReasonOf(p, "o"), PruneReason::kNone);
}

// --- Unused hints -------------------------------------------------------------------

TEST(Pruning, AttributeHintPruned) {
  Pruned p = RunPrune("int f(int a, int b [[maybe_unused]]) { return a; }");
  EXPECT_EQ(ReasonOf(p, "b"), PruneReason::kUnusedHint);
}

TEST(Pruning, CommentHintOnDefLinePruned) {
  Pruned p = RunPrune(
      "int g(int);\n"
      "int f(int a) {\n"
      "  int rc = g(a); /* result unused: best effort */\n"
      "  return a;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "rc"), PruneReason::kUnusedHint);
}

TEST(Pruning, HintIsCaseInsensitive) {
  Pruned p = RunPrune(
      "int g(int);\n"
      "int f(int a) {\n"
      "  int rc = g(a); // UNUSED by design\n"
      "  return a;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "rc"), PruneReason::kUnusedHint);
}

TEST(Pruning, NoHintNoPrune) {
  Pruned p = RunPrune(
      "int g(int);\n"
      "int f(int a) {\n"
      "  int rc = g(a);\n"
      "  return a;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "rc"), PruneReason::kNone);
}

// --- Peer definitions ------------------------------------------------------------------

std::string PeerCode(int ignoring_sites, int checking_sites) {
  std::string code = "int klog(int lvl);\n";
  for (int i = 0; i < ignoring_sites; ++i) {
    code += "void ig" + std::to_string(i) + "(int v) { klog(v + " + std::to_string(i) +
            "); }\n";
  }
  for (int i = 0; i < checking_sites; ++i) {
    std::string t = std::to_string(i);
    code += "int ck" + t + "(int v) { int s" + t + " = klog(v); return s" + t + "; }\n";
  }
  return code;
}

TEST(Pruning, PeerPrunesWidelyIgnoredReturn) {
  Pruned p = RunPrune(PeerCode(12, 0));
  EXPECT_EQ(p.stats.peer_definition, 12);
  EXPECT_EQ(p.stats.remaining, 0);
}

TEST(Pruning, PeerRespectsOccurrenceThreshold) {
  // Exactly 10 occurrences: "over ten" not met, nothing pruned.
  Pruned p = RunPrune(PeerCode(10, 0));
  EXPECT_EQ(p.stats.peer_definition, 0);
}

TEST(Pruning, PeerRespectsUnusedFraction) {
  // 6 ignoring vs 6 checking: half unused, not over half.
  Pruned p = RunPrune(PeerCode(6, 6));
  EXPECT_EQ(p.stats.peer_definition, 0);
  // 8 ignoring vs 4 checking: 2/3 unused, pruned.
  p = RunPrune(PeerCode(8, 4));
  EXPECT_EQ(p.stats.peer_definition, 8);
}

TEST(Pruning, PeerCountsAssignedButUnusedAsUnused) {
  // 6 ignored + 6 assigned-but-dead: all 12 peers unused -> prune everything.
  std::string code = "int klog(int lvl);\nint g(int);\n";
  for (int i = 0; i < 6; ++i) {
    code += "void ig" + std::to_string(i) + "(int v) { klog(v + " + std::to_string(i) +
            "); }\n";
  }
  for (int i = 0; i < 6; ++i) {
    std::string t = std::to_string(i);
    code += "int dd" + t + "(int v) { int s" + t + " = klog(v); s" + t + " = g(v); return s" +
            t + "; }\n";
  }
  Pruned p = RunPrune(code);
  // 6 synthetic + 6 assigned-dead, all charged to peer pruning.
  EXPECT_EQ(p.stats.peer_definition, 12);
}

TEST(Pruning, PeerParamGroupsBySignature) {
  // 12 same-signature callbacks all ignoring their second parameter.
  std::string code;
  for (int i = 0; i < 12; ++i) {
    std::string t = std::to_string(i);
    code += "int cb" + t + "(int a, int b" + t + ") { return a + " + t + "; }\n";
  }
  Pruned p = RunPrune(code);
  EXPECT_EQ(p.stats.peer_definition, 12);

  // Same shape but distinct signatures: no group reaches the threshold.
  std::string code2;
  for (int i = 0; i < 12; ++i) {
    std::string t = std::to_string(i);
    // Vary arity to split signatures.
    code2 += "int db" + t + "(int a, int b" + t;
    for (int k = 0; k < i % 3; ++k) {
      code2 += ", int extra" + t + "_" + std::to_string(k);
    }
    code2 += ") { return a";
    for (int k = 0; k < i % 3; ++k) {
      code2 += " + extra" + t + "_" + std::to_string(k);
    }
    code2 += "; }\n";
  }
  Pruned p2 = RunPrune(code2);
  EXPECT_EQ(p2.stats.peer_definition, 0);
}

TEST(Pruning, PeerUniverseSeparateFromPrunedList) {
  // The cross-scope pool contains one candidate, but the usage universe
  // (all candidates) shows the callee is widely ignored: still pruned.
  Project project = Project::FromSources({{"test.c", PeerCode(12, 0)}});
  std::vector<UnusedDefCandidate> all = DetectAll(project);
  ASSERT_EQ(all.size(), 12u);
  std::vector<UnusedDefCandidate> pool = {all[0]};
  PruneStats stats = RunPruning(project, pool, PruneOptions(), &all);
  EXPECT_EQ(stats.peer_definition, 1);

  // Without the universe, a single call site cannot reach the threshold...
  std::vector<UnusedDefCandidate> pool2 = {all[0]};
  PruneStats stats2 = RunPruning(project, pool2, PruneOptions());
  // ...but occurrences come from the project call-site index, which is
  // unchanged, so the callee still counts 12 occurrences. What changes is the
  // unused fraction: only 1 of 12 known-unused -> below 0.5 -> kept.
  EXPECT_EQ(stats2.peer_definition, 1);  // ignored call sites count regardless
}

// --- Pipeline order -----------------------------------------------------------------------

TEST(Pruning, EarlierPatternGetsTheCharge) {
  // A candidate that is both attribute-hinted and config-guarded: config
  // dependency runs first in the pipeline and takes the charge (the paper
  // notes prune counts reflect pipeline order).
  Pruned p = RunPrune(
      "int mk(int);\n"
      "int f(int x) {\n"
      "  int host [[maybe_unused]] = mk(x);\n"
      "  int n = 1;\n"
      "#if USE_ICMP\n"
      "  n = ping(host);\n"
      "#endif\n"
      "  return n;\n"
      "}");
  EXPECT_EQ(ReasonOf(p, "host"), PruneReason::kConfigDependency);
  EXPECT_EQ(p.stats.config_dependency, 1);
  EXPECT_EQ(p.stats.unused_hints, 0);
}

// --- Stale-code extension (off by default) --------------------------------------

TEST(Pruning, StaleCodeDisabledByDefault) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  std::string v1 =
      "int g(int);\n"
      "int f(int m) {\n"
      "  int probe = g(m);\n"
      "  return m;\n"
      "}\n";
  repo.AddCommit(a, 1000, "add debug probe counters", {{"x.c", v1}});
  repo.AddCommit(b, 2000, "extend", {{"x.c", v1 + "int h(int q) {\n  return q;\n}\n"}});
  AnalysisReport report = Analysis().RunOnRepository(repo);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.prune_stats.stale_code, 0);
}

TEST(Pruning, StaleCodePrunesDebugCommit) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  std::string v1 =
      "int g(int);\n"
      "int f(int m) {\n"
      "  int probe = g(m);\n"
      "  return m;\n"
      "}\n";
  repo.AddCommit(a, 1000, "add debug probe counters", {{"x.c", v1}});
  repo.AddCommit(b, 2000, "extend", {{"x.c", v1 + "int h(int q) {\n  return q;\n}\n"}});
  AnalysisOptions options;
  options.prune.stale_code = true;
  AnalysisReport report = Analysis(options).RunOnRepository(repo);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.prune_stats.stale_code, 1);
}

TEST(Pruning, StaleCodeSparesOrdinaryCommits) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  std::string v1 =
      "int g(int);\n"
      "int f(int m) {\n"
      "  int probe = g(m);\n"
      "  return m;\n"
      "}\n";
  repo.AddCommit(a, 1000, "add status probe", {{"x.c", v1}});
  repo.AddCommit(b, 2000, "extend", {{"x.c", v1 + "int h(int q) {\n  return q;\n}\n"}});
  AnalysisOptions options;
  options.prune.stale_code = true;
  AnalysisReport report = Analysis(options).RunOnRepository(repo);
  EXPECT_EQ(report.findings.size(), 1u);
}

TEST(Pruning, StaleCodeUntouchedFunctionWithDebugLine) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  AuthorId b = repo.AddAuthor("b");
  constexpr int64_t kDay = 86400;
  std::string v1 =
      "int g(int);\n"
      "int f(int m) {\n"
      "  int probe = g(m); /* debug trace */\n"
      "  return m;\n"
      "}\n";
  // Function written long ago and never touched; a recent commit elsewhere
  // sets "now".
  repo.AddCommit(a, 1000, "add tracing path", {{"x.c", v1}});
  repo.AddCommit(b, 1000 + 900 * kDay, "unrelated",
                 {{"x.c", v1 + "int h(int q) {\n  return q;\n}\n"}});
  AnalysisOptions options;
  options.prune.stale_code = true;
  options.prune.stale_days = 730;
  AnalysisReport report = Analysis(options).RunOnRepository(repo);
  // The hint pattern would also match the "debug" comment? No: hints match
  // the literal keyword "unused" only. Stale-code takes it.
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.prune_stats.stale_code, 1);
}

TEST(Pruning, StatsAccounting) {
  Pruned p = RunPrune(PeerCode(12, 0));
  EXPECT_EQ(p.stats.original, 12);
  EXPECT_EQ(p.stats.TotalPruned(), 12);
  EXPECT_EQ(p.stats.remaining, 0);
}

}  // namespace
}  // namespace vc

// Liveness and DefineSet analysis tests, including loop fix points, struct
// copy semantics, and the address-taken rule.

#include <gtest/gtest.h>

#include "src/dataflow/define_sets.h"
#include "src/dataflow/liveness.h"
#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"

namespace vc {
namespace {

struct Analyzed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
  std::unique_ptr<IrModule> module;

  const IrFunction& Fn(const std::string& name) const {
    const IrFunction* func = module->FindFunction(name);
    EXPECT_NE(func, nullptr);
    return *func;
  }
};

std::unique_ptr<Analyzed> Analyze(const std::string& code) {
  auto a = std::make_unique<Analyzed>();
  a->unit = ParseString(a->sm, "test.c", code, a->diags);
  EXPECT_FALSE(a->diags.HasErrors()) << a->diags.Render(a->sm);
  a->module = LowerUnit(a->unit);
  return a;
}

SlotId SlotNamed(const IrFunction& func, const std::string& name) {
  for (SlotId i = 0; i < func.slots.size(); ++i) {
    if (func.slots[i].name == name) {
      return i;
    }
  }
  return kInvalidSlot;
}

TEST(Liveness, ParamLiveWhenUsed) {
  auto a = Analyze("int f(int a, int b) { return a; }");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  EXPECT_TRUE(live.live_in[0].Contains(SlotNamed(func, "a")));
  EXPECT_FALSE(live.live_in[0].Contains(SlotNamed(func, "b")));
}

TEST(Liveness, OverwrittenParamNotLiveAtEntry) {
  auto a = Analyze("int f(int a) { a = 5; return a; }");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  EXPECT_FALSE(live.live_in[0].Contains(SlotNamed(func, "a")));
}

TEST(Liveness, UseOnOneBranchKeepsLive) {
  auto a = Analyze("int f(int a, int c) { if (c) { return a; } return 0; }");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  EXPECT_TRUE(live.live_in[0].Contains(SlotNamed(func, "a")));
}

TEST(Liveness, LoopCarriedUseReachesFixPoint) {
  auto a = Analyze(
      "int f(int n) {\n"
      "  int acc = 0;\n"
      "  while (n > 0) {\n"
      "    acc = acc + n;\n"
      "    n = n - 1;\n"
      "  }\n"
      "  return acc;\n"
      "}");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  EXPECT_GE(live.iterations, 2);  // the back edge needs a second pass
  // `acc = acc + n` inside the loop is used (by itself next iteration and by
  // the return): the store must see acc live in the loop body's out state.
  SlotId acc = SlotNamed(func, "acc");
  bool acc_live_somewhere_in_loop = false;
  for (const auto& block : func.blocks) {
    for (BlockId succ : block->succs) {
      if (succ < block->id) {  // back edge source: loop latch
        acc_live_somewhere_in_loop = live.live_out[block->id].Contains(acc);
      }
    }
  }
  EXPECT_TRUE(acc_live_somewhere_in_loop);
}

TEST(Liveness, StructWholeCopyUsesFields) {
  auto a = Analyze(
      "struct s { int x; int y; };\n"
      "int use_s(struct s v);\n"
      "int f(int a) {\n"
      "  struct s v;\n"
      "  v.x = a;\n"
      "  v.y = a + 1;\n"
      "  return use_s(v);\n"
      "}");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  // No field store is dead: the whole-struct load at the call uses them.
  for (const auto& block : func.blocks) {
    SlotSet set = live.live_out[block->id];
    for (size_t i = block->insts.size(); i-- > 0;) {
      const Instruction& inst = block->insts[i];
      if (inst.op == Opcode::kStore) {
        EXPECT_TRUE(set.Contains(inst.slot))
            << "field store to " << func.slots[inst.slot].name << " appears dead";
      }
      ApplyLivenessTransfer(func, inst, set);
    }
  }
}

TEST(Liveness, AddressTakenCollected) {
  auto a = Analyze("int g_sink;\nvoid g(int *p);\nvoid f(void) { int x = 1; int y = 2; g(&x); g_sink = y; }");
  const IrFunction& func = a->Fn("f");
  LivenessResult live = ComputeLiveness(func);
  EXPECT_TRUE(live.address_taken.Contains(SlotNamed(func, "x")));
  EXPECT_FALSE(live.address_taken.Contains(SlotNamed(func, "y")));
}

TEST(Liveness, AddressTakenStructEscapesFields) {
  auto a = Analyze(
      "struct s { int x; int y; };\n"
      "void g(struct s *p);\n"
      "void f(int a) { struct s v; v.x = a; g(&v); }");
  const IrFunction& func = a->Fn("f");
  SlotSet taken = ComputeAddressTaken(func);
  EXPECT_TRUE(taken.Contains(SlotNamed(func, "v")));
  EXPECT_TRUE(taken.Contains(SlotNamed(func, "v#0")));
}

TEST(Liveness, FixPointIdempotent) {
  auto a = Analyze(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) {\n"
      "    if (i > 2) { s = s + i; } else { s = s - 1; }\n"
      "  }\n"
      "  return s;\n"
      "}");
  const IrFunction& func = a->Fn("f");
  LivenessResult first = ComputeLiveness(func);
  LivenessResult second = ComputeLiveness(func);
  for (size_t i = 0; i < func.blocks.size(); ++i) {
    EXPECT_TRUE(first.live_in[i] == second.live_in[i]);
    EXPECT_TRUE(first.live_out[i] == second.live_out[i]);
  }
}

// --- SlotSet ------------------------------------------------------------------

TEST(SlotSet, BasicOperations) {
  SlotSet set(4);
  EXPECT_FALSE(set.Contains(2));
  set.Add(2);
  EXPECT_TRUE(set.Contains(2));
  set.Remove(2);
  EXPECT_FALSE(set.Contains(2));
  EXPECT_EQ(set.Count(), 0);
}

TEST(SlotSet, UnionReportsChange) {
  SlotSet a(4);
  SlotSet b(4);
  b.Add(1);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_FALSE(a.UnionWith(b));  // second union is a no-op
  EXPECT_TRUE(a.Contains(1));
}

TEST(SlotSet, EqualityIgnoresTrailingZeros) {
  SlotSet a(2);
  SlotSet b(8);
  a.Add(1);
  b.Add(1);
  EXPECT_TRUE(a == b);
  b.Add(7);
  EXPECT_FALSE(a == b);
}

TEST(SlotSet, GrowsOnDemand) {
  SlotSet set;
  set.Add(100);
  EXPECT_TRUE(set.Contains(100));
  EXPECT_FALSE(set.Contains(99));
}

// --- DefineSets ------------------------------------------------------------------

TEST(DefineSets, RecordsNearestOverwriter) {
  auto a = Analyze(
      "int g(int);\n"
      "int f(int m) {\n"
      "  int ret = g(m);\n"   // line 3: overwritten below
      "  ret = g(m + 1);\n"   // line 4
      "  return ret;\n"
      "}");
  const IrFunction& func = a->Fn("f");
  DefineSetResult defs = ComputeDefineSets(func);
  SlotId ret = SlotNamed(func, "ret");
  // Replay the entry block: before line 3's store, the define set must hold
  // line 4's store.
  const BasicBlock& entry = *func.blocks[0];
  DefineMap map = defs.out[0];
  const std::vector<SourceLoc>* found = nullptr;
  for (size_t i = entry.insts.size(); i-- > 0;) {
    const Instruction& inst = entry.insts[i];
    if (inst.op == Opcode::kStore && inst.slot == ret && inst.loc.line == 3) {
      found = map.Find(ret);
      break;
    }
    ApplyDefineTransfer(func, inst, map);
  }
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].line, 4);
}

TEST(DefineSets, BranchesUnionOverwriters) {
  auto a = Analyze(
      "int f(int m, int c) {\n"
      "  int v = m;\n"          // line 2
      "  if (c) {\n"
      "    v = 1;\n"            // line 4
      "  } else {\n"
      "    v = 2;\n"            // line 6
      "  }\n"
      "  return v;\n"
      "}");
  const IrFunction& func = a->Fn("f");
  DefineSetResult defs = ComputeDefineSets(func);
  SlotId v = SlotNamed(func, "v");
  // At the entry block's in-state... the define set after line 2's store is
  // what we want: union of both branch stores.
  const DefineMap& entry_out = defs.out[0];
  const std::vector<SourceLoc>* overwriters = entry_out.Find(v);
  ASSERT_NE(overwriters, nullptr);
  ASSERT_EQ(overwriters->size(), 2u);
  EXPECT_EQ((*overwriters)[0].line, 4);
  EXPECT_EQ((*overwriters)[1].line, 6);
}

TEST(DefineSets, NoOverwriterForFinalStore) {
  auto a = Analyze("int f(int m) { int v = m; return v; }");
  const IrFunction& func = a->Fn("f");
  DefineSetResult defs = ComputeDefineSets(func);
  EXPECT_EQ(defs.out[0].Find(SlotNamed(func, "v")), nullptr);
}

TEST(DefineSets, LoopOverwriterSeen) {
  auto a = Analyze(
      "int f(int n) {\n"
      "  int v = 0;\n"          // line 2: overwritten by line 4 in the loop
      "  while (n > 0) {\n"
      "    v = n;\n"            // line 4
      "    n = n - 1;\n"
      "  }\n"
      "  return v;\n"
      "}");
  const IrFunction& func = a->Fn("f");
  DefineSetResult defs = ComputeDefineSets(func);
  const std::vector<SourceLoc>* overwriters = defs.out[0].Find(SlotNamed(func, "v"));
  ASSERT_NE(overwriters, nullptr);
  EXPECT_EQ((*overwriters)[0].line, 4);
}

TEST(DefineMap, UnionDeduplicates) {
  DefineMap a;
  DefineMap b;
  a.Replace(1, {0, 10, 1});
  b.Replace(1, {0, 10, 1});
  EXPECT_FALSE(a.UnionWith(b));
  b.Replace(1, {0, 20, 1});
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_EQ(a.Find(1)->size(), 2u);
}

}  // namespace
}  // namespace vc

// Corpus generator + end-to-end reproduction tests. The full-profile tests
// assert the paper's headline numbers exactly — they are what the bench
// binaries print, locked in as regression tests.

#include <gtest/gtest.h>

#include <set>

#include "src/core/analysis.h"
#include "src/corpus/eval.h"
#include "src/corpus/generator.h"
#include "src/corpus/profile.h"

namespace vc {
namespace {

struct AppRun {
  GeneratedApp app;
  Project project;
  AnalysisReport report;
};

// The paper-number tests lock in the unused-definition detector alone; the
// checker framework's other bug classes have their own populations (see
// PerCheckerPrecisionRecall) and must not perturb these tables.
AppRun RunApp(const ProjectProfile& profile, AnalysisOptions options = AnalysisOptions()) {
  options.checkers = {"unused-def"};
  AppRun run;
  run.app = GenerateApp(profile);
  run.project = Project::FromRepository(run.app.repo);
  EXPECT_FALSE(run.project.diags().HasErrors())
      << run.project.diags().Render(run.project.sources()).substr(0, 2000);
  run.report = Analysis(options).Run(run.project, &run.app.repo);
  return run;
}

// Runs the §8.4 baseline checkers the way the paper ran the tools: raw
// detection envelopes, no cross-scope filter, no ranking.
AnalysisReport RunBaselines(const Project& project, const ProjectTraits& traits) {
  AnalysisOptions options;
  options.checkers = {"baseline-clang", "baseline-infer", "baseline-smatch",
                      "baseline-coverity"};
  options.traits = traits;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  return Analysis(options).Run(project);
}

// --- Generator invariants (scaled profiles keep tests fast) --------------------

TEST(CorpusGenerator, DeterministicForSeed) {
  ProjectProfile profile = NfsGaneshaProfile().Scaled(0.1);
  GeneratedApp a = GenerateApp(profile);
  GeneratedApp b = GenerateApp(profile);
  ASSERT_EQ(a.repo.NumCommits(), b.repo.NumCommits());
  for (const std::string& path : a.repo.ListFiles()) {
    EXPECT_EQ(a.repo.Head(path), b.repo.Head(path));
  }
  EXPECT_EQ(a.truth.sites().size(), b.truth.sites().size());
}

TEST(CorpusGenerator, GeneratedCodeParsesCleanly) {
  for (const ProjectProfile& profile : AllProfiles()) {
    GeneratedApp app = GenerateApp(profile.Scaled(0.1));
    Project project = Project::FromRepository(app.repo);
    EXPECT_FALSE(project.diags().HasErrors())
        << profile.name << ": " << project.diags().Render(project.sources()).substr(0, 1500);
  }
}

TEST(CorpusGenerator, EverySiteLineMatchesLedger) {
  GeneratedApp app = GenerateApp(OpensslProfile().Scaled(0.15));
  Project project = Project::FromRepository(app.repo);
  // Every site's recorded line must exist in the generated file.
  for (const GtSite& site : app.truth.sites()) {
    FileId file = project.sources().FindByPath(site.file);
    ASSERT_NE(file, kInvalidFileId) << site.file;
    EXPECT_LE(site.line, project.sources().NumLines(file));
  }
}

TEST(CorpusGenerator, BlameGivesCrossAuthorsForCrossSites) {
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.15));
  Project project = Project::FromRepository(app.repo);
  AnalysisReport report = Analysis().Run(project, &app.repo);
  // Every reported finding must be cross-scope by construction.
  for (const UnusedDefCandidate& cand : report.findings) {
    EXPECT_TRUE(cand.cross_scope);
    EXPECT_NE(cand.def_author, kInvalidAuthor);
  }
}

TEST(CorpusGenerator, NoUnexpectedFindings) {
  // Every ValueCheck finding (and every candidate, pruned or not) must map to
  // a ledger site: the generator's background code is clean.
  for (const ProjectProfile& profile : AllProfiles()) {
    AppRun run = RunApp(profile.Scaled(0.1));
    ToolEval eval = EvaluateLocations(run.app.truth, "VC", LocationsOf(run.report));
    EXPECT_EQ(eval.unmatched, 0) << profile.name;
  }
}

TEST(CorpusGenerator, ExpectationsHoldPerSite) {
  AppRun run = RunApp(MysqlProfile().Scaled(0.05));
  std::set<std::pair<std::string, int>> reported;
  for (const UnusedDefCandidate& cand : run.report.findings) {
    reported.insert({cand.file, cand.def_loc.line});
  }
  int checked = 0;
  for (const GtSite& site : run.app.truth.sites()) {
    bool is_reported = reported.count({site.file, site.line}) > 0;
    bool expected = site.expect_cross_scope && !site.expect_pruned;
    // Peer-pruned populations can keep marginal groups below threshold at
    // tiny scales; skip them, check every other category strictly.
    if (site.expect_prune_reason == PruneReason::kPeerDefinition) {
      continue;
    }
    EXPECT_EQ(is_reported, expected)
        << SiteCategoryName(site.category) << " at " << site.file << ":" << site.line;
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

// --- Full-profile reproduction (the paper's tables, exactly) --------------------

struct PaperRow {
  const char* name;
  int found;
  int real;
  int orig;
  int config;
  int cursor;
  int hints;
  int peer;
};

constexpr PaperRow kPaperRows[] = {
    {"Linux", 63, 44, 259, 1, 22, 46, 127},
    {"NFS-ganesha", 22, 18, 898, 7, 7, 839, 23},
    {"MySQL", 99, 74, 7743, 37, 83, 3031, 4493},
    {"OpenSSL", 26, 18, 642, 18, 74, 322, 202},
};

TEST(Reproduction, Table2AndTable4PerApplication) {
  auto profiles = AllProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    AppRun run = RunApp(profiles[i]);
    const PaperRow& row = kPaperRows[i];
    EXPECT_EQ(run.app.name, row.name);
    EXPECT_EQ(static_cast<int>(run.report.findings.size()), row.found) << row.name;
    ToolEval eval = EvaluateLocations(run.app.truth, "VC", LocationsOf(run.report));
    EXPECT_EQ(eval.real, row.real) << row.name;
    EXPECT_EQ(eval.unmatched, 0) << row.name;
    EXPECT_EQ(run.report.prune_stats.original, row.orig) << row.name;
    EXPECT_EQ(run.report.prune_stats.config_dependency, row.config) << row.name;
    EXPECT_EQ(run.report.prune_stats.cursor, row.cursor) << row.name;
    EXPECT_EQ(run.report.prune_stats.unused_hints, row.hints) << row.name;
    EXPECT_EQ(run.report.prune_stats.peer_definition, row.peer) << row.name;
  }
}

TEST(Reproduction, Table5ToolComparison) {
  struct Expected {
    const char* app;
    bool infer_ok;
    int infer_found, infer_real;
    bool smatch_ok;
    int smatch_found, smatch_real;
    int cov_found, cov_real;
  };
  const Expected expected[] = {
      {"Linux", false, 0, 0, true, 147, 28, 157, 56},
      {"NFS-ganesha", true, 8, 2, false, 0, 0, 3, 3},
      {"MySQL", true, 45, 9, false, 0, 0, 4, 1},
      {"OpenSSL", true, 13, 3, false, 0, 0, 6, 4},
  };

  auto profiles = AllProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    GeneratedApp app = GenerateApp(profiles[i]);
    Project project = Project::FromRepository(app.repo);
    const Expected& e = expected[i];
    AnalysisReport report = RunBaselines(project, app.traits);

    // Clang finds nothing anywhere (§8.4.1: maintainers already clean its
    // warnings).
    ToolEval clang_eval = EvaluateChecker(app.truth, "Clang", report, "baseline-clang");
    EXPECT_EQ(clang_eval.found, 0) << e.app;

    ToolEval infer_eval = EvaluateChecker(app.truth, "Infer", report, "baseline-infer");
    EXPECT_EQ(infer_eval.ok, e.infer_ok) << e.app << ": " << infer_eval.error;
    if (e.infer_ok) {
      EXPECT_EQ(infer_eval.found, e.infer_found) << e.app;
      EXPECT_EQ(infer_eval.real, e.infer_real) << e.app;
    }

    ToolEval smatch_eval = EvaluateChecker(app.truth, "Smatch", report, "baseline-smatch");
    EXPECT_EQ(smatch_eval.ok, e.smatch_ok) << e.app << ": " << smatch_eval.error;
    if (e.smatch_ok) {
      EXPECT_EQ(smatch_eval.found, e.smatch_found) << e.app;
      EXPECT_EQ(smatch_eval.real, e.smatch_real) << e.app;
    }

    ToolEval cov_eval = EvaluateChecker(app.truth, "Coverity", report, "baseline-coverity");
    EXPECT_EQ(cov_eval.found, e.cov_found) << e.app;
    EXPECT_EQ(cov_eval.real, e.cov_real) << e.app;
  }
}

TEST(Reproduction, TotalsMatchPaperHeadline) {
  // 210 reported, 154 confirmed, 26% false positives; the ablated authorship
  // pool is ~2259 (§8.5.1).
  int found = 0;
  int real = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    AppRun run = RunApp(profile);
    found += static_cast<int>(run.report.findings.size());
    ToolEval eval = EvaluateLocations(run.app.truth, "VC", LocationsOf(run.report));
    real += eval.real;
  }
  EXPECT_EQ(found, 210);
  EXPECT_EQ(real, 154);
  EXPECT_NEAR(1.0 - static_cast<double>(real) / found, 0.26, 0.01);
}

TEST(Reproduction, WithoutAuthorshipPoolNear2259) {
  int pool = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    AnalysisOptions options;
    options.cross_scope_only = false;
    AppRun run = RunApp(profile, options);
    pool += static_cast<int>(run.report.findings.size());
  }
  EXPECT_NEAR(pool, 2259, 25);
}

TEST(Reproduction, RecallOnPriorBugs) {
  // §8.3.2: of the 39 known prior bugs, 37 detected; 2 lost to peer pruning.
  int total = 0;
  int detected = 0;
  int missed_by_peer = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    AppRun run = RunApp(profile);
    std::set<std::pair<std::string, int>> found;
    for (const UnusedDefCandidate& cand : run.report.findings) {
      found.insert({cand.file, cand.def_loc.line});
    }
    for (const GtSite& site : run.app.truth.sites()) {
      if (!site.prior_bug) {
        continue;
      }
      ++total;
      if (found.count({site.file, site.line}) > 0) {
        ++detected;
      } else if (site.expect_prune_reason == PruneReason::kPeerDefinition) {
        ++missed_by_peer;
      }
    }
  }
  EXPECT_EQ(total, 39);
  EXPECT_EQ(detected, 37);
  EXPECT_EQ(missed_by_peer, 2);
}

TEST(Reproduction, Figure9PrecisionAtTop10) {
  // 97.5% of the 40 top-10 findings (10 per application) are confirmed bugs.
  int real = 0;
  int total = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    AppRun run = RunApp(profile);
    for (const UnusedDefCandidate& cand : run.report.Top(10)) {
      ++total;
      const GtSite* site = run.app.truth.Match(cand.file, cand.def_loc.line);
      real += (site != nullptr && site->is_real_bug) ? 1 : 0;
    }
  }
  EXPECT_EQ(total, 40);
  EXPECT_EQ(real, 39);
}

TEST(Reproduction, RankingAblationsDropBugYield) {
  // Table 6's shape: every ablation finds at most as many top-20 bugs as the
  // full system, and removing authorship hurts the most.
  int full = 0;
  int no_auth = 0;
  int no_fam = 0;
  for (const ProjectProfile& profile : AllProfiles()) {
    auto count_top20 = [](const AppRun& run) {
      int real = 0;
      for (const UnusedDefCandidate& cand : run.report.Top(20)) {
        const GtSite* site = run.app.truth.Match(cand.file, cand.def_loc.line);
        real += (site != nullptr && site->is_real_bug) ? 1 : 0;
      }
      return real;
    };
    full += count_top20(RunApp(profile));
    AnalysisOptions na;
    na.cross_scope_only = false;
    no_auth += count_top20(RunApp(profile, na));
    AnalysisOptions nf;
    nf.ranking.enabled = false;
    no_fam += count_top20(RunApp(profile, nf));
  }
  EXPECT_EQ(full, 73);  // paper: 74
  EXPECT_LT(no_fam, full);
  EXPECT_LT(no_auth, no_fam);
}

TEST(Reproduction, ScaledProfilesPreserveOrdering) {
  // Down-scaled corpora (fast CI mode) keep the qualitative result: VC finds
  // more real bugs than every baseline with a lower FP rate.
  GeneratedApp app = GenerateApp(MysqlProfile().Scaled(0.2));
  Project project = Project::FromRepository(app.repo);
  AnalysisOptions vc_options;
  vc_options.checkers = {"unused-def"};
  AnalysisReport report = Analysis(vc_options).Run(project, &app.repo);
  ToolEval vc_eval = EvaluateLocations(app.truth, "VC", LocationsOf(report));
  ToolEval infer_eval = EvaluateChecker(app.truth, "Infer",
                                        RunBaselines(project, app.traits), "baseline-infer");
  EXPECT_GT(vc_eval.real, infer_eval.real);
  EXPECT_LT(vc_eval.FpRate(), infer_eval.FpRate());
}

// --- Checker-framework bug classes: exact per-checker precision/recall ----------

// A dedicated profile (not one of the paper's four) whose populations target
// the non-unused-def checkers. Because every site is labeled at injection,
// precision and recall per checker are exact, like the paper tables above.
ProjectProfile CheckerEvalProfile() {
  ProjectProfile p;
  p.name = "CheckerEval";
  p.seed = 0xc4ec;
  ProfileCounts& c = p.counts;
  c.double_overwrite = 6;
  c.dead_global_store = 5;
  c.out_param_unused = 4;
  c.stale_copy = 5;
  c.filler_functions = 25;
  c.maintainers = 4;
  c.drive_by = 12;
  return p;
}

TEST(CheckerFramework, PerCheckerPrecisionRecall) {
  GeneratedApp app = GenerateApp(CheckerEvalProfile());
  Project project = Project::FromRepository(app.repo);
  ASSERT_FALSE(project.diags().HasErrors())
      << project.diags().Render(project.sources()).substr(0, 2000);
  // Default checker set (every non-baseline checker), full pipeline.
  AnalysisReport report = Analysis().Run(project, &app.repo);

  struct Expected {
    const char* checker;
    SiteCategory category;
    int count;
  };
  const Expected expected[] = {
      {"double-overwrite", SiteCategory::kRealDoubleOverwrite, 6},
      {"dead-global-store", SiteCategory::kRealDeadGlobalStore, 5},
      {"out-param-unused", SiteCategory::kRealOutParamUnused, 4},
      {"stale-copy", SiteCategory::kRealStaleCopy, 5},
  };
  for (const Expected& e : expected) {
    ASSERT_EQ(app.truth.CountCategory(e.category), e.count) << e.checker;
    ToolEval eval = EvaluateChecker(app.truth, e.checker, report, e.checker);
    EXPECT_TRUE(eval.ok) << e.checker << ": " << eval.error;
    EXPECT_EQ(eval.found, e.count) << e.checker;     // recall: every site reported
    EXPECT_EQ(eval.real, e.count) << e.checker;      // precision: every report real
    EXPECT_EQ(eval.unmatched, 0) << e.checker;       // nothing outside the ledger
  }

  // The populations are invisible to the unused-definition detector: each
  // checker's findings are its own class, not another detector's echo.
  ToolEval unused = EvaluateChecker(app.truth, "unused-def", report, "unused-def");
  EXPECT_EQ(unused.found, 0);

  // Checker attribution on every finding, with disjoint fingerprint spaces.
  std::set<std::string> keys;
  for (const UnusedDefCandidate& cand : report.findings) {
    EXPECT_FALSE(cand.checker.empty());
    EXPECT_TRUE(keys.insert(cand.checker + "\x1f" + cand.fingerprint).second)
        << cand.checker << " " << cand.fingerprint;
  }
  EXPECT_EQ(static_cast<int>(report.findings.size()), 6 + 5 + 4 + 5);
}

}  // namespace
}  // namespace vc

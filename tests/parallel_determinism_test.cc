// The parallel pipeline's determinism contract: findings, ranking, raw
// candidates, prune statistics, and diagnostics are byte-identical at any
// --jobs value. These tests run the same corpora at jobs = 1, 2, 8 and
// compare against the serial baseline.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/incremental.h"
#include "src/core/report_formats.h"
#include "src/corpus/generator.h"
#include "src/corpus/profile.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace vc {
namespace {

AnalysisOptions WithJobs(int jobs) {
  AnalysisOptions options;
  options.jobs = jobs;
  return options;
}

// Everything order-sensitive a report carries, serialized for comparison.
std::string Fingerprint(const AnalysisReport& report) {
  std::string fp = report.ToCsv();
  fp += "|non_cross_scope=" + std::to_string(report.non_cross_scope);
  fp += "|pruned=" + std::to_string(report.prune_stats.TotalPruned());
  fp += "|original=" + std::to_string(report.prune_stats.original);
  for (const UnusedDefCandidate& cand : report.raw_candidates) {
    fp += "|" + cand.file + ":" + std::to_string(cand.def_loc.line) + ":" + cand.function +
          ":" + cand.slot_name + ":" + CandidateKindName(cand.kind) + ":" +
          PruneReasonName(cand.pruned_by);
  }
  return fp;
}

TEST(ParallelDeterminism, RepositoryPipelineIsByteIdenticalAcrossJobs) {
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.15));
  AnalysisReport baseline = Analysis(WithJobs(1)).RunOnRepository(app.repo);
  ASSERT_FALSE(baseline.raw_candidates.empty());
  std::string expected = Fingerprint(baseline);

  for (int jobs : {2, 8}) {
    AnalysisReport report = Analysis(WithJobs(jobs)).RunOnRepository(app.repo);
    EXPECT_EQ(Fingerprint(report), expected) << "jobs=" << jobs;
    EXPECT_EQ(report.ToCsv(), baseline.ToCsv()) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, SecondCorpusCsvIdenticalAcrossJobs) {
  GeneratedApp app = GenerateApp(OpensslProfile().Scaled(0.1));
  std::string expected = Analysis(WithJobs(1)).RunOnRepository(app.repo).ToCsv();
  EXPECT_EQ(Analysis(WithJobs(2)).RunOnRepository(app.repo).ToCsv(), expected);
  EXPECT_EQ(Analysis(WithJobs(8)).RunOnRepository(app.repo).ToCsv(), expected);
}

TEST(ParallelDeterminism, DiagnosticsMergeInFileOrder) {
  // Files with parse errors interleaved with clean ones: the rendered
  // diagnostic stream must not depend on which worker finished first.
  std::vector<std::pair<std::string, std::string>> files;
  for (int i = 0; i < 12; ++i) {
    std::string name = "f" + std::to_string(i) + ".c";
    if (i % 3 == 1) {
      files.emplace_back(name, "int broken_" + std::to_string(i) + "( {{{\n");
    } else {
      files.emplace_back(name, "int ok_" + std::to_string(i) + "(int x) { return x; }\n");
    }
  }
  Analysis serial(WithJobs(1));
  Project base = serial.BuildFromSources(files);
  ASSERT_TRUE(base.diags().HasErrors());
  std::string expected = base.diags().Render(base.sources());

  for (int jobs : {2, 8}) {
    Analysis parallel(WithJobs(jobs));
    Project project = parallel.BuildFromSources(files);
    EXPECT_EQ(project.diags().Render(project.sources()), expected) << "jobs=" << jobs;
    EXPECT_EQ(project.diags().ErrorCount(), base.diags().ErrorCount()) << "jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, IncrementalFindingsIdenticalAcrossJobs) {
  GeneratedApp app = GenerateApp(MysqlProfile().Scaled(0.1));
  int commits = app.repo.NumCommits();
  ASSERT_GT(commits, 0);
  CommitId last = commits - 1;

  Analysis serial(WithJobs(1));
  IncrementalResult baseline = serial.RunOnCommit(app.repo, last);

  for (int jobs : {2, 8}) {
    IncrementalResult result = Analysis(WithJobs(jobs)).RunOnCommit(app.repo, last);
    ASSERT_EQ(result.findings().size(), baseline.findings().size()) << "jobs=" << jobs;
    EXPECT_EQ(result.files_reparsed, baseline.files_reparsed);
    EXPECT_EQ(result.functions_total, baseline.functions_total);
    EXPECT_EQ(result.functions_dirty, baseline.functions_dirty);
    for (size_t i = 0; i < baseline.findings().size(); ++i) {
      EXPECT_EQ(result.findings()[i].file, baseline.findings()[i].file);
      EXPECT_EQ(result.findings()[i].def_loc.line, baseline.findings()[i].def_loc.line);
      EXPECT_EQ(result.findings()[i].slot_name, baseline.findings()[i].slot_name);
      EXPECT_EQ(result.findings()[i].kind, baseline.findings()[i].kind);
      EXPECT_EQ(result.findings()[i].fingerprint, baseline.findings()[i].fingerprint);
    }
  }
}

TEST(ParallelDeterminism, ExplicitCheckerListMatchesDefaultRun) {
  // The default checker set and the same set spelled out via options.checkers
  // are the same run: resolution is by registry order, not request spelling.
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.1));
  AnalysisReport via_default = Analysis(WithJobs(4)).RunOnRepository(app.repo);
  AnalysisOptions spelled = WithJobs(4);
  spelled.checkers = {"stale-copy", "unused-def", "out-param-unused", "dead-global-store",
                      "double-overwrite"};
  AnalysisReport via_spelled = Analysis(spelled).RunOnRepository(app.repo);
  EXPECT_EQ(via_spelled.ToCsv(), via_default.ToCsv());
  EXPECT_EQ(via_spelled.checkers, via_default.checkers);
}

TEST(ParallelDeterminism, JsonReportCarriesSchemaV4Metadata) {
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.1));
  AnalysisReport report = Analysis(WithJobs(2)).RunOnRepository(app.repo);
  std::string json = ReportToJson(report, &app.repo);
  EXPECT_NE(json.find("\"schema_version\":8"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"parse_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"detect_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":{\"warnings\":"), std::string::npos);
  // collect_metrics was off for this run: no metrics block.
  EXPECT_EQ(json.find("\"metrics\":"), std::string::npos);
}

TEST(ParallelDeterminism, ObservabilityDoesNotPerturbFindings) {
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.15));
  // Baseline: observability fully off, serial.
  std::string expected = Fingerprint(Analysis(WithJobs(1)).RunOnRepository(app.repo));

  TraceCollector& collector = TraceCollector::Global();
  for (int jobs : {1, 2, 8}) {
    AnalysisOptions options = WithJobs(jobs);
    options.collect_metrics = true;
    collector.Enable();
    AnalysisReport report = Analysis(options).RunOnRepository(app.repo);
    collector.Disable();

    EXPECT_EQ(Fingerprint(report), expected) << "jobs=" << jobs;

    // The StageMetrics block is populated and its deterministic counters
    // agree across job counts (timings legitimately vary).
    EXPECT_TRUE(report.stage.collected);
    EXPECT_GT(report.stage.files_parsed, 0u);
    EXPECT_GT(report.stage.functions_analyzed, 0u);
    EXPECT_EQ(report.stage.candidates_detected, report.raw_candidates.size());

    // Spans were collected from the traced run, and none were dropped: the
    // pipeline's span volume sits far below the per-thread buffer cap, so any
    // drop here means the cap logic (or a span flood) regressed.
    EXPECT_GT(collector.EventCount(), 0u) << "jobs=" << jobs;
    EXPECT_EQ(collector.dropped_count(), 0u) << "jobs=" << jobs;
    std::string trace = collector.ToJson();
    EXPECT_NE(trace.find("\"analysis.run\""), std::string::npos);
    EXPECT_NE(trace.find("\"detect\""), std::string::npos);
    collector.Clear();
  }
  MetricsRegistry::Global().Disable();
}

TEST(ParallelDeterminism, MemoryAccountingIsByteIdenticalAcrossJobs) {
  GeneratedApp app = GenerateApp(NfsGaneshaProfile().Scaled(0.15));
  AnalysisOptions serial = WithJobs(1);
  serial.collect_metrics = true;
  AnalysisReport baseline = Analysis(serial).RunOnRepository(app.repo);
  ASSERT_TRUE(baseline.memory.collected);
  EXPECT_GT(baseline.memory.TrackedBytes(), 0u);
  EXPECT_GT(baseline.memory.TrackedObjects(), 0u);

  for (int jobs : {2, 8}) {
    AnalysisOptions options = WithJobs(jobs);
    options.collect_metrics = true;
    AnalysisReport report = Analysis(options).RunOnRepository(app.repo);
    ASSERT_TRUE(report.memory.collected) << "jobs=" << jobs;
    // Every byte and object count — totals, per category, and per stage —
    // is exact; only the RSS samples are allowed to differ.
    EXPECT_EQ(report.memory.TrackedBytes(), baseline.memory.TrackedBytes()) << "jobs=" << jobs;
    EXPECT_EQ(report.memory.TrackedObjects(), baseline.memory.TrackedObjects());
    for (int c = 0; c < kMemCategoryCount; ++c) {
      EXPECT_EQ(report.memory.categories[c].bytes, baseline.memory.categories[c].bytes)
          << "jobs=" << jobs << " category=" << c;
      EXPECT_EQ(report.memory.categories[c].objects, baseline.memory.categories[c].objects)
          << "jobs=" << jobs << " category=" << c;
    }
    ASSERT_EQ(report.memory.stages.size(), baseline.memory.stages.size());
    for (size_t s = 0; s < baseline.memory.stages.size(); ++s) {
      EXPECT_EQ(report.memory.stages[s].stage, baseline.memory.stages[s].stage);
      EXPECT_EQ(report.memory.stages[s].tracked_bytes_delta,
                baseline.memory.stages[s].tracked_bytes_delta)
          << "jobs=" << jobs << " stage=" << baseline.memory.stages[s].stage;
      EXPECT_EQ(report.memory.stages[s].tracked_bytes_peak,
                baseline.memory.stages[s].tracked_bytes_peak)
          << "jobs=" << jobs << " stage=" << baseline.memory.stages[s].stage;
    }
  }
  MetricsRegistry::Global().Disable();
}

TEST(ParallelDeterminism, MetricsCountersAggregateInMergeOrder) {
  GeneratedApp app = GenerateApp(OpensslProfile().Scaled(0.1));
  AnalysisOptions serial = WithJobs(1);
  serial.collect_metrics = true;
  AnalysisReport baseline = Analysis(serial).RunOnRepository(app.repo);

  for (int jobs : {2, 8}) {
    AnalysisOptions options = WithJobs(jobs);
    options.collect_metrics = true;
    AnalysisReport report = Analysis(options).RunOnRepository(app.repo);
    EXPECT_EQ(report.stage.files_parsed, baseline.stage.files_parsed) << "jobs=" << jobs;
    EXPECT_EQ(report.stage.functions_analyzed, baseline.stage.functions_analyzed);
    EXPECT_EQ(report.stage.candidates_detected, baseline.stage.candidates_detected);
    EXPECT_EQ(report.stage.rank_scored, baseline.stage.rank_scored);
    EXPECT_EQ(report.stage.rank_unknown, baseline.stage.rank_unknown);
    EXPECT_EQ(report.diagnostic_warnings, baseline.diagnostic_warnings);
    EXPECT_EQ(report.diagnostic_errors, baseline.diagnostic_errors);
  }
  MetricsRegistry::Global().Disable();
}

}  // namespace
}  // namespace vc

// Detector unit tests: each unused-definition shape the paper's algorithm
// must find, and each shape it must not report.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/detector.h"

namespace vc {
namespace {

struct Detected {
  Project project;
  std::vector<UnusedDefCandidate> candidates;
};

Detected Detect(const std::string& code) {
  Detected d;
  d.project = Project::FromSources({{"test.c", code}});
  EXPECT_FALSE(d.project.diags().HasErrors())
      << d.project.diags().Render(d.project.sources());
  d.candidates = DetectAll(d.project);
  return d;
}

const UnusedDefCandidate* FindSlot(const Detected& d, const std::string& slot) {
  for (const UnusedDefCandidate& cand : d.candidates) {
    if (cand.slot_name == slot) {
      return &cand;
    }
  }
  return nullptr;
}

TEST(Detector, CleanFunctionHasNoCandidates) {
  Detected d = Detect("int f(int a, int b) { int s = a + b; return s; }");
  EXPECT_TRUE(d.candidates.empty());
}

TEST(Detector, OverwrittenLocalDetected) {
  Detected d = Detect(
      "int g(int);\n"
      "int f(int m) {\n"
      "  int ret = g(m);\n"
      "  ret = g(m + 1);\n"
      "  return ret;\n"
      "}");
  ASSERT_EQ(d.candidates.size(), 1u);
  const UnusedDefCandidate& cand = d.candidates[0];
  EXPECT_EQ(cand.slot_name, "ret");
  EXPECT_EQ(cand.def_loc.line, 3);
  EXPECT_TRUE(cand.overwritten);
  ASSERT_EQ(cand.overwriter_locs.size(), 1u);
  EXPECT_EQ(cand.overwriter_locs[0].line, 4);
  ASSERT_NE(cand.origin_callee, nullptr);
  EXPECT_EQ(cand.origin_callee->name, "g");
}

TEST(Detector, UseBeforeOverwriteNotReported) {
  Detected d = Detect(
      "int g(int);\n"
      "int f(int m) {\n"
      "  int ret = g(m);\n"
      "  g(ret);\n"  // uses ret before the overwrite
      "  ret = g(m + 1);\n"
      "  return ret;\n"
      "}");
  // Only the ignored call result of g(ret) is a candidate; ret's first
  // definition is used.
  for (const UnusedDefCandidate& cand : d.candidates) {
    EXPECT_NE(cand.slot_name, std::string("ret"));
  }
}

TEST(Detector, OverwriteOnOnlyOneBranchNotReported) {
  // Flow-sensitivity: a use on the other path keeps the definition live.
  Detected d = Detect(
      "int g(int);\n"
      "int f(int m, int c) {\n"
      "  int ret = g(m);\n"
      "  if (c) {\n"
      "    ret = 0;\n"
      "  } else {\n"
      "    g(ret);\n"
      "  }\n"
      "  return ret;\n"
      "}");
  // Neither definition of ret is unused: the initial one is read in the
  // else branch, the then-branch one by the return. Only the ignored result
  // of g(ret) remains.
  EXPECT_EQ(FindSlot(d, "ret"), nullptr);
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_TRUE(d.candidates[0].is_synthetic);
}

TEST(Detector, OverwriteOnBothBranchesReported) {
  Detected d = Detect(
      "int g(int);\n"
      "int f(int m, int c) {\n"
      "  int ret = g(m);\n"
      "  if (c) {\n"
      "    ret = 1;\n"
      "  } else {\n"
      "    ret = 2;\n"
      "  }\n"
      "  return ret;\n"
      "}");
  const UnusedDefCandidate* cand = nullptr;
  for (const UnusedDefCandidate& c : d.candidates) {
    if (c.slot_name == "ret" && c.def_loc.line == 3) {
      cand = &c;
    }
  }
  ASSERT_NE(cand, nullptr);
  EXPECT_EQ(cand->overwriter_locs.size(), 2u);
}

TEST(Detector, UnusedParamDetected) {
  Detected d = Detect("int f(int used, int ignored) { return used; }");
  const UnusedDefCandidate* cand = FindSlot(d, "ignored");
  ASSERT_NE(cand, nullptr);
  EXPECT_TRUE(cand->is_param);
  EXPECT_FALSE(cand->overwritten);
  EXPECT_EQ(d.candidates.size(), 1u);
}

TEST(Detector, OverwrittenParamDetected) {
  Detected d = Detect("int f(int p, int bufsz) { bufsz = 1400; return bufsz + p; }");
  const UnusedDefCandidate* cand = FindSlot(d, "bufsz");
  ASSERT_NE(cand, nullptr);
  EXPECT_TRUE(cand->is_param);
  EXPECT_TRUE(cand->overwritten);
  EXPECT_EQ(cand->overwriter_locs[0].line, 1);
}

TEST(Detector, IgnoredCallResultDetected) {
  Detected d = Detect("int g(int);\nvoid f(int a) { g(a); }");
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_TRUE(d.candidates[0].is_synthetic);
  EXPECT_TRUE(d.candidates[0].FromCall());
}

TEST(Detector, FieldDefinitionDetected) {
  Detected d = Detect(
      "struct s { int a; int b; };\n"
      "int f(int v) {\n"
      "  struct s x;\n"
      "  x.a = v;\n"
      "  x.a = 0;\n"
      "  x.b = v;\n"
      "  return x.a + x.b;\n"
      "}");
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].slot_name, "x#0");
  EXPECT_TRUE(d.candidates[0].is_field_slot);
  EXPECT_EQ(d.candidates[0].def_loc.line, 4);
}

TEST(Detector, AddressTakenSuppressed) {
  Detected d = Detect(
      "void fill(int *p);\n"
      "int f(int v) {\n"
      "  int out = v;\n"
      "  fill(&out);\n"
      "  out = 0;\n"
      "  return out;\n"
      "}");
  EXPECT_EQ(FindSlot(d, "out"), nullptr);
}

TEST(Detector, GlobalsSkipped) {
  Detected d = Detect(
      "int g_state;\n"
      "void f(int v) {\n"
      "  g_state = v;\n"
      "  g_state = v + 1;\n"
      "}");
  EXPECT_TRUE(d.candidates.empty());
}

TEST(Detector, DeadStoreAtFunctionEndDetected) {
  Detected d = Detect(
      "int g(int);\n"
      "int f(int a) {\n"
      "  int r = a + 1;\n"
      "  int last = g(r);\n"  // never used afterwards
      "  return r;\n"
      "}");
  const UnusedDefCandidate* cand = FindSlot(d, "last");
  ASSERT_NE(cand, nullptr);
  EXPECT_FALSE(cand->overwritten);
}

TEST(Detector, LoopCarriedDefNotReported) {
  Detected d = Detect(
      "int f(int n) {\n"
      "  int acc = 0;\n"
      "  while (n > 0) {\n"
      "    acc = acc + n;\n"
      "    n = n - 1;\n"
      "  }\n"
      "  return acc;\n"
      "}");
  EXPECT_TRUE(d.candidates.empty());
}

TEST(Detector, CursorShapeAnnotated) {
  Detected d = Detect(
      "void f(char *o, char *base, int c) {\n"
      "  *o = c;\n"
      "  o = o + 1;\n"
      "  *o = 0;\n"
      "  o = o + 1;\n"
      "  o = base;\n"
      "  *o = 9;\n"
      "}");
  const UnusedDefCandidate* cand = FindSlot(d, "o");
  ASSERT_NE(cand, nullptr);
  EXPECT_TRUE(cand->is_increment);
  EXPECT_EQ(cand->increment_amount, 1);
  EXPECT_EQ(cand->def_loc.line, 5);
}

TEST(Detector, MultipleCandidatesInOneFunction) {
  Detected d = Detect(
      "int g(int);\n"
      "int f(int m, int unused_arg) {\n"
      "  int a = g(m);\n"
      "  a = g(m + 1);\n"
      "  g(a);\n"
      "  return a;\n"
      "}");
  // a's first def (overwritten), the ignored g(a) result, and unused_arg.
  EXPECT_EQ(d.candidates.size(), 3u);
}

TEST(Detector, CandidateCarriesFileAndFunction) {
  Detected d = Detect("int g(int);\nvoid f(int a) { g(a); }");
  ASSERT_EQ(d.candidates.size(), 1u);
  EXPECT_EQ(d.candidates[0].file, "test.c");
  EXPECT_EQ(d.candidates[0].function, "f");
}

TEST(Detector, VoidCastSuppressesIgnoredResult) {
  Detected d = Detect("int g(int);\nvoid f(int a) { (void)g(a); }");
  EXPECT_TRUE(d.candidates.empty());
}

}  // namespace
}  // namespace vc

// Property-based tests (parameterized seed sweeps).
//
// The centerpiece is an independent oracle for the detector: for a store to
// be a genuine unused definition, no load of its slot may be reachable in the
// CFG before an intervening store kills it. The oracle answers that by exact
// graph reachability (per-block behavior is deterministic: a block either
// uses the slot first, kills it first, or passes through), so the detector
// can be checked for BOTH soundness (everything reported is dead) and
// completeness (every dead store on an unsuppressed slot is reported) on
// randomly generated programs.

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "src/core/detector.h"
#include "src/core/ranking.h"
#include "src/dataflow/liveness.h"
#include "src/support/rng.h"
#include "src/vcs/diff.h"
#include "src/vcs/repository.h"

namespace vc {
namespace {

// --- Random Mini-C program generation -----------------------------------------

class ProgramGen {
 public:
  explicit ProgramGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    std::string code = "int ext_fn(int v);\n";
    int funcs = static_cast<int>(rng_.NextInRange(1, 3));
    for (int i = 0; i < funcs; ++i) {
      code += Function(i);
    }
    return code;
  }

 private:
  std::string Var() {
    return vars_[rng_.NextBelow(vars_.size())];
  }

  std::string Expr(int depth = 0) {
    switch (rng_.NextBelow(depth > 1 ? 2 : 4)) {
      case 0:
        return Var();
      case 1:
        return std::to_string(rng_.NextInRange(0, 9));
      case 2:
        return "(" + Expr(depth + 1) + " + " + Expr(depth + 1) + ")";
      default:
        return "(" + Expr(depth + 1) + " - " + Expr(depth + 1) + ")";
    }
  }

  std::string Stmts(int depth, int count) {
    std::string out;
    for (int i = 0; i < count; ++i) {
      std::string pad(static_cast<size_t>(depth) * 2 + 2, ' ');
      switch (rng_.NextBelow(depth >= 2 ? 3 : 7)) {
        case 0:
          out += pad + Var() + " = " + Expr() + ";\n";
          break;
        case 1:
          out += pad + Var() + " = ext_fn(" + Expr() + ");\n";
          break;
        case 2:
          out += pad + "ext_fn(" + Expr() + ");\n";
          break;
        case 3:
          out += pad + "if (" + Expr() + " > " + Expr() + ") {\n" +
                 Stmts(depth + 1, static_cast<int>(rng_.NextInRange(1, 3))) + pad + "}";
          if (rng_.NextBool(0.5)) {
            out += " else {\n" + Stmts(depth + 1, static_cast<int>(rng_.NextInRange(1, 2))) +
                   pad + "}";
          }
          out += "\n";
          break;
        case 4:
          out += pad + "while (" + Var() + " > " + std::to_string(rng_.NextInRange(1, 5)) +
                 ") {\n" + Stmts(depth + 1, static_cast<int>(rng_.NextInRange(1, 3))) + pad +
                 "  " + Var() + " = " + Var() + " - 1;\n" + pad + "}\n";
          break;
        case 5: {
          // switch with 1-3 cases (possibly falling through) and a default.
          int arms = static_cast<int>(rng_.NextInRange(1, 3));
          out += pad + "switch (" + Var() + ") {\n";
          for (int a = 0; a < arms; ++a) {
            out += pad + "  case " + std::to_string(a) + ":\n" +
                   Stmts(depth + 2, static_cast<int>(rng_.NextInRange(1, 2)));
            if (rng_.NextBool(0.7)) {
              out += pad + "    break;\n";
            }
          }
          if (rng_.NextBool(0.6)) {
            out += pad + "  default:\n" +
                   Stmts(depth + 2, static_cast<int>(rng_.NextInRange(1, 2)));
          }
          out += pad + "}\n";
          break;
        }
        default:
          out += pad + "do {\n" +
                 Stmts(depth + 1, static_cast<int>(rng_.NextInRange(1, 2))) + pad + "  " +
                 Var() + " = " + Var() + " - 1;\n" + pad + "} while (" + Var() + " > " +
                 std::to_string(rng_.NextInRange(1, 5)) + ");\n";
          break;
      }
    }
    return out;
  }

  std::string Function(int index) {
    vars_ = {"p0", "p1", "a", "b", "c"};
    std::string code = "int fn" + std::to_string(index) + "(int p0, int p1) {\n";
    code += "  int a = 1;\n  int b = p0;\n  int c = 0;\n";
    code += Stmts(0, static_cast<int>(rng_.NextInRange(3, 9)));
    code += "  return " + Expr() + ";\n}\n";
    return code;
  }

  Rng rng_;
  std::vector<std::string> vars_;
};

// --- The oracle ------------------------------------------------------------------

// Block-level behavior of `slot` when entered from the top.
enum class BlockEffect { kUseFirst, kKillFirst, kTransparent };

BlockEffect EffectOf(const BasicBlock& block, SlotId slot, size_t from_index) {
  for (size_t i = from_index; i < block.insts.size(); ++i) {
    const Instruction& inst = block.insts[i];
    if ((inst.op == Opcode::kLoad || inst.op == Opcode::kAddrSlot) && inst.slot == slot) {
      return BlockEffect::kUseFirst;
    }
    if (inst.op == Opcode::kStore && inst.slot == slot) {
      return BlockEffect::kKillFirst;
    }
  }
  return BlockEffect::kTransparent;
}

// True iff a load of `slot` is reachable from just after instruction
// (block_id, index) without passing a store to `slot`.
bool UseReachable(const IrFunction& func, SlotId slot, BlockId block_id, size_t index) {
  BlockEffect first = EffectOf(*func.blocks[block_id], slot, index + 1);
  if (first == BlockEffect::kUseFirst) {
    return true;
  }
  if (first == BlockEffect::kKillFirst) {
    return false;
  }
  std::set<BlockId> visited;
  std::deque<BlockId> queue(func.blocks[block_id]->succs.begin(),
                            func.blocks[block_id]->succs.end());
  while (!queue.empty()) {
    BlockId next = queue.front();
    queue.pop_front();
    if (!visited.insert(next).second) {
      continue;
    }
    switch (EffectOf(*func.blocks[next], slot, 0)) {
      case BlockEffect::kUseFirst:
        return true;
      case BlockEffect::kKillFirst:
        break;
      case BlockEffect::kTransparent:
        for (BlockId succ : func.blocks[next]->succs) {
          queue.push_back(succ);
        }
        break;
    }
  }
  return false;
}

struct DetectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(DetectorProperty, ReportsExactlyTheDeadStores) {
  ProgramGen gen(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  std::string code = gen.Generate();
  Project project = Project::FromSources({{"prog.c", code}});
  ASSERT_FALSE(project.diags().HasErrors())
      << project.diags().Render(project.sources()) << "\n"
      << code;

  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  std::set<std::pair<const IrFunction*, const Instruction*>> reported;
  for (const UnusedDefCandidate& cand : candidates) {
    if (cand.is_param) {
      continue;  // parameters are checked separately below
    }
    // Locate the exact store instruction.
    for (const auto& block : cand.ir_func->blocks) {
      for (const Instruction& inst : block->insts) {
        if (inst.op == Opcode::kStore && inst.slot == cand.slot && inst.loc == cand.def_loc) {
          reported.insert({cand.ir_func, &inst});
        }
      }
    }
  }

  for (const auto& module : project.modules()) {
    for (const auto& func : module->functions) {
      SlotSet taken = ComputeAddressTaken(*func);
      for (const auto& block : func->blocks) {
        for (size_t i = 0; i < block->insts.size(); ++i) {
          const Instruction& inst = block->insts[i];
          if (inst.op != Opcode::kStore) {
            continue;
          }
          const Slot& slot = func->slots[inst.slot];
          if (slot.var != nullptr && slot.var->is_global) {
            continue;
          }
          if (taken.Contains(inst.slot)) {
            continue;  // suppressed by the alias rule
          }
          if (slot.is_synthetic && !inst.is_synthetic_store) {
            continue;
          }
          bool is_reported = reported.count({func.get(), &inst}) > 0;
          bool oracle_dead = !UseReachable(*func, inst.slot, block->id, i);
          EXPECT_EQ(is_reported, oracle_dead)
              << "function " << func->name << " store to " << slot.name << " at line "
              << inst.loc.line << "\n"
              << code;
        }
      }
    }
  }
}

TEST_P(DetectorProperty, ParamCandidatesMatchEntryReachability) {
  ProgramGen gen(static_cast<uint64_t>(GetParam()) * 104729 + 3);
  std::string code = gen.Generate();
  Project project = Project::FromSources({{"prog.c", code}});
  ASSERT_FALSE(project.diags().HasErrors());

  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  for (const auto& module : project.modules()) {
    for (const auto& func : module->functions) {
      SlotSet taken = ComputeAddressTaken(*func);
      for (SlotId param : func->param_slots) {
        if (taken.Contains(param)) {
          continue;
        }
        // Reachability of a use from function entry, before any store.
        bool used;
        BlockEffect entry = EffectOf(*func->blocks[0], param, 0);
        if (entry == BlockEffect::kUseFirst) {
          used = true;
        } else if (entry == BlockEffect::kKillFirst) {
          used = false;
        } else {
          // Probe from a virtual instruction before the entry block by
          // checking reachability from index -1.
          used = UseReachable(*func, param, 0, static_cast<size_t>(-1));
        }
        bool is_candidate = false;
        for (const UnusedDefCandidate& cand : candidates) {
          if (cand.is_param && cand.ir_func == func.get() && cand.slot == param) {
            is_candidate = true;
          }
        }
        EXPECT_EQ(is_candidate, !used) << func->name << " param "
                                       << func->slots[param].name << "\n"
                                       << code;
      }
    }
  }
}

TEST_P(DetectorProperty, DetectionIsDeterministic) {
  ProgramGen gen(static_cast<uint64_t>(GetParam()) * 31 + 5);
  std::string code = gen.Generate();
  Project project = Project::FromSources({{"prog.c", code}});
  std::vector<UnusedDefCandidate> first = DetectAll(project);
  std::vector<UnusedDefCandidate> second = DetectAll(project);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].slot_name, second[i].slot_name);
    EXPECT_EQ(first[i].def_loc, second[i].def_loc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorProperty, ::testing::Range(0, 25));

// --- Diff properties ---------------------------------------------------------------

struct DiffProperty : public ::testing::TestWithParam<int> {};

std::vector<std::string> RandomLines(Rng& rng, int max_lines, int alphabet) {
  std::vector<std::string> lines;
  int n = static_cast<int>(rng.NextInRange(0, max_lines));
  for (int i = 0; i < n; ++i) {
    lines.push_back("line" + std::to_string(rng.NextInRange(0, alphabet)));
  }
  return lines;
}

TEST_P(DiffProperty, RoundTripOnRandomInputs) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 1);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<std::string> a = RandomLines(rng, 30, 8);
    std::vector<std::string> b = RandomLines(rng, 30, 8);
    std::vector<std::string_view> av(a.begin(), a.end());
    std::vector<std::string_view> bv(b.begin(), b.end());
    auto edits = DiffLines(av, bv);
    EXPECT_EQ(ApplyEdits(av, bv, edits), b);
    // Keeps must be genuine matches.
    for (const Edit& edit : edits) {
      if (edit.op == EditOp::kKeep) {
        EXPECT_EQ(a[edit.old_index], b[edit.new_index]);
      }
    }
  }
}

TEST_P(DiffProperty, EditedDerivativeRoundTrips) {
  // b derived from a by random edits: the common case blame exercises.
  Rng rng(static_cast<uint64_t>(GetParam()) * 40503 + 7);
  std::vector<std::string> a = RandomLines(rng, 40, 12);
  std::vector<std::string> b;
  for (const std::string& line : a) {
    if (rng.NextBool(0.1)) {
      continue;  // delete
    }
    b.push_back(line);
    if (rng.NextBool(0.15)) {
      b.push_back("inserted" + std::to_string(rng.NextInRange(0, 1000)));
    }
  }
  std::vector<std::string_view> av(a.begin(), a.end());
  std::vector<std::string_view> bv(b.begin(), b.end());
  EXPECT_EQ(ApplyEdits(av, bv, DiffLines(av, bv)), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffProperty, ::testing::Range(0, 10));

// --- Blame properties -----------------------------------------------------------------

struct BlameProperty : public ::testing::TestWithParam<int> {};

TEST_P(BlameProperty, LineCountConservedAndUniqueLinesExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6364136223846793005ULL + 1442695040888963407ULL);
  Repository repo;
  std::vector<AuthorId> authors;
  for (int i = 0; i < 4; ++i) {
    authors.push_back(repo.AddAuthor("dev" + std::to_string(i)));
  }
  // Evolve a file through random insertions of globally unique lines.
  std::vector<std::pair<std::string, AuthorId>> lines;  // (text, expected author)
  int serial = 0;
  for (int commit = 0; commit < 8; ++commit) {
    AuthorId author = authors[rng.NextBelow(authors.size())];
    int inserts = static_cast<int>(rng.NextInRange(1, 5));
    for (int i = 0; i < inserts; ++i) {
      size_t pos = lines.empty() ? 0 : rng.NextBelow(lines.size() + 1);
      lines.insert(lines.begin() + static_cast<long>(pos),
                   {"unique_line_" + std::to_string(serial++), author});
    }
    std::string content;
    for (const auto& [text, who] : lines) {
      content += text + "\n";
    }
    repo.AddCommit(author, 100 + commit, "evolve", {{"f.c", content}});
  }
  const auto& blame = repo.Blame("f.c");
  ASSERT_EQ(blame.size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(blame[i].author, lines[i].second) << "line " << i << ": " << lines[i].first;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlameProperty, ::testing::Range(0, 10));

// --- Ranking properties ---------------------------------------------------------------

TEST(RankingProperty, OrderIndependentOfInputPermutation) {
  Repository repo;
  AuthorId a0 = repo.AddAuthor("a0");
  AuthorId a1 = repo.AddAuthor("a1");
  repo.AddCommit(a0, 1, "c", {{"x.c", "1\n"}});
  repo.AddCommit(a1, 2, "c", {{"x.c", "1\n2\n"}});

  std::vector<UnusedDefCandidate> candidates;
  for (int i = 0; i < 12; ++i) {
    UnusedDefCandidate cand;
    cand.file = "x.c";
    cand.def_loc = {0, i + 1, 1};
    cand.responsible_author = (i % 2 == 0) ? a0 : a1;
    candidates.push_back(cand);
  }
  std::vector<UnusedDefCandidate> shuffled = candidates;
  Rng rng(5);
  rng.Shuffle(shuffled);
  RankCandidates(candidates, &repo);
  RankCandidates(shuffled, &repo);
  ASSERT_EQ(candidates.size(), shuffled.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].def_loc, shuffled[i].def_loc);
  }
}

TEST(RankingProperty, MoreAcceptancesLowerTheScore) {
  Repository repo;
  AuthorId author = repo.AddAuthor("author");
  AuthorId other = repo.AddAuthor("other");
  repo.AddCommit(author, 1, "c", {{"x.c", "1\n"}});
  double previous = DokScoreFor(repo, author, "x.c");
  std::string content = "1\n";
  for (int i = 0; i < 6; ++i) {
    content += std::to_string(i) + "\n";
    repo.AddCommit(other, 2 + i, "c", {{"x.c", content}});
    double current = DokScoreFor(repo, author, "x.c");
    EXPECT_LT(current, previous);
    previous = current;
  }
}

}  // namespace
}  // namespace vc

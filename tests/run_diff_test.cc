// Run-to-run differencing: fingerprint classification, regression thresholds
// (new findings, stage timing ratio+floor, prune-rate drop), and the
// determinism contract of the default text rendering.

#include "src/core/run_diff.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/analysis.h"

namespace vc {
namespace {

LedgerFinding Finding(const std::string& fingerprint, const std::string& file = "a.c",
                      const std::string& variable = "ret") {
  LedgerFinding finding;
  finding.fingerprint = fingerprint;
  finding.file = file;
  finding.line = 10;
  finding.function = "handle";
  finding.variable = variable;
  finding.kind = "overwritten_def";
  return finding;
}

RunRecord MakeRun(const std::string& id, std::vector<LedgerFinding> findings) {
  RunRecord record;
  record.run_id = id;
  record.findings = std::move(findings);
  record.metrics.collected = true;
  return record;
}

TEST(RunDiff, ClassifiesNewFixedPersistent) {
  RunRecord a = MakeRun("r0001", {Finding("aaaa"), Finding("bbbb")});
  RunRecord b = MakeRun("r0002", {Finding("bbbb"), Finding("cccc")});
  RunDiff diff = ComputeRunDiff(a, b);

  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].fingerprint, "cccc");
  ASSERT_EQ(diff.fixed.size(), 1u);
  EXPECT_EQ(diff.fixed[0].fingerprint, "aaaa");
  ASSERT_EQ(diff.persistent.size(), 1u);
  EXPECT_EQ(diff.persistent[0].fingerprint, "bbbb");
}

TEST(RunDiff, IdenticalRunsPassTheCheck) {
  RunRecord a = MakeRun("r0001", {Finding("aaaa")});
  RunRecord b = MakeRun("r0002", {Finding("aaaa")});
  RunDiff diff = ComputeRunDiff(a, b);
  EXPECT_TRUE(diff.added.empty());
  EXPECT_TRUE(diff.fixed.empty());
  EXPECT_FALSE(diff.HasRegressions());
}

TEST(RunDiff, NewFindingIsARegressionUnderStrictDefault) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {Finding("aaaa")});
  RunDiff diff = ComputeRunDiff(a, b);
  ASSERT_TRUE(diff.HasRegressions());
  EXPECT_NE(diff.regressions.front().find("1 new finding(s)"), std::string::npos);
}

TEST(RunDiff, MaxNewFindingsThresholdRelaxesTheGate) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {Finding("aaaa")});
  RegressionThresholds thresholds;
  thresholds.max_new_findings = 1;
  EXPECT_FALSE(ComputeRunDiff(a, b, thresholds).HasRegressions());
  RunRecord c = MakeRun("r0003", {Finding("aaaa"), Finding("bbbb")});
  EXPECT_TRUE(ComputeRunDiff(a, c, thresholds).HasRegressions());
}

TEST(RunDiff, FixedFindingsNeverFailTheCheck) {
  RunRecord a = MakeRun("r0001", {Finding("aaaa"), Finding("bbbb")});
  RunRecord b = MakeRun("r0002", {});
  EXPECT_FALSE(ComputeRunDiff(a, b).HasRegressions());
}

TEST(RunDiff, StageRegressionNeedsRatioAndAbsoluteFloor) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {});

  // Ratio breached AND growth above the floor -> regression.
  a.metrics.detect_seconds = 0.10;
  b.metrics.detect_seconds = 0.30;
  EXPECT_TRUE(ComputeRunDiff(a, b).HasRegressions());

  // Huge ratio but sub-floor absolute growth (ms jitter) -> no regression.
  a.metrics.detect_seconds = 0.001;
  b.metrics.detect_seconds = 0.010;
  EXPECT_FALSE(ComputeRunDiff(a, b).HasRegressions());

  // Large absolute growth but ratio under 1.5x -> no regression.
  a.metrics.detect_seconds = 1.00;
  b.metrics.detect_seconds = 1.40;
  EXPECT_FALSE(ComputeRunDiff(a, b).HasRegressions());
}

TEST(RunDiff, PruneRateDropBeyondThresholdRegresses) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {});
  a.metrics.prune_patterns = {{"cursor", 100, 80}};  // 80% prune rate
  b.metrics.prune_patterns = {{"cursor", 100, 60}};  // 60%: 20-point drop
  RunDiff diff = ComputeRunDiff(a, b);
  ASSERT_TRUE(diff.HasRegressions());
  EXPECT_NE(diff.regressions.front().find("cursor"), std::string::npos);

  // A drop within the 10-point default tolerance passes.
  b.metrics.prune_patterns = {{"cursor", 100, 75}};
  EXPECT_FALSE(ComputeRunDiff(a, b).HasRegressions());
}

TEST(RunDiff, PruneRateIncomparableWhenEitherSideUntested) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {});
  // Baseline never exercised the pattern: a big apparent drop must not gate.
  a.metrics.prune_patterns = {{"cursor", 0, 0}};
  b.metrics.prune_patterns = {{"cursor", 100, 10}};
  EXPECT_FALSE(ComputeRunDiff(a, b).HasRegressions());
}

TEST(RunDiff, DefaultTextRenderingHoldsNoTimings) {
  RunRecord a = MakeRun("r0001", {Finding("aaaa")});
  RunRecord b = MakeRun("r0002", {Finding("aaaa"), Finding("ffff", "b.c", "val")});
  // Timings differ but stay under the regression thresholds: raw timing
  // deltas must not surface in the default (deterministic) rendering. An
  // actual threshold breach *does* surface, via the regressions section.
  a.metrics.detect_seconds = 0.123;
  b.metrics.detect_seconds = 0.140;
  RunDiff diff = ComputeRunDiff(a, b);

  std::string text = RenderDiffText(diff);
  EXPECT_NE(text.find("diff r0001 -> r0002: 1 new, 0 fixed, 1 persistent"),
            std::string::npos);
  EXPECT_NE(text.find("[unused-def:ffff]"), std::string::npos);
  EXPECT_EQ(text.find("detect_seconds"), std::string::npos)
      << "timing leaked into the deterministic rendering";

  std::string with_timings = RenderDiffText(diff, /*include_timings=*/true);
  EXPECT_NE(with_timings.find("detect_seconds"), std::string::npos);
}

TEST(RunDiff, TextRenderingIndependentOfTimingNoise) {
  // The determinism contract: two diffs whose runs differ only in wall-clock
  // timings render byte-identically by default.
  RunRecord a1 = MakeRun("r0001", {Finding("aaaa")});
  RunRecord b1 = MakeRun("r0002", {Finding("aaaa")});
  RunRecord a2 = MakeRun("r0001", {Finding("aaaa")});
  RunRecord b2 = MakeRun("r0002", {Finding("aaaa")});
  a1.metrics.analysis_seconds = 0.111;
  b1.metrics.analysis_seconds = 0.117;
  a2.metrics.analysis_seconds = 0.935;
  b2.metrics.analysis_seconds = 0.212;
  EXPECT_EQ(RenderDiffText(ComputeRunDiff(a1, b1)), RenderDiffText(ComputeRunDiff(a2, b2)));
}

TEST(RunDiff, FindingSectionsSortedByFileThenFingerprint) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord b = MakeRun("r0002", {Finding("zzzz", "b.c"), Finding("aaaa", "b.c"),
                              Finding("mmmm", "a.c")});
  RunDiff diff = ComputeRunDiff(a, b);
  ASSERT_EQ(diff.added.size(), 3u);
  EXPECT_EQ(diff.added[0].fingerprint, "mmmm");
  EXPECT_EQ(diff.added[1].fingerprint, "aaaa");
  EXPECT_EQ(diff.added[2].fingerprint, "zzzz");
}

TEST(RunDiff, JsonCarriesCheckVerdict) {
  RunRecord a = MakeRun("r0001", {});
  RunRecord clean = MakeRun("r0002", {});
  RunRecord dirty = MakeRun("r0003", {Finding("aaaa")});
  EXPECT_NE(DiffToJson(ComputeRunDiff(a, clean)).find("\"check_passed\":true"),
            std::string::npos);
  std::string json = DiffToJson(ComputeRunDiff(a, dirty));
  EXPECT_NE(json.find("\"check_passed\":false"), std::string::npos);
  EXPECT_NE(json.find("\"new\":[{\"fingerprint\":\"aaaa\""), std::string::npos);
}

TEST(RunDiff, MemoryDeltasOnlyWhenBothRunsCollected) {
  RunRecord a = MakeRun("r0001", {Finding("aaaa")});
  RunRecord b = MakeRun("r0002", {Finding("aaaa")});
  a.metrics.mem_collected = true;
  a.metrics.mem_tracked_bytes = 1000;
  a.metrics.mem_peak_rss_bytes = 5000;
  b.metrics.mem_collected = true;
  b.metrics.mem_tracked_bytes = 1500;
  b.metrics.mem_peak_rss_bytes = 7000;

  RunDiff diff = ComputeRunDiff(a, b);
  // Memory rows are reported, never regression-gated.
  EXPECT_FALSE(diff.HasRegressions());
  std::string with_timings = RenderDiffText(diff, /*include_timings=*/true);
  EXPECT_NE(with_timings.find("mem_tracked_bytes"), std::string::npos);
  EXPECT_NE(with_timings.find("mem_peak_rss_bytes"), std::string::npos);
  // The exact tracked count is deterministic and renders by default; the
  // sampled peak-RSS row is machine-dependent and stays out of the default
  // (byte-identical) rendering.
  std::string plain = RenderDiffText(diff);
  EXPECT_NE(plain.find("mem_tracked_bytes"), std::string::npos);
  EXPECT_EQ(plain.find("mem_peak_rss_bytes"), std::string::npos);

  // Mixed-version diff: the baseline predates memory accounting, so the
  // memory rows disappear instead of rendering a bogus delta from zero.
  RunRecord old = MakeRun("r0000", {Finding("aaaa")});
  ASSERT_FALSE(old.metrics.mem_collected);
  std::string mixed = RenderDiffText(ComputeRunDiff(old, b), /*include_timings=*/true);
  EXPECT_EQ(mixed.find("mem_tracked_bytes"), std::string::npos);
  EXPECT_EQ(mixed.find("mem_peak_rss_bytes"), std::string::npos);
  EXPECT_FALSE(ComputeRunDiff(old, b).HasRegressions());
}

TEST(RunDiff, MakeRunRecordCarriesFindingsAndMetrics) {
  AnalysisOptions options;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  options.collect_metrics = true;
  AnalysisReport report = Analysis(options).RunOnSources(
      {{"a.c",
        "int get_status(int entry) {\n"
        "  return entry + 1;\n"
        "}\n"
        "int handle(int entry, int mode) {\n"
        "  int ret = get_status(entry);\n"
        "  ret = mode * 2;\n"
        "  return ret;\n"
        "}\n"}});
  ASSERT_FALSE(report.findings.empty());

  RunRecord record = MakeRunRecord(report, "unit-test", 1234);
  EXPECT_EQ(record.label, "unit-test");
  EXPECT_EQ(record.timestamp_ms, 1234);
  ASSERT_EQ(record.findings.size(), report.findings.size());
  EXPECT_EQ(record.findings[0].fingerprint, report.findings[0].fingerprint);
  EXPECT_FALSE(record.findings[0].fingerprint.empty());
  EXPECT_EQ(record.findings[0].variable, "ret");
  EXPECT_TRUE(record.metrics.collected);
  EXPECT_EQ(record.metrics.files_parsed, 1);
  EXPECT_GT(record.metrics.functions_analyzed, 0);
  ASSERT_EQ(record.metrics.prune_patterns.size(), 5u);
  EXPECT_EQ(record.metrics.prune_patterns[0].name, "config_dependency");

  // v2 payloads ride along when the run collected metrics.
  EXPECT_TRUE(record.metrics.mem_collected);
  EXPECT_GT(record.metrics.mem_tracked_bytes, 0);
  EXPECT_GT(record.metrics.mem_peak_rss_bytes, 0);
  ASSERT_FALSE(record.checker_stats.empty());
  EXPECT_FALSE(record.checker_stats[0].name.empty());
}

}  // namespace
}  // namespace vc

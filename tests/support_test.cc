// Unit tests for the support layer: string utilities, source manager,
// diagnostics, table writer, least-squares regression, deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/support/diagnostics.h"
#include "src/support/json_reader.h"
#include "src/support/json_writer.h"
#include "src/support/regression.h"
#include "src/support/rng.h"
#include "src/support/source_manager.h"
#include "src/support/string_util.h"
#include "src/support/table_writer.h"

namespace vc {
namespace {

// --- string_util -----------------------------------------------------------

TEST(StringUtil, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitNoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, SplitEmpty) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(Trim("  x y \t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtil, ContainsWordMatchesIdentifierBoundaries) {
  EXPECT_TRUE(ContainsWord("n = lookup(host);", "host"));
  EXPECT_TRUE(ContainsWord("host = 1;", "host"));
  EXPECT_TRUE(ContainsWord("use(nc.host)", "nc"));
  EXPECT_FALSE(ContainsWord("hostname = 1;", "host"));
  EXPECT_FALSE(ContainsWord("the_host = 1;", "host"));
  EXPECT_FALSE(ContainsWord("", "host"));
  EXPECT_FALSE(ContainsWord("x", ""));
}

TEST(StringUtil, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("int x [[MAYBE_UNUSED]];", "unused"));
  EXPECT_TRUE(ContainsIgnoreCase("/* Unused on purpose */", "unused"));
  EXPECT_FALSE(ContainsIgnoreCase("int used = 1;", "unused"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

// --- SourceManager ----------------------------------------------------------

TEST(SourceManager, LineAccess) {
  SourceManager sm;
  FileId id = sm.AddFile("a.c", "first\nsecond\nthird");
  EXPECT_EQ(sm.NumLines(id), 3);
  EXPECT_EQ(sm.Line(id, 1), "first");
  EXPECT_EQ(sm.Line(id, 2), "second");
  EXPECT_EQ(sm.Line(id, 3), "third");
  EXPECT_EQ(sm.Line(id, 4), "");
  EXPECT_EQ(sm.Line(id, 0), "");
}

TEST(SourceManager, TrailingNewlineDoesNotAddLine) {
  SourceManager sm;
  FileId id = sm.AddFile("a.c", "one\ntwo\n");
  EXPECT_EQ(sm.NumLines(id), 2);
  EXPECT_EQ(sm.Line(id, 2), "two");
}

TEST(SourceManager, FindByPath) {
  SourceManager sm;
  sm.AddFile("x.c", "");
  FileId y = sm.AddFile("y.c", "a");
  EXPECT_EQ(sm.FindByPath("y.c"), y);
  EXPECT_EQ(sm.FindByPath("z.c"), kInvalidFileId);
}

TEST(SourceManager, Render) {
  SourceManager sm;
  FileId id = sm.AddFile("dir/file.c", "x\n");
  EXPECT_EQ(sm.Render({id, 1, 5}), "dir/file.c:1:5");
  EXPECT_EQ(sm.Render(SourceLoc{}), "<invalid>");
}

// --- SourceLoc/SourceRange ---------------------------------------------------

TEST(SourceLocation, Ordering) {
  SourceLoc a{0, 1, 1};
  SourceLoc b{0, 2, 1};
  SourceLoc c{1, 1, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (SourceLoc{0, 1, 1}));
}

TEST(SourceLocation, RangeContainsLine) {
  SourceRange range{{0, 10, 1}, {0, 20, 1}};
  EXPECT_TRUE(range.ContainsLine(10));
  EXPECT_TRUE(range.ContainsLine(15));
  EXPECT_TRUE(range.ContainsLine(20));
  EXPECT_FALSE(range.ContainsLine(9));
  EXPECT_FALSE(range.ContainsLine(21));
  EXPECT_FALSE(SourceRange{}.ContainsLine(1));
}

// --- Diagnostics -------------------------------------------------------------

TEST(Diagnostics, CountsAndRender) {
  SourceManager sm;
  FileId id = sm.AddFile("a.c", "x\n");
  DiagnosticEngine diags;
  diags.Warning({id, 1, 1}, "w");
  EXPECT_FALSE(diags.HasErrors());
  diags.Error({id, 1, 2}, "e");
  EXPECT_TRUE(diags.HasErrors());
  EXPECT_EQ(diags.ErrorCount(), 1);
  std::string rendered = diags.Render(sm);
  EXPECT_NE(rendered.find("a.c:1:1: warning: w"), std::string::npos);
  EXPECT_NE(rendered.find("a.c:1:2: error: e"), std::string::npos);
  diags.Clear();
  EXPECT_EQ(diags.ErrorCount(), 0);
  EXPECT_TRUE(diags.diagnostics().empty());
}

// --- TableWriter ---------------------------------------------------------------

TEST(TableWriter, TextAlignment) {
  TableWriter table({"App", "Bugs"});
  table.AddRow({"Linux", "63"});
  table.AddRow({"NFS-ganesha", "22"});
  std::string text = table.RenderText();
  EXPECT_NE(text.find("| App         | Bugs |"), std::string::npos);
  EXPECT_NE(text.find("| Linux       | 63   |"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter table({"a", "b"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"with\"quote", "x"});
  std::string csv = table.RenderCsv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\",x"), std::string::npos);
}

TEST(TableWriter, ShortRowsPadded) {
  TableWriter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_EQ(table.NumRows(), 1u);
  EXPECT_NE(table.RenderCsv().find("1,,"), std::string::npos);
}

TEST(TableWriter, Formatting) {
  EXPECT_EQ(FormatPercent(0.26), "26%");
  EXPECT_EQ(FormatPercent(0.975, 1), "97.5%");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
}

// --- Regression ------------------------------------------------------------------

TEST(Regression, RecoversExactLinearModel) {
  // y = 2 + 3*x1 - 0.5*x2, no noise.
  std::vector<Observation> data;
  for (int i = 0; i < 20; ++i) {
    double x1 = i * 0.7;
    double x2 = (i % 5) * 1.3;
    data.push_back({{x1, x2}, 2.0 + 3.0 * x1 - 0.5 * x2});
  }
  auto fit = FitLeastSquares(data);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[2], -0.5, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-9);
}

TEST(Regression, SingularSystemRejected) {
  // Two identical feature columns: collinear.
  std::vector<Observation> data;
  for (int i = 0; i < 10; ++i) {
    double x = i;
    data.push_back({{x, x}, 2.0 * x});
  }
  EXPECT_FALSE(FitLeastSquares(data).has_value());
}

TEST(Regression, TooFewObservationsRejected) {
  std::vector<Observation> data = {{{1.0, 2.0}, 3.0}};
  EXPECT_FALSE(FitLeastSquares(data).has_value());
}

TEST(Regression, EmptyRejected) { EXPECT_FALSE(FitLeastSquares({}).has_value()); }

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, GaussianRoughMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

// --- json_reader -----------------------------------------------------------

TEST(JsonReader, ParsesScalarsArraysObjects) {
  std::optional<JsonValue> value =
      ParseJson(R"({"s":"hi","n":3.5,"i":42,"b":true,"z":null,"a":[1,2,3]})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->GetString("s"), "hi");
  EXPECT_DOUBLE_EQ(value->GetDouble("n"), 3.5);
  EXPECT_EQ(value->GetInt("i"), 42);
  EXPECT_TRUE(value->GetBool("b"));
  EXPECT_TRUE(value->Get("z").IsNull());
  ASSERT_EQ(value->Get("a").Size(), 3u);
  EXPECT_EQ(value->Get("a").At(1).AsInt(), 2);
}

TEST(JsonReader, IntegralLiteralsSurviveInt64RoundTrip) {
  // Millisecond timestamps exceed double's exact-integer comfort zone only
  // past 2^53, but the int64 side must be lossless regardless.
  std::optional<JsonValue> value = ParseJson(R"({"ts":1700000000123})");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->GetInt("ts"), 1700000000123);
}

TEST(JsonReader, StringEscapes) {
  std::optional<JsonValue> value = ParseJson(R"(["a\"b\\c\n\t","Aé"])");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->At(0).AsString(), "a\"b\\c\n\t");
  EXPECT_EQ(value->At(1).AsString(), "A\xc3\xa9");  // é as UTF-8
}

TEST(JsonReader, MissingKeysChainToNullSentinel) {
  std::optional<JsonValue> value = ParseJson(R"({"a":{"b":1}})");
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(value->Get("missing").IsNull());
  EXPECT_TRUE(value->Get("missing").Get("deeper").IsNull());
  EXPECT_EQ(value->Get("missing").GetInt("x", -7), -7);
  EXPECT_EQ(value->Get("a").GetInt("b"), 1);
}

TEST(JsonReader, MalformedInputReportsOffset) {
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(ParseJson("", &error).has_value());
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &error).has_value());
}

TEST(JsonReader, RoundTripsJsonWriterOutput) {
  JsonWriter writer;
  writer.BeginObject();
  writer.String("name", "weird \"chars\"\n\ttabs");
  writer.Int("count", -12);
  writer.Double("ratio", 0.125);
  writer.Key("list").BeginArray();
  writer.StringValue("x");
  writer.StringValue("y");
  writer.EndArray();
  writer.EndObject();

  std::optional<JsonValue> value = ParseJson(writer.str());
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->GetString("name"), "weird \"chars\"\n\ttabs");
  EXPECT_EQ(value->GetInt("count"), -12);
  EXPECT_DOUBLE_EQ(value->GetDouble("ratio"), 0.125);
  ASSERT_EQ(value->Get("list").Size(), 2u);
  EXPECT_EQ(value->Get("list").At(0).AsString(), "x");
}

TEST(JsonWriter, NonFiniteDoublesEmitNullAndStayParseable) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Double("nan", std::nan(""));
  writer.Double("pos_inf", std::numeric_limits<double>::infinity());
  writer.Double("neg_inf", -std::numeric_limits<double>::infinity());
  writer.Double("finite", 2.5);
  writer.EndObject();

  // JSON has no NaN/Infinity literals; anything else would corrupt reports
  // whose timings divide by zero.
  EXPECT_EQ(writer.str(),
            "{\"nan\":null,\"pos_inf\":null,\"neg_inf\":null,\"finite\":2.5}");
  std::string error;
  std::optional<JsonValue> value = ParseJson(writer.str(), &error);
  ASSERT_TRUE(value.has_value()) << error;
  EXPECT_TRUE(value->Get("nan").IsNull());
  EXPECT_DOUBLE_EQ(value->GetDouble("finite"), 2.5);
}

}  // namespace
}  // namespace vc

// In-process integration tests for the `valuecheck serve` daemon: batch/daemon
// finding equivalence (the acceptance invariant, at jobs 1/2/8, cold and warm),
// admission shedding and deadlines, per-request quarantine, slow-loris and
// mid-stream-disconnect robustness, drain accounting, and the client-initiated
// shutdown handshake.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/server/client.h"
#include "src/support/json_reader.h"
#include "src/support/json_writer.h"
#include "src/testing/testgen.h"

namespace vc {
namespace {

using Sources = std::vector<std::pair<std::string, std::string>>;

std::string AnalyzeRequest(const std::string& id, const std::string& project,
                           const Sources& sources, int jobs,
                           const std::string& fault_spec = "",
                           double deadline_ms = 0.0, int64_t debug_sleep_ms = 0) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("method", "analyze");
  json.String("project", project);
  json.Key("sources").BeginArray();
  for (const auto& [path, content] : sources) {
    json.BeginObject();
    json.String("path", path);
    json.String("content", content);
    json.EndObject();
  }
  json.EndArray();
  json.Int("jobs", jobs);
  if (!fault_spec.empty()) {
    json.String("fault_inject", fault_spec);
  }
  if (deadline_ms > 0.0) {
    json.Double("deadline_ms", deadline_ms);
  }
  if (debug_sleep_ms > 0) {
    json.Int("debug_sleep_ms", debug_sleep_ms);
  }
  json.EndObject();
  return json.str();
}

std::string SimpleRequest(const std::string& id, const std::string& method,
                          const std::string& project = "",
                          double deadline_ms = 0.0, int64_t debug_sleep_ms = 0) {
  JsonWriter json;
  json.BeginObject();
  json.String("id", id);
  json.String("method", method);
  if (!project.empty()) {
    json.String("project", project);
  }
  if (deadline_ms > 0.0) {
    json.Double("deadline_ms", deadline_ms);
  }
  if (debug_sleep_ms > 0) {
    json.Int("debug_sleep_ms", debug_sleep_ms);
  }
  json.EndObject();
  return json.str();
}

class ServerTest : public ::testing::Test {
 protected:
  // TCP on an ephemeral loopback port: no socket-path-length or stale-file
  // concerns in the test environment.
  void StartServer(ServerOptions options) {
    options.socket_path.clear();
    options.tcp_port = 0;
    server_ = std::make_unique<AnalysisServer>(std::move(options));
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  std::unique_ptr<ServeClient> Connect() {
    std::string error;
    std::unique_ptr<ServeClient> client = ServeClient::ConnectTcp(server_->port(), &error);
    EXPECT_NE(client, nullptr) << error;
    return client;
  }

  JsonValue Call(ServeClient& client, const std::string& request) {
    std::string response;
    std::string error;
    EXPECT_TRUE(client.Call(request, &response, &error, 60.0)) << error;
    std::optional<JsonValue> parsed = ParseJson(response);
    EXPECT_TRUE(parsed.has_value()) << response;
    return parsed.has_value() ? std::move(*parsed) : JsonValue();
  }

  void DrainAndWait() {
    server_->RequestDrain();
    server_->Wait();
  }

  std::unique_ptr<AnalysisServer> server_;
};

Sources GenerateSources(uint64_t seed, const std::string& prefix, int files) {
  testing::GenOptions gen;
  gen.min_files = files;
  gen.max_files = files;
  gen.ident_prefix = prefix + "_";
  gen.file_prefix = prefix + "/";
  return testing::GenerateProgram(seed, gen).ToSources();
}

// The batch reference: exactly what `valuecheck analyze <files>` computes
// (sources mode — no authorship, all scopes, unranked).
std::string BatchCsv(const Sources& sources, int jobs) {
  AnalysisOptions options;
  options.cross_scope_only = false;
  options.ranking.enabled = false;
  options.jobs = jobs;
  Analysis analysis(options);
  return analysis.RunOnSources(sources).ToCsv();
}

// ---------------------------------------------------------------------------
// Equivalence: daemon findings are byte-identical to batch analyze
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AnalyzeMatchesBatchByteForByteAtEveryJobCount) {
  StartServer(ServerOptions{});
  Sources pristine = GenerateSources(7, "eq", 3);
  Sources edited = pristine;
  edited.back().second +=
      "\nint eq_added(int a) {\n  int x;\n  x = a + 1;\n  int y;\n  y = x * 2;\n"
      "  return x;\n}\n";
  const std::string pristine_csv = BatchCsv(pristine, 1);
  const std::string edited_csv = BatchCsv(edited, 1);
  ASSERT_NE(pristine_csv, edited_csv) << "the edit must be visible in findings";

  for (int jobs : {1, 2, 8}) {
    // A fresh project per job count so every analyze really executes (same
    // snapshot + same config on one project would serve the cached replay).
    const std::string project = "eq-j" + std::to_string(jobs);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    // Cold: first analysis of the project (full parse).
    JsonValue cold = Call(*client, AnalyzeRequest("cold", project, pristine, jobs));
    EXPECT_EQ(cold.GetString("status"), "ok") << cold.GetString("message");
    EXPECT_EQ(cold.GetString("csv"), pristine_csv) << "jobs=" << jobs;

    // Warm: single-file delta through the incremental engine.
    JsonValue warm = Call(*client, AnalyzeRequest("warm", project, edited, jobs));
    EXPECT_EQ(warm.GetString("status"), "ok");
    EXPECT_EQ(warm.GetString("csv"), edited_csv) << "jobs=" << jobs;
    EXPECT_EQ(warm.GetInt("files_changed"), 1) << "edit touches one file";

    // Revert: the delta now deletes the added function.
    JsonValue revert = Call(*client, AnalyzeRequest("revert", project, pristine, jobs));
    EXPECT_EQ(revert.GetString("csv"), pristine_csv) << "jobs=" << jobs;
  }
  DrainAndWait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.requests, totals.Accounted());
}

TEST_F(ServerTest, UnchangedSnapshotIsServedFromCache) {
  StartServer(ServerOptions{});
  Sources sources = GenerateSources(11, "cache", 2);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  JsonValue first = Call(*client, AnalyzeRequest("a", "p", sources, 1));
  EXPECT_FALSE(first.GetBool("cached"));
  JsonValue second = Call(*client, AnalyzeRequest("b", "p", sources, 1));
  EXPECT_TRUE(second.GetBool("cached"));
  EXPECT_EQ(first.GetString("csv"), second.GetString("csv"));
  DrainAndWait();
}

// ---------------------------------------------------------------------------
// Project queries
// ---------------------------------------------------------------------------

TEST_F(ServerTest, DiffHistoryReportFollowTheProjectTimeline) {
  StartServer(ServerOptions{});
  Sources pristine = GenerateSources(13, "q", 2);
  Sources edited = pristine;
  edited.back().second += "\nint q_new(int a) {\n  int x;\n  x = a;\n  return 1;\n}\n";
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  // Before any analysis: queries answer "available": false, not an error.
  JsonValue empty_report = Call(*client, SimpleRequest("r0", "report", "q"));
  EXPECT_EQ(empty_report.GetString("status"), "ok");
  EXPECT_FALSE(empty_report.GetBool("available", true));

  Call(*client, AnalyzeRequest("a1", "q", pristine, 1));
  Call(*client, AnalyzeRequest("a2", "q", edited, 1));

  JsonValue diff = Call(*client, SimpleRequest("d1", "diff", "q"));
  EXPECT_EQ(diff.GetString("status"), "ok");
  EXPECT_TRUE(diff.GetBool("available"));
  // The edit introduces at least one finding (x is never used).
  EXPECT_GE(diff.Get("new").Items().size(), 1u);

  JsonValue history = Call(*client, SimpleRequest("h1", "history", "q"));
  EXPECT_EQ(history.Get("runs").Items().size(), 2u);

  JsonValue report = Call(*client, SimpleRequest("r1", "report", "q"));
  EXPECT_TRUE(report.GetBool("available"));
  EXPECT_GE(report.Get("latest").GetInt("findings"), 1);
  DrainAndWait();
}

// ---------------------------------------------------------------------------
// Robustness envelope
// ---------------------------------------------------------------------------

TEST_F(ServerTest, OverloadShedsWithRetryAfter) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 0;
  options.allow_debug_sleep = true;
  StartServer(std::move(options));

  // Occupy the single execution slot from connection A...
  auto holder = Connect();
  ASSERT_NE(holder, nullptr);
  ASSERT_TRUE(holder->SendFrame(SimpleRequest("hold", "report", "p", 0.0, 700)));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // ...so connection B's request finds the queue full and sheds.
  auto shed_client = Connect();
  ASSERT_NE(shed_client, nullptr);
  JsonValue shed = Call(*shed_client, SimpleRequest("shed-me", "report", "p"));
  EXPECT_EQ(shed.GetString("status"), "shed");
  EXPECT_EQ(shed.GetString("reason"), "queue_full");
  EXPECT_GE(shed.GetInt("retry_after_ms"), 10);
  EXPECT_EQ(shed.GetString("id"), "shed-me");

  // The holder's request still completes normally.
  std::string response;
  std::string error;
  ASSERT_TRUE(holder->ReceiveFrame(&response, &error, 60.0)) << error;
  std::optional<JsonValue> held = ParseJson(response);
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->GetString("status"), "ok");

  DrainAndWait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.shed, 1u);
  EXPECT_EQ(totals.requests, totals.Accounted());
}

TEST_F(ServerTest, QueuedRequestPastItsDeadlineIsNotExecuted) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 8;
  options.allow_debug_sleep = true;
  StartServer(std::move(options));

  auto holder = Connect();
  ASSERT_NE(holder, nullptr);
  ASSERT_TRUE(holder->SendFrame(SimpleRequest("hold", "report", "p", 0.0, 600)));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // This request queues behind the 600ms holder; its 100ms deadline expires
  // while waiting, so it must answer "deadline" without running.
  auto late = Connect();
  ASSERT_NE(late, nullptr);
  JsonValue response = Call(*late, SimpleRequest("late", "report", "p", 100.0));
  EXPECT_EQ(response.GetString("status"), "deadline");
  EXPECT_EQ(response.GetString("id"), "late");

  std::string held_response;
  std::string error;
  ASSERT_TRUE(holder->ReceiveFrame(&held_response, &error, 60.0)) << error;

  DrainAndWait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.deadline, 1u);
  EXPECT_EQ(totals.requests, totals.Accounted());
}

TEST_F(ServerTest, PoisonedRequestQuarantinesNotTheProcess) {
  StartServer(ServerOptions{});
  Sources sources = GenerateSources(17, "poison", 2);
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  // A bad fault spec throws inside request handling: error frame, connection
  // stays usable.
  JsonValue poisoned =
      Call(*client, AnalyzeRequest("bad", "p", sources, 1, "not-a-spec"));
  EXPECT_EQ(poisoned.GetString("status"), "error");
  EXPECT_EQ(poisoned.GetString("id"), "bad");

  // Malformed JSON likewise answers an error frame (with code) in-band.
  std::string raw_response;
  std::string error;
  ASSERT_TRUE(client->SendFrame("{\"id\":\"trunc\","));
  ASSERT_TRUE(client->ReceiveFrame(&raw_response, &error, 30.0)) << error;
  std::optional<JsonValue> malformed = ParseJson(raw_response);
  ASSERT_TRUE(malformed.has_value());
  EXPECT_EQ(malformed->GetString("status"), "error");
  EXPECT_EQ(malformed->GetString("code"), "bad_request");

  // Same connection, next request: healthy.
  JsonValue pong = Call(*client, SimpleRequest("still-alive", "ping"));
  EXPECT_EQ(pong.GetString("status"), "ok");

  // Total fault injection degrades (partial results), never kills.
  JsonValue degraded = Call(*client, AnalyzeRequest("deg", "p", sources, 1, "42:1.0"));
  EXPECT_EQ(degraded.GetString("status"), "degraded");
  EXPECT_GE(degraded.GetInt("quarantined"), 1);

  DrainAndWait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.failed, 2u);  // the poisoned spec + the malformed payload
  EXPECT_EQ(totals.requests, totals.Accounted());
}

TEST_F(ServerTest, SlowLorisConnectionIsTimedOutNotServed) {
  ServerOptions options;
  options.idle_read_timeout_seconds = 0.3;
  StartServer(std::move(options));

  auto client = Connect();
  ASSERT_NE(client, nullptr);
  // Two bytes of length prefix, then silence: the server must not hang on
  // this connection forever.
  const char partial[] = {0, 0};
  ASSERT_TRUE(client->SendBytes(partial, 2));
  std::string response;
  std::string error;
  bool got_frame = client->ReceiveFrame(&response, &error, 10.0);
  if (got_frame) {
    // The in-band protocol-error frame before the close.
    std::optional<JsonValue> parsed = ParseJson(response);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->GetString("status"), "error");
  } else {
    EXPECT_NE(error.find("closed"), std::string::npos) << error;
  }

  // The daemon is still healthy for well-behaved clients.
  auto healthy = Connect();
  ASSERT_NE(healthy, nullptr);
  JsonValue pong = Call(*healthy, SimpleRequest("ok", "ping"));
  EXPECT_EQ(pong.GetString("status"), "ok");

  DrainAndWait();
  EXPECT_GE(server_->totals().protocol_errors, 1u);
}

TEST_F(ServerTest, MidStreamDisconnectIsAbsorbed) {
  StartServer(ServerOptions{});
  {
    auto client = Connect();
    ASSERT_NE(client, nullptr);
    // A frame claiming 1000 bytes with only 10 delivered, then a hard close.
    const unsigned char prefix[] = {0, 0, 0x03, 0xE8};
    ASSERT_TRUE(client->SendBytes(prefix, 4));
    ASSERT_TRUE(client->SendBytes("0123456789", 10));
    client->Close();
  }
  // Poll until the server has registered the truncation (connection teardown
  // is asynchronous).
  for (int i = 0; i < 100 && server_->totals().protocol_errors == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->totals().protocol_errors, 1u);

  auto healthy = Connect();
  ASSERT_NE(healthy, nullptr);
  JsonValue pong = Call(*healthy, SimpleRequest("ok", "ping"));
  EXPECT_EQ(pong.GetString("status"), "ok");
  DrainAndWait();
}

// ---------------------------------------------------------------------------
// Drain / shutdown
// ---------------------------------------------------------------------------

TEST_F(ServerTest, DrainShedsQueuedWorkAndFinishesInFlight) {
  ServerOptions options;
  options.max_inflight = 1;
  options.max_queue = 8;
  options.allow_debug_sleep = true;
  StartServer(std::move(options));

  auto holder = Connect();
  ASSERT_NE(holder, nullptr);
  ASSERT_TRUE(holder->SendFrame(SimpleRequest("hold", "report", "p", 0.0, 600)));

  auto queued = Connect();
  ASSERT_NE(queued, nullptr);
  ASSERT_TRUE(queued->SendFrame(SimpleRequest("queued", "report", "p")));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Drain now: the queued waiter sheds with reason "draining"; the in-flight
  // holder finishes and responds.
  server_->RequestDrain();

  std::string response;
  std::string error;
  ASSERT_TRUE(queued->ReceiveFrame(&response, &error, 30.0)) << error;
  std::optional<JsonValue> shed = ParseJson(response);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->GetString("status"), "shed");
  EXPECT_EQ(shed->GetString("reason"), "draining");

  ASSERT_TRUE(holder->ReceiveFrame(&response, &error, 60.0)) << error;
  std::optional<JsonValue> held = ParseJson(response);
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->GetString("status"), "ok");

  server_->Wait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.requests, 2u);
  EXPECT_EQ(totals.succeeded, 1u);
  EXPECT_EQ(totals.shed, 1u);
  EXPECT_EQ(totals.requests, totals.Accounted());
  EXPECT_GT(totals.wall_seconds, 0.0);
}

TEST_F(ServerTest, ShutdownMethodStartsTheDrainAndStillResponds) {
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  JsonValue response = Call(*client, SimpleRequest("bye", "shutdown"));
  EXPECT_EQ(response.GetString("status"), "ok");
  EXPECT_TRUE(response.GetBool("draining"));
  EXPECT_TRUE(server_->draining());
  server_->Wait();
  ServeTotals totals = server_->totals();
  EXPECT_EQ(totals.requests, totals.Accounted());
}

}  // namespace
}  // namespace vc

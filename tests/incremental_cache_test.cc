// Cache-correctness battery for the incremental engine: content hashing must
// catch edits line-count and length cannot, the disk tier's config key must
// invalidate on any configuration or checker-set change, and a damaged
// --cache-dir must degrade to a full re-parse through the quarantine channel
// rather than fail the run. Also covers fault injection through the
// incremental path (quarantine records thread through IncrementalResult).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/incremental.h"

namespace vc {
namespace {

class IncrementalCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("vc_inc_cache_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Repository TwoCommitRepo(const std::string& v1, const std::string& v2) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  repo.AddCommit(alice, 100, "create", {{"a.c", v1}});
  repo.AddCommit(alice, 200, "edit", {{"a.c", v2}});
  return repo;
}

TEST_F(IncrementalCacheTest, LengthPreservingEditInvalidates) {
  // Same byte length, same line count — only the content hash can tell.
  // v1 overwrites `a` before use (one finding); v2's second store reads `a`,
  // so the finding disappears.
  std::string v1 =
      "int f(int x) {\n"
      "  int a = x + 1;\n"
      "  a = x + 5;\n"
      "  return a;\n"
      "}\n";
  std::string v2 =
      "int f(int x) {\n"
      "  int a = x + 1;\n"
      "  a = a + 5;\n"
      "  return a;\n"
      "}\n";
  ASSERT_EQ(v1.size(), v2.size());
  ASSERT_NE(HashContent(v1), HashContent(v2));

  Repository repo = TwoCommitRepo(v1, v2);
  // Single-author history: keep non-cross-scope findings so the overwrite
  // in v1 is visible at all.
  AnalysisOptions options;
  options.cross_scope_only = false;
  IncrementalEngine engine{options};
  IncrementalResult first = engine.AnalyzeCommit(repo, 0);
  EXPECT_EQ(first.findings().size(), 1u);
  IncrementalResult second = engine.AnalyzeCommit(repo, 1);
  EXPECT_EQ(second.files_reparsed, 1);
  // The carried cache must not leak v1's finding into the v2 report.
  AnalysisReport full = Analysis(options).RunOnRepository(repo.PrefixCopy(1));
  EXPECT_EQ(second.report.ToCsv(), full.ToCsv());
  EXPECT_NE(second.report.ToCsv(), first.report.ToCsv());
}

TEST_F(IncrementalCacheTest, WhitespaceOnlyEditReparsesWithoutChurn) {
  std::string v1 =
      "int f(int x) {\n"
      "  int a = x + 1;\n"
      "  a = x + 5;\n"
      "  return a;\n"
      "}\n";
  Repository repo = TwoCommitRepo(v1, v1 + "\n");
  IncrementalEngine engine{AnalysisOptions{}};
  IncrementalResult first = engine.AnalyzeCommit(repo, 0);
  IncrementalResult second = engine.AnalyzeCommit(repo, 1);
  // The hash can't know the edit was whitespace, so the file re-parses —
  // but every finding carries (same fingerprint), nothing is new or fixed.
  EXPECT_EQ(second.files_reparsed, 1);
  EXPECT_EQ(second.findings_new, 0);
  EXPECT_EQ(second.findings_fixed, 0);
  EXPECT_EQ(second.findings_carried, static_cast<int>(first.findings().size()));
  EXPECT_EQ(second.report.ToCsv(), first.report.ToCsv());
}

TEST(IncrementalCacheKey, CoversConfigCheckersTraitsBudgetAndFault) {
  AnalysisOptions base;
  std::string base_key = MakeCacheConfigKey(base);
  EXPECT_NE(base_key.find("schema="), std::string::npos);

  AnalysisOptions with_macro = base;
  with_macro.config.Define("DEBUG", 1);
  EXPECT_NE(MakeCacheConfigKey(with_macro), base_key);

  AnalysisOptions with_checkers = base;
  with_checkers.checkers = {"unused-def"};
  // The key folds the RESOLVED list, so explicitly naming the full default
  // set may match; naming a strict subset must not.
  if (MakeCacheConfigKey(with_checkers) == base_key) {
    ADD_FAILURE() << "subset checker list produced the default cache key";
  }

  AnalysisOptions with_budget = base;
  with_budget.budget.detect_step_limit = 12345;
  EXPECT_NE(MakeCacheConfigKey(with_budget), base_key);

  AnalysisOptions with_fault = base;
  with_fault.fault = *FaultInjector::Parse("42:0.25", nullptr);
  EXPECT_NE(MakeCacheConfigKey(with_fault), base_key);
}

TEST_F(IncrementalCacheTest, ConfigChangeMakesDiskEntriesStale) {
  std::string v1 =
      "int f(int x) {\n"
      "  int a = x + 1;\n"
      "  a = x + 5;\n"
      "  return a;\n"
      "}\n";
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  repo.AddCommit(alice, 100, "create", {{"a.c", v1}});

  {
    IncrementalOptions inc;
    inc.cache_dir = dir_.string();
    IncrementalEngine writer{AnalysisOptions{}, inc};
    IncrementalResult result = writer.AnalyzeCommit(repo, 0);
    EXPECT_GT(result.cache.disk_stores, 0u);
  }

  // Fresh engine, same dir, same options: restores from disk.
  {
    IncrementalOptions inc;
    inc.cache_dir = dir_.string();
    IncrementalEngine reader{AnalysisOptions{}, inc};
    EXPECT_GT(reader.AnalyzeCommit(repo, 0).cache.disk_loads, 0u);
  }

  // Fresh engine with a different preprocessor configuration: the stored
  // entries are stale (config key mismatch) — a silent miss, not corruption.
  {
    AnalysisOptions other;
    other.config.Define("DEBUG", 1);
    IncrementalOptions inc;
    inc.cache_dir = dir_.string();
    IncrementalEngine reader{other, inc};
    IncrementalResult result = reader.AnalyzeCommit(repo, 0);
    EXPECT_EQ(result.cache.disk_loads, 0u);
    EXPECT_EQ(result.cache.disk_corrupt, 0u);
    Analysis full(other);
    EXPECT_EQ(result.report.ToCsv(), full.RunOnRepository(repo.PrefixCopy(0)).ToCsv());
  }
}

TEST_F(IncrementalCacheTest, CorruptEntryQuarantinesAndDegradesToReparse) {
  std::string v1 =
      "int f(int x) {\n"
      "  int a = x + 1;\n"
      "  a = x + 5;\n"
      "  return a;\n"
      "}\n";
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  repo.AddCommit(alice, 100, "create", {{"a.c", v1}});

  AnalysisOptions options;
  options.cross_scope_only = false;  // single-author history
  {
    IncrementalOptions inc;
    inc.cache_dir = dir_.string();
    IncrementalEngine writer{options, inc};
    writer.AnalyzeCommit(repo, 0);
  }

  // Truncate every stored entry mid-JSON.
  int damaged = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc | std::ios::binary);
    out << "{\"cache_schema\":1,\"functions\":[{\"name\"";
    ++damaged;
  }
  ASSERT_GT(damaged, 0);

  IncrementalOptions inc;
  inc.cache_dir = dir_.string();
  IncrementalEngine reader{options, inc};
  IncrementalResult result = reader.AnalyzeCommit(repo, 0);

  // Degraded, not dead: the corrupt entry surfaces as a "cache"-stage
  // quarantine record and the file re-analyzes from source.
  EXPECT_GT(result.cache.disk_corrupt, 0u);
  bool cache_quarantine = false;
  for (const QuarantinedUnit& unit : result.report.quarantined) {
    if (unit.stage == "cache" && unit.path == "a.c") {
      cache_quarantine = true;
    }
  }
  EXPECT_TRUE(cache_quarantine) << "corrupt entry did not reach the quarantine channel";
  ASSERT_EQ(result.findings().size(), 1u);
  EXPECT_EQ(result.findings()[0].slot_name, "a");
}

TEST(IncrementalFault, InjectionMatchesFullRunAndThreadsQuarantine) {
  // Under deterministic fault injection, the incremental replay must still
  // match a full run exactly — surviving findings AND quarantine records.
  AnalysisOptions options;
  options.fault = *FaultInjector::Parse("7:0.5", nullptr);

  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::map<std::string, std::string> files;
  for (int i = 0; i < 6; ++i) {
    std::string t = std::to_string(i);
    files["f" + t + ".c"] = "int fn_" + t + "(int x) {\n  int a_" + t +
                            " = x + 1;\n  a_" + t + " = x + 2;\n  return a_" + t + ";\n}\n";
  }
  repo.AddCommit(alice, 100, "create", files);
  repo.AddCommit(alice, 200, "edit",
                 {{"f0.c", "int fn_0(int x) {\n  int a_0 = x + 9;\n  a_0 = x + 2;\n"
                           "  return a_0;\n}\n"}});

  IncrementalEngine engine(options);
  Analysis full(options);
  for (CommitId commit = 0; commit < repo.NumCommits(); ++commit) {
    IncrementalResult result = engine.AnalyzeCommit(repo, commit);
    AnalysisReport fresh = full.RunOnRepository(repo.PrefixCopy(commit));
    ASSERT_EQ(result.report.ToCsv(), fresh.ToCsv()) << "fault divergence at commit " << commit;
    ASSERT_EQ(result.report.quarantined.size(), fresh.quarantined.size())
        << "quarantine divergence at commit " << commit;
    for (size_t i = 0; i < fresh.quarantined.size(); ++i) {
      EXPECT_EQ(result.report.quarantined[i].path, fresh.quarantined[i].path);
      EXPECT_EQ(result.report.quarantined[i].function, fresh.quarantined[i].function);
      EXPECT_EQ(result.report.quarantined[i].stage, fresh.quarantined[i].stage);
      EXPECT_EQ(result.report.quarantined[i].reason, fresh.quarantined[i].reason);
    }
    EXPECT_EQ(result.report.degraded, fresh.degraded);
  }
}

}  // namespace
}  // namespace vc

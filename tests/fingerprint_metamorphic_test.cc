// Metamorphic fingerprint tests on the real checked-in corpus, reusing the
// fuzzer's mutation engine (src/testing/mutator.h) on files a human wrote:
// alpha-renaming unrelated locals, reordering functions, padding with blank
// and comment lines, appending dead clean code, and shuffling file order must
// all leave the finding fingerprint set byte-identical.
//
// Also the golden lock for the fuzz-promoted corpus files: their findings and
// fingerprints are pinned exactly, so any drift in the detector, the
// fingerprint key, or the promoted sources themselves fails loudly here.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/analysis.h"
#include "src/testing/mutator.h"
#include "src/testing/oracle.h"

namespace vc {
namespace testing {
namespace {

// Relative paths double as the analysis source paths, keeping fingerprints
// (which hash the file path) independent of where the checkout lives.
const char* kCorpusFiles[] = {
    "netdev.c",
    "ringbuf.c",
    "sched.c",
    "fuzz/fuzz_param_overwrite.c",
    "fuzz/fuzz_global_loop.c",
};

std::string ReadCorpusFile(const std::string& relative) {
  std::ifstream in(std::string(VALUECHECK_CORPUS_DIR) + "/" + relative);
  EXPECT_TRUE(in.good()) << relative;
  std::stringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

TestProgram LoadCorpus(const std::vector<std::string>& relatives) {
  std::vector<std::pair<std::string, std::string>> sources;
  for (const std::string& relative : relatives) {
    sources.push_back({"examples/corpus/" + relative, ReadCorpusFile(relative)});
  }
  return ProgramFromSources(sources);
}

TEST(FingerprintMetamorphic, EachCorpusFileStableUnderEveryTransform) {
  OracleRunner runner;
  for (const char* relative : kCorpusFiles) {
    TestProgram program = LoadCorpus({relative});
    AnalysisReport base = runner.Analyze(program, 1, false);
    ASSERT_TRUE(base.diagnostic_errors == 0) << relative;
    std::set<std::string> base_prints = OracleRunner::FingerprintSet(base);
    ProtectedSlots slots = ProtectedSlots::FromReport(base);

    for (Transform transform : AllTransforms()) {
      TestProgram mutated = ApplyTransform(program, transform, 1234, slots);
      AnalysisReport report = runner.Analyze(mutated, 1, false);
      EXPECT_TRUE(report.diagnostic_errors == 0)
          << relative << " under " << TransformName(transform);
      EXPECT_EQ(OracleRunner::FingerprintSet(report), base_prints)
          << relative << " under " << TransformName(transform);
    }
  }
}

TEST(FingerprintMetamorphic, ComposedTransformsOnWholeCorpus) {
  // The satellite case from the issue: rename + reorder + pad applied in
  // sequence to the full multi-file corpus (plus a file shuffle, which
  // exercises the merge order), one fingerprint set throughout.
  std::vector<std::string> all(std::begin(kCorpusFiles), std::end(kCorpusFiles));
  TestProgram program = LoadCorpus(all);
  OracleRunner runner;
  AnalysisReport base = runner.Analyze(program, 1, false);
  ASSERT_TRUE(base.diagnostic_errors == 0);
  std::set<std::string> base_prints = OracleRunner::FingerprintSet(base);
  ASSERT_FALSE(base_prints.empty());
  ProtectedSlots slots = ProtectedSlots::FromReport(base);

  TestProgram mutated = ApplyTransform(program, Transform::kAlphaRename, 7, slots);
  mutated = ApplyTransform(mutated, Transform::kReorderFunctions, 8, slots);
  mutated = ApplyTransform(mutated, Transform::kPadding, 9, slots);
  mutated = ApplyTransform(mutated, Transform::kShuffleFiles, 10, slots);

  AnalysisReport report = runner.Analyze(mutated, 1, false);
  ASSERT_TRUE(report.diagnostic_errors == 0);
  EXPECT_EQ(OracleRunner::FingerprintSet(report), base_prints);
}

struct GoldenFinding {
  const char* fingerprint;
  int line;
  const char* function;
  const char* variable;
  const char* kind;
};

void ExpectGolden(const std::string& relative, const std::vector<GoldenFinding>& golden) {
  OracleRunner runner;
  AnalysisReport report = runner.Analyze(LoadCorpus({relative}), 1, false);
  ASSERT_TRUE(report.diagnostic_errors == 0) << relative;
  // Failure messages carry the full actual table so goldens can be re-pinned
  // by copying from the log after an intentional detector change.
  std::ostringstream actual;
  for (const UnusedDefCandidate& finding : report.findings) {
    actual << "  {\"" << finding.fingerprint << "\", " << finding.def_loc.line << ", \""
           << finding.function << "\", \"" << finding.slot_name << "\", \""
           << CandidateKindName(finding.kind) << "\"},\n";
  }
  SCOPED_TRACE("actual findings for " + relative + ":\n" + actual.str());
  ASSERT_EQ(report.findings.size(), golden.size()) << relative;
  for (size_t i = 0; i < golden.size(); ++i) {
    const UnusedDefCandidate& finding = report.findings[i];
    EXPECT_EQ(finding.fingerprint, golden[i].fingerprint) << relative << " #" << i;
    EXPECT_EQ(finding.def_loc.line, golden[i].line) << relative << " #" << i;
    EXPECT_EQ(finding.function, golden[i].function) << relative << " #" << i;
    EXPECT_EQ(finding.slot_name, golden[i].variable) << relative << " #" << i;
    EXPECT_STREQ(CandidateKindName(finding.kind), golden[i].kind) << relative << " #" << i;
  }
}

TEST(CorpusGolden, FuzzParamOverwrite) {
  ExpectGolden("fuzz/fuzz_param_overwrite.c",
               {
                   {"970f8d8463fc9318", 6, "fn1", "v4", "overwritten-param"},
                   {"f08cf68f27a6a8ed", 6, "fn1", "v5", "unused-param"},
                   {"387b845b9f2431ae", 7, "fn1", "v4", "plain-unused"},
               });
}

TEST(CorpusGolden, FuzzGlobalLoop) {
  ExpectGolden("fuzz/fuzz_global_loop.c",
               {
                   {"f6375c18a6431613", 13, "fn7", "v13", "unused-param"},
                   {"cca4591951de5324", 15, "fn7", "v15", "plain-unused"},
               });
}

}  // namespace
}  // namespace testing
}  // namespace vc

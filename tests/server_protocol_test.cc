// Serve wire-protocol edge cases, socket-free: frame round trips, pathological
// split points, truncated frames, oversized length prefixes, and malformed
// request payloads (src/server/protocol.h, src/server/request.h).

#include "src/server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/server/request.h"
#include "src/support/json_reader.h"

namespace vc {
namespace {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsOnePayload) {
  std::string frame = EncodeFrame("{\"id\":\"x\"}");
  ASSERT_EQ(frame.size(), 4u + 10u);
  // Big-endian length prefix.
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 10u);

  FrameDecoder decoder;
  decoder.Feed(frame);
  std::string payload;
  ASSERT_TRUE(decoder.Pop(&payload));
  EXPECT_EQ(payload, "{\"id\":\"x\"}");
  EXPECT_FALSE(decoder.Pop(&payload));
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_FALSE(decoder.error());
}

TEST(FrameCodec, EmptyPayloadIsAValidFrame) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(""));
  std::string payload = "sentinel";
  ASSERT_TRUE(decoder.Pop(&payload));
  EXPECT_EQ(payload, "");
}

TEST(FrameCodec, ByteAtATimeFeedYieldsTheSamePayloads) {
  std::string stream = EncodeFrame("first") + EncodeFrame("second payload");
  FrameDecoder decoder;
  for (char byte : stream) {
    decoder.Feed(&byte, 1);
  }
  std::string payload;
  ASSERT_TRUE(decoder.Pop(&payload));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(decoder.Pop(&payload));
  EXPECT_EQ(payload, "second payload");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameCodec, EverySplitPointOfTwoFramesDecodesIdentically) {
  const std::string stream = EncodeFrame("alpha") + EncodeFrame("beta");
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(stream.data(), split);
    decoder.Feed(stream.data() + split, stream.size() - split);
    std::string a;
    std::string b;
    ASSERT_TRUE(decoder.Pop(&a)) << "split at " << split;
    ASSERT_TRUE(decoder.Pop(&b)) << "split at " << split;
    EXPECT_EQ(a, "alpha");
    EXPECT_EQ(b, "beta");
    EXPECT_FALSE(decoder.error());
  }
}

TEST(FrameCodec, MultipleFramesInOneFeedAllPop) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("a") + EncodeFrame("bb") + EncodeFrame("ccc"));
  std::string payload;
  std::vector<std::string> popped;
  while (decoder.Pop(&payload)) {
    popped.push_back(payload);
  }
  EXPECT_EQ(popped, (std::vector<std::string>{"a", "bb", "ccc"}));
}

TEST(FrameCodec, TruncatedFrameStaysMidFrame) {
  std::string frame = EncodeFrame("truncated payload");
  FrameDecoder decoder;
  // Everything but the last byte: the decoder must hold, not emit.
  decoder.Feed(frame.data(), frame.size() - 1);
  std::string payload;
  EXPECT_FALSE(decoder.Pop(&payload));
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_FALSE(decoder.error());
  // The missing byte completes it.
  decoder.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(decoder.Pop(&payload));
  EXPECT_EQ(payload, "truncated payload");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameCodec, PartialPrefixAloneIsMidFrame) {
  FrameDecoder decoder;
  const char two_bytes[] = {0, 0};
  decoder.Feed(two_bytes, 2);
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_EQ(decoder.pending_bytes(), 2u);
  std::string payload;
  EXPECT_FALSE(decoder.Pop(&payload));
}

TEST(FrameCodec, OversizedLengthPrefixIsAStickyError) {
  // 0xFFFFFFFF-length prefix: refuse before buffering the alleged 4 GiB.
  const unsigned char prefix[] = {0xFF, 0xFF, 0xFF, 0xFF};
  FrameDecoder decoder;
  decoder.Feed(reinterpret_cast<const char*>(prefix), 4);
  EXPECT_TRUE(decoder.error());
  EXPECT_FALSE(decoder.error_message().empty());
  // The stream cannot be resynchronized: further feeds are no-ops.
  decoder.Feed(EncodeFrame("valid"));
  std::string payload;
  EXPECT_FALSE(decoder.Pop(&payload));
  EXPECT_TRUE(decoder.error());
}

TEST(FrameCodec, PrefixJustOverTheCeilingIsRejected) {
  uint32_t over = kMaxFramePayload + 1;
  const unsigned char prefix[] = {
      static_cast<unsigned char>(over >> 24), static_cast<unsigned char>(over >> 16),
      static_cast<unsigned char>(over >> 8), static_cast<unsigned char>(over)};
  FrameDecoder decoder;
  decoder.Feed(reinterpret_cast<const char*>(prefix), 4);
  EXPECT_TRUE(decoder.error());
}

TEST(FrameCodec, FrameAtTheCeilingIsAccepted) {
  // Exactly kMaxFramePayload must decode — the limit is inclusive.
  std::string payload(kMaxFramePayload, 'x');
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame(payload));
  std::string out;
  ASSERT_TRUE(decoder.Pop(&out));
  EXPECT_EQ(out.size(), kMaxFramePayload);
  EXPECT_FALSE(decoder.error());
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

TEST(ServeRequestParse, AnalyzeRequestParsesEveryField) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequest(
      R"({"id":"c1-t2","method":"analyze","project":"w0",)"
      R"("sources":[{"path":"w0/a.c","content":"int f() { return 0; }"}],)"
      R"("jobs":4,"checkers":["unused-def"],"fault_inject":"42:0.1",)"
      R"("deadline_ms":250,"render":"json","debug_sleep_ms":5})",
      &request, &error))
      << error;
  EXPECT_EQ(request.id, "c1-t2");
  EXPECT_EQ(request.method, ServeMethod::kAnalyze);
  EXPECT_EQ(request.project, "w0");
  ASSERT_EQ(request.sources.size(), 1u);
  EXPECT_EQ(request.sources[0].first, "w0/a.c");
  EXPECT_EQ(request.jobs, 4);
  ASSERT_EQ(request.checkers.size(), 1u);
  EXPECT_EQ(request.checkers[0], "unused-def");
  EXPECT_EQ(request.fault_spec, "42:0.1");
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
  EXPECT_EQ(request.render, "json");
  EXPECT_EQ(request.debug_sleep_ms, 5);
}

TEST(ServeRequestParse, InvalidJsonFailsButKeepsNothing) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequest("{\"id\":\"x\",", &request, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseServeRequest("not json at all", &request, &error));
  EXPECT_FALSE(ParseServeRequest("[1,2,3]", &request, &error));
  EXPECT_FALSE(ParseServeRequest("", &request, &error));
}

TEST(ServeRequestParse, UnknownMethodFailsButRecoversId) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequest(R"({"id":"e7","method":"explode"})", &request, &error));
  EXPECT_EQ(request.id, "e7") << "the error response must echo the id";
  EXPECT_NE(error.find("explode"), std::string::npos);
}

TEST(ServeRequestParse, AnalyzeWithoutSourcesFails) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequest(R"({"id":"a","method":"analyze","project":"p"})",
                                 &request, &error));
}

TEST(ServeRequestParse, ProjectRequiredExceptPingAndShutdown) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequest(R"({"id":"d","method":"diff"})", &request, &error));
  EXPECT_TRUE(ParseServeRequest(R"({"id":"p","method":"ping"})", &request, &error));
  EXPECT_TRUE(ParseServeRequest(R"({"id":"s","method":"shutdown"})", &request, &error));
}

TEST(ServeRequestParse, BadRenderAndNegativeJobsFail) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequest(
      R"({"id":"r","method":"report","project":"p","render":"xml"})", &request, &error));
  EXPECT_FALSE(ParseServeRequest(
      R"({"id":"j","method":"report","project":"p","jobs":-1})", &request, &error));
}

TEST(ServeResponses, BuildersEmitWellFormedJson) {
  std::optional<JsonValue> error_response =
      ParseJson(MakeErrorResponse("e1", "bad_request", "what \"happened\""));
  ASSERT_TRUE(error_response.has_value());
  EXPECT_EQ(error_response->GetString("id"), "e1");
  EXPECT_EQ(error_response->GetString("status"), "error");
  EXPECT_EQ(error_response->GetString("code"), "bad_request");
  EXPECT_EQ(error_response->GetString("message"), "what \"happened\"");

  std::optional<JsonValue> shed = ParseJson(MakeShedResponse("s1", 40, "queue_full"));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->GetString("status"), "shed");
  EXPECT_EQ(shed->GetInt("retry_after_ms"), 40);
  EXPECT_EQ(shed->GetString("reason"), "queue_full");

  std::optional<JsonValue> deadline = ParseJson(MakeDeadlineResponse("d1", 123.5));
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(deadline->GetString("status"), "deadline");

  std::optional<JsonValue> pong = ParseJson(MakePongResponse("p1"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->GetString("status"), "ok");
  EXPECT_EQ(pong->GetString("id"), "p1");
}

}  // namespace
}  // namespace vc

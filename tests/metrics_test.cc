// Tests for the observability layer: metrics primitives under concurrency,
// the global registry, trace collection + Chrome trace-event JSON export,
// and log-level parsing.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace vc {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

TEST(Counter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, AddWithDelta) {
  Counter counter;
  counter.Add(5);
  counter.Add(7);
  EXPECT_EQ(counter.value(), 12u);
}

TEST(Gauge, UpdateMaxKeepsHighWaterMarkUnderContention) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 5000; ++i) {
        gauge.UpdateMax(static_cast<int64_t>(t) * 10000 + i);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Largest value any thread submitted: t=7, i=4999.
  EXPECT_EQ(gauge.value(), 7 * 10000 + 4999);
}

TEST(Gauge, SetOverwrites) {
  Gauge gauge;
  gauge.Set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.UpdateMax(3);  // below current: no change
  EXPECT_EQ(gauge.value(), 7);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, ExactCountSumMinMax) {
  Histogram histogram;
  histogram.RecordMicros(10);
  histogram.RecordMicros(100);
  histogram.RecordMicros(1000);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(), 1110e-6);
  EXPECT_DOUBLE_EQ(histogram.min_seconds(), 10e-6);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 1000e-6);
  EXPECT_NEAR(histogram.mean_seconds(), 370e-6, 1e-12);
}

TEST(Histogram, BucketsAreLogScaleNanoseconds) {
  Histogram histogram;
  histogram.RecordNanos(0);   // bucket 0
  histogram.RecordNanos(1);   // bucket 0: [1, 2)
  histogram.RecordNanos(2);   // bucket 1: [2, 4)
  histogram.RecordNanos(3);   // bucket 1
  histogram.RecordNanos(4);   // bucket 2: [4, 8)
  histogram.RecordNanos(7);   // bucket 2
  histogram.RecordNanos(8);   // bucket 3: [8, 16)
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 2u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);
  EXPECT_EQ(Histogram::BucketLowerNanos(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerNanos(3), 8u);
}

TEST(Histogram, SubMicrosecondSamplesStayDistinct) {
  // The ns-internal representation separates samples the old µs-internal
  // histogram collapsed into one bucket at zero.
  Histogram histogram;
  histogram.RecordNanos(100);  // bucket 6: [64, 128)
  histogram.RecordNanos(900);  // bucket 9: [512, 1024)
  EXPECT_EQ(histogram.BucketCount(6), 1u);
  EXPECT_EQ(histogram.BucketCount(9), 1u);
  EXPECT_DOUBLE_EQ(histogram.min_seconds(), 100e-9);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 900e-9);
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(), 1000e-9);
}

TEST(Histogram, MicrosShimScalesToNanos) {
  Histogram histogram;
  histogram.RecordMicros(1);  // 1000 ns -> bucket 9: [512, 1024)
  EXPECT_EQ(histogram.BucketCount(9), 1u);
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(), 1e-6);
}

TEST(Histogram, ConcurrentRecordsKeepCountAndSumExact) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.RecordMicros(static_cast<uint64_t>(i % 512));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Sum of (i % 512) over kPerThread values, times kThreads, exactly.
  uint64_t per_thread_sum = 0;
  for (int i = 0; i < kPerThread; ++i) {
    per_thread_sum += static_cast<uint64_t>(i % 512);
  }
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(),
                   static_cast<double>(per_thread_sum * kThreads) / 1e6);
  EXPECT_DOUBLE_EQ(histogram.min_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 511e-6);
  // Bucket totals must account for every sample.
  uint64_t bucket_total = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    bucket_total += histogram.BucketCount(b);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

TEST(Histogram, PercentilesBracketTheDistribution) {
  Histogram histogram;
  for (int i = 0; i < 99; ++i) {
    histogram.RecordMicros(10);  // bucket [8, 16)
  }
  histogram.RecordMicros(100000);  // one large outlier
  double p50 = histogram.PercentileSeconds(0.50);
  double p95 = histogram.PercentileSeconds(0.95);
  double p100 = histogram.PercentileSeconds(1.0);
  // p50/p95 land in the [8192,16384)ns bucket; upper bound is 16.384µs.
  EXPECT_GE(p50, 10e-6);
  EXPECT_LE(p50, 16.384e-6);
  EXPECT_LE(p95, 16.384e-6);
  // The max percentile must see the outlier (clamped to observed max).
  EXPECT_GE(p100, 64e-3);
  EXPECT_LE(p100, 100e-3 + 1e-9);
  EXPECT_DOUBLE_EQ(Histogram().PercentileSeconds(0.5), 0.0);
}

TEST(Histogram, ValueAtQuantileWalksBucketBoundaries) {
  Histogram histogram;
  // 50 samples in [8192,16384)ns, 45 in [65536,131072)ns, 5 in ~[1.05,2.1)ms:
  // the p50/p95/p99 ranks land in the first, second, and third group.
  for (int i = 0; i < 50; ++i) {
    histogram.RecordMicros(10);
  }
  for (int i = 0; i < 45; ++i) {
    histogram.RecordMicros(100);
  }
  for (int i = 0; i < 5; ++i) {
    histogram.RecordMicros(2000);
  }
  EXPECT_EQ(histogram.ValueAtQuantileNanos(0.50), 16384u);
  EXPECT_EQ(histogram.ValueAtQuantileNanos(0.95), 131072u);
  // p99 lands in the 2ms group; its bucket upper bound (2097152ns) clamps to
  // the exact observed max.
  EXPECT_EQ(histogram.ValueAtQuantileNanos(0.99), 2000000u);
  EXPECT_DOUBLE_EQ(histogram.ValueAtQuantile(0.50), 16384e-9);
}

TEST(Histogram, ValueAtQuantileClampsToObservedMax) {
  Histogram histogram;
  histogram.RecordMicros(10);  // bucket upper bound 16384ns, max 10000ns
  EXPECT_EQ(histogram.ValueAtQuantileNanos(1.0), 10000u);
  EXPECT_EQ(histogram.ValueAtQuantileNanos(0.0), 10000u);  // single sample
}

TEST(Histogram, ValueAtQuantileEdgeCases) {
  EXPECT_EQ(Histogram().ValueAtQuantileNanos(0.5), 0u);  // empty histogram
  Histogram histogram;
  for (int i = 0; i < 4; ++i) {
    histogram.RecordMicros(1);  // all in one bucket
  }
  // Out-of-range quantiles clamp instead of indexing past the counts.
  EXPECT_EQ(histogram.ValueAtQuantileNanos(-1.0), histogram.ValueAtQuantileNanos(0.0));
  EXPECT_EQ(histogram.ValueAtQuantileNanos(2.0), histogram.ValueAtQuantileNanos(1.0));
  // A uniform single-bucket distribution reports that bucket at any quantile.
  EXPECT_EQ(histogram.ValueAtQuantileNanos(0.0), histogram.ValueAtQuantileNanos(1.0));
}

TEST(Histogram, ResetClearsEverything) {
  Histogram histogram;
  histogram.RecordMicros(123);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsSameInstance) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("test.registry.counter");
  Counter& b = registry.GetCounter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndTyped) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot.zebra").Add(1);
  registry.GetGauge("test.snapshot.alpha").Set(5);
  registry.GetHistogram("test.snapshot.mid").RecordMicros(50);

  std::vector<MetricRow> rows = registry.Snapshot();
  ASSERT_GE(rows.size(), 3u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].name, rows[i].name);
  }
  bool saw_counter = false, saw_gauge = false, saw_histogram = false;
  for (const MetricRow& row : rows) {
    if (row.name == "test.snapshot.zebra") {
      EXPECT_EQ(row.type, "counter");
      EXPECT_EQ(row.count, 1u);
      saw_counter = true;
    } else if (row.name == "test.snapshot.alpha") {
      EXPECT_EQ(row.type, "gauge");
      EXPECT_EQ(row.count, 5u);
      saw_gauge = true;
    } else if (row.name == "test.snapshot.mid") {
      EXPECT_EQ(row.type, "histogram");
      EXPECT_EQ(row.count, 1u);
      saw_histogram = true;
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
}

TEST(MetricsRegistry, RenderTableMentionsNonZeroMetrics) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.render.hits").Add(9);
  std::string table = registry.RenderTable();
  EXPECT_NE(table.find("test.render.hits"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
}

TEST(MetricsRegistry, RenderPrometheusExposesEveryMetricKind) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.prom.hits").Add(4);
  registry.GetGauge("test.prom.depth").Set(17);
  Histogram& histogram = registry.GetHistogram("test.prom.lat");
  histogram.Reset();
  histogram.RecordNanos(1000);
  histogram.RecordNanos(3000);

  std::string out = registry.RenderPrometheus();
  // Names are vc_-prefixed and sanitized ('.' -> '_'); counters get _total.
  EXPECT_NE(out.find("# TYPE vc_test_prom_hits_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("vc_test_prom_hits_total 4\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE vc_test_prom_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("vc_test_prom_depth 17\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE vc_test_prom_lat histogram\n"), std::string::npos);
  // Buckets are cumulative with bounds in seconds: 1000ns lands in the
  // [512,1024)ns bucket, upper bound 1.024e-06 s.
  EXPECT_NE(out.find("vc_test_prom_lat_bucket{le=\"1.024e-06\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("vc_test_prom_lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("vc_test_prom_lat_sum 4e-06\n"), std::string::npos);
  EXPECT_NE(out.find("vc_test_prom_lat_count 2\n"), std::string::npos);
}

TEST(MetricsRegistry, EnableDisableToggleMetricsEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  bool was_enabled = registry.enabled();
  registry.Enable();
  EXPECT_TRUE(MetricsEnabled());
  registry.Disable();
  EXPECT_FALSE(MetricsEnabled());
  if (was_enabled) {
    registry.Enable();
  }
}

TEST(MetricsRegistry, ConcurrentRegistrationIsSafe) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> distinct{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &distinct] {
      for (int i = 0; i < 50; ++i) {
        registry.GetCounter("test.concurrent." + std::to_string(i)).Add();
      }
      distinct.fetch_add(1);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(distinct.load(), kThreads);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(registry.GetCounter("test.concurrent." + std::to_string(i)).value(),
              static_cast<uint64_t>(kThreads));
  }
}

TEST(ScopedTimer, RecordsOnlyWhenEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  bool was_enabled = registry.enabled();

  registry.Disable();
  double seconds = 0.0;
  { ScopedTimer timer(&seconds); }
  EXPECT_DOUBLE_EQ(seconds, 0.0);

  registry.Enable();
  Histogram histogram;
  { ScopedTimer timer(&seconds, &histogram); }
  EXPECT_GE(seconds, 0.0);
  EXPECT_EQ(histogram.count(), 1u);

  if (!was_enabled) {
    registry.Disable();
  }
}

// ---------------------------------------------------------------------------
// ThreadPoolStats
// ---------------------------------------------------------------------------

TEST(ThreadPoolStats, DeltaSubtractsFlowsKeepsLevels) {
  ThreadPoolStats before;
  before.parallel_fors = 2;
  before.tasks_executed = 10;
  before.chunks_executed = 20;
  before.steals = 3;
  before.queue_depth_hwm = 4;
  before.worker_idle_seconds = 1.0;
  before.workers = 8;

  ThreadPoolStats after = before;
  after.parallel_fors = 5;
  after.tasks_executed = 25;
  after.chunks_executed = 60;
  after.steals = 9;
  after.queue_depth_hwm = 6;
  after.worker_idle_seconds = 2.5;

  ThreadPoolStats delta = after.Delta(before);
  EXPECT_EQ(delta.parallel_fors, 3u);
  EXPECT_EQ(delta.tasks_executed, 15u);
  EXPECT_EQ(delta.chunks_executed, 40u);
  EXPECT_EQ(delta.steals, 6u);
  EXPECT_EQ(delta.queue_depth_hwm, 6u);  // level: kept absolute
  EXPECT_DOUBLE_EQ(delta.worker_idle_seconds, 1.5);
  EXPECT_EQ(delta.workers, 8);
}

TEST(ThreadPoolStats, PoolCountsChunksAcrossParallelFor) {
  ThreadPool& pool = ThreadPool::Global();
  ThreadPoolStats before = pool.stats();
  std::atomic<int> sum{0};
  pool.ParallelFor(4, 100, [&sum](size_t) { sum.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 100);
  ThreadPoolStats delta = pool.stats().Delta(before);
  EXPECT_GE(delta.parallel_fors, 1u);
  EXPECT_GE(delta.chunks_executed, 1u);
}

// ---------------------------------------------------------------------------
// TraceCollector / TraceSpan
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Disable();
  collector.Clear();
  {
    TraceSpan span("should_not_appear", "test");
    span.Arg("k", static_cast<int64_t>(1));
  }
  EXPECT_EQ(collector.EventCount(), 0u);
}

TEST(Trace, SpansFromManyThreadsAllExport) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker_span", "test");
        span.Arg("thread", static_cast<int64_t>(t));
        span.Arg("iter", static_cast<int64_t>(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // The main thread contributes one more span.
  { TraceSpan span("main_span", "test"); }
  collector.Disable();

  EXPECT_GE(collector.EventCount(),
            static_cast<size_t>(kThreads) * kSpansPerThread + 1);

  std::string json = collector.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"worker_span\""), std::string::npos);
  EXPECT_NE(json.find("\"main_span\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  collector.Clear();
}

TEST(Trace, EnableStartsFreshEpoch) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  { TraceSpan span("first_epoch", "test"); }
  EXPECT_GE(collector.EventCount(), 1u);
  collector.Enable();  // re-enable clears the buffers
  EXPECT_EQ(collector.EventCount(), 0u);
  { TraceSpan span("second_epoch", "test"); }
  collector.Disable();
  std::string json = collector.ToJson();
  EXPECT_EQ(json.find("first_epoch"), std::string::npos);
  EXPECT_NE(json.find("second_epoch"), std::string::npos);
  collector.Clear();
}

TEST(Trace, ArgsAreEscapedIntoJson) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Enable();
  {
    TraceSpan span("args_span", "test");
    span.Arg("file", std::string("dir\\name \"quoted\".c"));
    span.Arg("n", static_cast<int64_t>(42));
  }
  collector.Disable();
  std::string json = collector.ToJson();
  EXPECT_NE(json.find("\"args\""), std::string::npos);
  EXPECT_NE(json.find("\\\\name"), std::string::npos);    // backslash escaped
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // quotes escaped
  collector.Clear();
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(Logging, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);  // case-insensitive
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
}

TEST(Logging, LevelGatesEnablement) {
  LogLevel original = CurrentLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  SetLogLevel(original);
}

TEST(Logging, LevelNamesRoundTrip) {
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
}

}  // namespace
}  // namespace vc

// Fault isolation & resource budgets: the FaultInjector/BudgetMeter
// primitives, and the pipeline-level quarantine contract — a faulted or
// over-budget unit is dropped with a structured record while every healthy
// unit's findings stay byte-identical to a clean run, at any job count.

#include "src/support/fault.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/analysis.h"

namespace vc {
namespace {

// --- FaultInjector ------------------------------------------------------------

TEST(FaultInjector, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.ShouldFault(fault_sites::kParseFile, "a.c"));
  injector.MaybeFault(fault_sites::kParseFile, "a.c");  // must not throw
}

TEST(FaultInjector, RateExtremes) {
  FaultInjector never(7, 0.0);
  FaultInjector always(7, 1.0);
  EXPECT_FALSE(never.enabled());
  EXPECT_TRUE(always.enabled());
  for (const char* unit : {"a.c", "b.c", "a.c:f", "a.c:g"}) {
    EXPECT_FALSE(never.ShouldFault(fault_sites::kDetectFunction, unit));
    EXPECT_TRUE(always.ShouldFault(fault_sites::kDetectFunction, unit));
  }
  EXPECT_THROW(always.MaybeFault(fault_sites::kDetectFunction, "a.c:f"), InjectedFaultError);
}

TEST(FaultInjector, DecisionIsPureFunctionOfSeedSiteUnit) {
  FaultInjector a(42, 0.5);
  FaultInjector b(42, 0.5);
  FaultInjector other_seed(43, 0.5);
  int faults = 0;
  int seed_disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    std::string unit = "file" + std::to_string(i) + ".c:func";
    bool fa = a.ShouldFault(fault_sites::kDetectFunction, unit);
    // Same seed: identical decision no matter the call order or count.
    EXPECT_EQ(fa, b.ShouldFault(fault_sites::kDetectFunction, unit));
    EXPECT_EQ(fa, a.ShouldFault(fault_sites::kDetectFunction, unit));
    faults += fa ? 1 : 0;
    seed_disagreements +=
        fa != other_seed.ShouldFault(fault_sites::kDetectFunction, unit) ? 1 : 0;
  }
  // Rate 0.5 over 200 units: loose bounds, just "not degenerate".
  EXPECT_GT(faults, 50);
  EXPECT_LT(faults, 150);
  EXPECT_GT(seed_disagreements, 0);
}

TEST(FaultInjector, SitesAreIndependent) {
  FaultInjector injector(9, 0.5);
  bool any_differ = false;
  for (int i = 0; i < 64 && !any_differ; ++i) {
    std::string unit = "u" + std::to_string(i);
    any_differ = injector.ShouldFault(fault_sites::kPruneFunction, unit) !=
                 injector.ShouldFault(fault_sites::kRankFunction, unit);
  }
  EXPECT_TRUE(any_differ);
}

TEST(FaultInjector, ParsesSeedRateSpec) {
  std::string error;
  std::optional<FaultInjector> ok = FaultInjector::Parse("42:0.25", &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->seed(), 42u);
  EXPECT_DOUBLE_EQ(ok->rate(), 0.25);

  for (const char* bad : {"", "42", ":0.5", "42:", "x:0.5", "42:x", "42:1.5", "42:-0.1"}) {
    error.clear();
    EXPECT_FALSE(FaultInjector::Parse(bad, &error).has_value()) << "'" << bad << "'";
    EXPECT_FALSE(error.empty()) << "'" << bad << "'";
  }
}

// --- BudgetMeter --------------------------------------------------------------

TEST(BudgetMeter, UnlimitedBudgetNeverThrows) {
  ResourceBudget budget;
  EXPECT_TRUE(budget.Unlimited());
  BudgetMeter meter(budget);
  for (int i = 0; i < 10000; ++i) {
    meter.Charge(1000);
  }
  EXPECT_EQ(meter.steps(), 10000u * 1000u);
}

TEST(BudgetMeter, StepLimitThrowsPastLimit) {
  ResourceBudget budget;
  budget.detect_step_limit = 10;
  EXPECT_FALSE(budget.Unlimited());
  BudgetMeter meter(budget);
  meter.Charge(10);  // exactly at the limit: fine
  EXPECT_THROW(meter.Charge(1), BudgetExceededError);
}

TEST(BudgetMeter, ExpiredDeadlineThrows) {
  ResourceBudget budget;
  budget.unit_deadline_seconds = 1e-9;  // already elapsed by the first check
  BudgetMeter meter(budget);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1 << 20; ++i) {
          meter.Charge();
        }
      },
      BudgetExceededError);
}

// --- Pipeline quarantine contract ---------------------------------------------

using Sources = std::vector<std::pair<std::string, std::string>>;

Sources SampleSources() {
  // Three files, each with an unused-definition finding plus healthy code, so
  // partial quarantine visibly shrinks the finding set.
  Sources sources;
  sources.push_back({"alpha.c",
                     "int alpha(int a) {\n"
                     "  int dead = a + 1;\n"
                     "  dead = a + 2;\n"
                     "  return dead;\n"
                     "}\n"});
  sources.push_back({"beta.c",
                     "int beta(int b) {\n"
                     "  int dead = b + 1;\n"
                     "  dead = b + 2;\n"
                     "  return dead;\n"
                     "}\n"});
  sources.push_back({"gamma.c",
                     "int gamma(int c) {\n"
                     "  int dead = c + 1;\n"
                     "  dead = c + 2;\n"
                     "  return dead;\n"
                     "}\n"});
  return sources;
}

AnalysisReport RunWith(const Sources& sources, int jobs, FaultInjector fault,
                       ResourceBudget budget = ResourceBudget()) {
  AnalysisOptions options;
  options.cross_scope_only = false;
  // Peer-definition pruning reads corpus-global statistics, so quarantining
  // one unit can legitimately change another's verdict; disable it to make
  // the subset assertions exact (see DESIGN.md §"Fault isolation").
  options.prune.peer_definition = false;
  options.jobs = jobs;
  options.fault = fault;
  options.budget = budget;
  return Analysis(options).RunOnSources(sources);
}

std::set<std::string> Fingerprints(const AnalysisReport& report) {
  std::set<std::string> set;
  for (const UnusedDefCandidate& cand : report.findings) {
    set.insert(cand.fingerprint);
  }
  return set;
}

std::string QuarantineKey(const AnalysisReport& report) {
  std::string out;
  for (const QuarantinedUnit& unit : report.quarantined) {
    out += unit.path + "|" + unit.function + "|" + unit.stage + "|" + unit.reason + "\n";
  }
  return out;
}

TEST(FaultIsolation, CleanRunIsNotDegraded) {
  AnalysisReport report = RunWith(SampleSources(), 2, FaultInjector());
  EXPECT_FALSE(report.degraded);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_FALSE(report.findings.empty());
}

TEST(FaultIsolation, FullFaultRateQuarantinesEveryFileAndStillCompletes) {
  AnalysisReport report = RunWith(SampleSources(), 2, FaultInjector(1, 1.0));
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.quarantined.size(), 3u);  // every file at the first site
  for (const QuarantinedUnit& unit : report.quarantined) {
    EXPECT_EQ(unit.stage, "parse");
    EXPECT_TRUE(unit.function.empty());
    EXPECT_NE(unit.reason.find("injected fault"), std::string::npos);
  }
  // The quarantined files must not leak parse errors into the report.
  EXPECT_EQ(report.diagnostic_errors, 0);
}

TEST(FaultIsolation, SurvivingFindingsAreSubsetOfCleanRun) {
  Sources sources = SampleSources();
  AnalysisReport clean = RunWith(sources, 1, FaultInjector());
  std::set<std::string> clean_fps = Fingerprints(clean);
  ASSERT_EQ(clean_fps.size(), 3u);

  // Scan seeds until one quarantines some-but-not-all units, so the subset
  // check is non-trivial in both directions.
  bool exercised = false;
  for (uint64_t seed = 1; seed <= 32 && !exercised; ++seed) {
    AnalysisReport faulted = RunWith(sources, 1, FaultInjector(seed, 0.5));
    std::set<std::string> faulted_fps = Fingerprints(faulted);
    for (const std::string& fp : faulted_fps) {
      EXPECT_TRUE(clean_fps.count(fp))
          << "seed " << seed << " gained fingerprint " << fp;
    }
    EXPECT_EQ(faulted.degraded, !faulted.quarantined.empty());
    exercised = !faulted.quarantined.empty() && !faulted_fps.empty();
  }
  EXPECT_TRUE(exercised) << "no seed in 1..32 produced a partial quarantine";
}

TEST(FaultIsolation, QuarantineAndFindingsIdenticalAcrossJobs) {
  Sources sources = SampleSources();
  for (uint64_t seed : {3u, 11u, 19u}) {
    AnalysisReport base = RunWith(sources, 1, FaultInjector(seed, 0.5));
    std::set<std::string> base_fps = Fingerprints(base);
    std::string base_quarantine = QuarantineKey(base);
    for (int jobs : {2, 8}) {
      AnalysisReport report = RunWith(sources, jobs, FaultInjector(seed, 0.5));
      EXPECT_EQ(Fingerprints(report), base_fps) << "seed " << seed << " jobs " << jobs;
      EXPECT_EQ(QuarantineKey(report), base_quarantine)
          << "seed " << seed << " jobs " << jobs;
    }
  }
}

TEST(FaultIsolation, DetectStepBudgetQuarantinesEveryFunction) {
  ResourceBudget budget;
  budget.detect_step_limit = 1;  // no real function fits in one step
  AnalysisReport report = RunWith(SampleSources(), 2, FaultInjector(), budget);
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.quarantined.size(), 3u);
  std::set<std::string> functions;
  for (const QuarantinedUnit& unit : report.quarantined) {
    EXPECT_EQ(unit.stage, "detect");
    EXPECT_NE(unit.reason.find("step budget exceeded"), std::string::npos);
    functions.insert(unit.function);
  }
  EXPECT_EQ(functions, (std::set<std::string>{"alpha", "beta", "gamma"}));
}

TEST(FaultIsolation, GenerousDetectBudgetChangesNothing) {
  ResourceBudget budget;
  budget.detect_step_limit = 1 << 20;
  AnalysisReport clean = RunWith(SampleSources(), 2, FaultInjector());
  AnalysisReport budgeted = RunWith(SampleSources(), 2, FaultInjector(), budget);
  EXPECT_FALSE(budgeted.degraded);
  EXPECT_EQ(Fingerprints(budgeted), Fingerprints(clean));
}

}  // namespace
}  // namespace vc

// DOK and EA familiarity model tests: feature extraction from commit logs,
// the linear model, weight fitting (the paper's §6 calibration procedure),
// and the commit-type classifier behind the EA alternative (§9.2).

#include <gtest/gtest.h>

#include <cmath>

#include "src/familiarity/dok_model.h"
#include "src/familiarity/ea_model.h"
#include "src/support/rng.h"

namespace vc {
namespace {

Repository MakeRepo(AuthorId* alice, AuthorId* bob) {
  Repository repo;
  *alice = repo.AddAuthor("alice");
  *bob = repo.AddAuthor("bob");
  return repo;
}

TEST(DokModel, FeaturesFromLog) {
  AuthorId alice;
  AuthorId bob;
  Repository repo = MakeRepo(&alice, &bob);
  repo.AddCommit(alice, 1, "create", {{"f.c", "1\n"}});
  repo.AddCommit(alice, 2, "more", {{"f.c", "1\n2\n"}});
  repo.AddCommit(bob, 3, "tweak", {{"f.c", "1\n2\n3\n"}});

  DokFeatures alice_f = ComputeDokFeatures(repo, alice, "f.c");
  EXPECT_TRUE(alice_f.first_authorship);
  EXPECT_EQ(alice_f.deliveries, 2);
  EXPECT_EQ(alice_f.acceptances, 1);

  DokFeatures bob_f = ComputeDokFeatures(repo, bob, "f.c");
  EXPECT_FALSE(bob_f.first_authorship);
  EXPECT_EQ(bob_f.deliveries, 1);
  EXPECT_EQ(bob_f.acceptances, 2);
}

TEST(DokModel, FeaturesForUntouchedFile) {
  AuthorId alice;
  AuthorId bob;
  Repository repo = MakeRepo(&alice, &bob);
  repo.AddCommit(alice, 1, "create", {{"f.c", "1\n"}});
  DokFeatures bob_f = ComputeDokFeatures(repo, bob, "f.c");
  EXPECT_FALSE(bob_f.first_authorship);
  EXPECT_EQ(bob_f.deliveries, 0);
  EXPECT_EQ(bob_f.acceptances, 1);
}

TEST(DokModel, ScoreMatchesFormula) {
  DokFeatures features;
  features.first_authorship = true;
  features.deliveries = 3;
  features.acceptances = 7;
  DokWeights weights;  // paper values: 3.1, 1.2, 0.2, 0.5
  double expected = 3.1 + 1.2 * 1.0 + 0.2 * 3.0 - 0.5 * std::log(8.0);
  EXPECT_DOUBLE_EQ(DokScore(features, weights), expected);
}

TEST(DokModel, FounderOutranksDriveBy) {
  AuthorId alice;
  AuthorId bob;
  Repository repo = MakeRepo(&alice, &bob);
  std::string content = "1\n";
  repo.AddCommit(alice, 1, "create", {{"f.c", content}});
  for (int i = 0; i < 8; ++i) {
    content += std::to_string(i) + "\n";
    repo.AddCommit(alice, 2 + i, "evolve", {{"f.c", content}});
  }
  repo.AddCommit(bob, 100, "drive by", {{"f.c", content + "z\n"}});
  EXPECT_GT(DokScoreFor(repo, alice, "f.c"), DokScoreFor(repo, bob, "f.c"));
}

TEST(DokModel, AblationWeights) {
  DokWeights w;
  EXPECT_EQ(w.WithoutFa().fa, 0.0);
  EXPECT_EQ(w.WithoutFa().dl, w.dl);
  EXPECT_EQ(w.WithoutDl().dl, 0.0);
  EXPECT_EQ(w.WithoutAc().ac, 0.0);
}

TEST(DokModel, FitRecoversPlantedWeights) {
  // Reproduce the paper's calibration: sample lines, synthesize self-ratings
  // from a ground-truth linear model plus noise, fit, and recover weights
  // close to the planted ones.
  const DokWeights truth{3.1, 1.2, 0.2, 0.5};
  Rng rng(2024);
  std::vector<RatingSample> samples;
  for (int i = 0; i < 160; ++i) {  // 40 lines x 4 applications
    RatingSample sample;
    sample.features.first_authorship = rng.NextBool(0.3);
    sample.features.deliveries = static_cast<int>(rng.NextInRange(0, 12));
    sample.features.acceptances = static_cast<int>(rng.NextInRange(0, 40));
    sample.rating = DokScore(sample.features, truth) + rng.NextGaussian(0.0, 0.25);
    samples.push_back(sample);
  }
  auto fit = FitDokWeights(samples);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->a0, truth.a0, 0.25);
  EXPECT_NEAR(fit->fa, truth.fa, 0.2);
  EXPECT_NEAR(fit->dl, truth.dl, 0.1);
  EXPECT_NEAR(fit->ac, truth.ac, 0.15);
}

TEST(DokModel, FitRejectsDegenerateSample) {
  std::vector<RatingSample> samples(3);  // fewer samples than coefficients
  EXPECT_FALSE(FitDokWeights(samples).has_value());
}

// --- EA model -----------------------------------------------------------------

TEST(EaModel, CommitClassification) {
  EXPECT_EQ(ClassifyCommitMessage("fix null deref in acl path"), CommitKind::kBugFix);
  EXPECT_EQ(ClassifyCommitMessage("Refactor buffer handling"), CommitKind::kRefactor);
  EXPECT_EQ(ClassifyCommitMessage("add support for v4 attributes"), CommitKind::kFeature);
  EXPECT_EQ(ClassifyCommitMessage("bump version"), CommitKind::kOther);
  // "fix" outranks "add" when both appear.
  EXPECT_EQ(ClassifyCommitMessage("add test for fix"), CommitKind::kBugFix);
}

TEST(EaModel, BugFixersScoreHigher) {
  AuthorId alice;
  AuthorId bob;
  Repository repo = MakeRepo(&alice, &bob);
  repo.AddCommit(alice, 1, "fix race in lookup", {{"f.c", "1\n"}});
  repo.AddCommit(alice, 2, "fix leak", {{"f.c", "1\n2\n"}});
  repo.AddCommit(bob, 3, "bump copyright", {{"f.c", "1\n2\n3\n"}});
  repo.AddCommit(bob, 4, "bump again", {{"f.c", "1\n2\n3\n4\n"}});
  EXPECT_GT(EaScoreFor(repo, alice, "f.c"), EaScoreFor(repo, bob, "f.c"));
}

TEST(EaModel, OthersCommitsDampScore) {
  AuthorId alice;
  AuthorId bob;
  Repository repo = MakeRepo(&alice, &bob);
  repo.AddCommit(alice, 1, "fix it", {{"solo.c", "1\n"}});
  repo.AddCommit(alice, 2, "fix it", {{"shared.c", "1\n"}});
  for (int i = 0; i < 10; ++i) {
    repo.AddCommit(bob, 3 + i, "churn", {{"shared.c", "1\n" + std::to_string(i) + "\n"}});
  }
  EXPECT_GT(EaScoreFor(repo, alice, "solo.c"), EaScoreFor(repo, alice, "shared.c"));
}

}  // namespace
}  // namespace vc

// Unit tests for the evaluation plumbing: ground-truth ledger matching,
// location scoring, and the synthetic-file/commit assembly that the corpus
// generator builds on.

#include <gtest/gtest.h>

#include "src/corpus/eval.h"
#include "src/corpus/ground_truth.h"
#include "src/corpus/synthetic_file.h"

namespace vc {
namespace {

// --- GroundTruth ---------------------------------------------------------------

GtSite MakeSite(const std::string& file, int line, bool real, int alt = -1) {
  GtSite site;
  site.file = file;
  site.line = line;
  site.alt_line = alt;
  site.is_real_bug = real;
  return site;
}

TEST(GroundTruth, MatchByPrimaryAndAltLine) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true, 14));
  truth.Add(MakeSite("a.c", 20, false));
  EXPECT_NE(truth.Match("a.c", 10), nullptr);
  EXPECT_NE(truth.Match("a.c", 14), nullptr);
  EXPECT_EQ(truth.Match("a.c", 14)->line, 10);  // alt maps to the same site
  EXPECT_NE(truth.Match("a.c", 20), nullptr);
  EXPECT_EQ(truth.Match("a.c", 11), nullptr);
  EXPECT_EQ(truth.Match("b.c", 10), nullptr);
}

TEST(GroundTruth, IdsAreStableAndCountsWork) {
  GroundTruth truth;
  int id0 = truth.Add(MakeSite("a.c", 1, true));
  int id1 = truth.Add(MakeSite("a.c", 2, false));
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(truth.CountRealBugs(), 1);
  GtSite cursor = MakeSite("a.c", 3, false);
  cursor.category = SiteCategory::kBenignCursor;
  truth.Add(cursor);
  EXPECT_EQ(truth.CountCategory(SiteCategory::kBenignCursor), 1);
}

TEST(GroundTruth, CategoryNamesAreUnique) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(SiteCategory::kRealStaleCopy); ++i) {
    names.insert(SiteCategoryName(static_cast<SiteCategory>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(SiteCategory::kRealStaleCopy) + 1);
}

// --- EvaluateLocations -----------------------------------------------------------

TEST(Eval, CountsRealAndFalsePositives) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true));
  truth.Add(MakeSite("a.c", 20, false));
  std::vector<std::pair<std::string, int>> locs = {{"a.c", 10}, {"a.c", 20}};
  ToolEval eval = EvaluateLocations(truth, "t", locs);
  EXPECT_EQ(eval.found, 2);
  EXPECT_EQ(eval.real, 1);
  EXPECT_EQ(eval.unmatched, 0);
  EXPECT_DOUBLE_EQ(eval.FpRate(), 0.5);
}

TEST(Eval, DeduplicatesReportsOnTheSameSite) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true, 12));
  // Three reports, all hitting the one site (primary twice + alt once).
  std::vector<std::pair<std::string, int>> locs = {{"a.c", 10}, {"a.c", 10}, {"a.c", 12}};
  ToolEval eval = EvaluateLocations(truth, "t", locs);
  EXPECT_EQ(eval.found, 1);
  EXPECT_EQ(eval.real, 1);
}

TEST(Eval, UnmatchedReportsCountAsFound) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true));
  std::vector<std::pair<std::string, int>> locs = {{"a.c", 10}, {"a.c", 99}};
  ToolEval eval = EvaluateLocations(truth, "t", locs);
  EXPECT_EQ(eval.found, 2);
  EXPECT_EQ(eval.unmatched, 1);
  EXPECT_EQ(eval.real, 1);
}

TEST(Eval, EmptyReportHasZeroFpRate) {
  GroundTruth truth;
  ToolEval eval = EvaluateLocations(truth, "t", {});
  EXPECT_EQ(eval.found, 0);
  EXPECT_DOUBLE_EQ(eval.FpRate(), 0.0);
}

TEST(Eval, CheckerQuarantinePropagatesAsError) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true));
  AnalysisReport report;
  UnusedDefCandidate cand;
  cand.file = "a.c";
  cand.def_loc.line = 10;
  cand.checker = "baseline-smatch";
  report.findings.push_back(cand);
  report.quarantined.push_back({"", "", "checker", "boom", "baseline-smatch"});
  ToolEval eval = EvaluateChecker(truth, "t", report, "baseline-smatch");
  EXPECT_FALSE(eval.ok);
  EXPECT_EQ(eval.error, "boom");
  EXPECT_EQ(eval.found, 0);
}

TEST(Eval, CheckerSliceScoresOnlyItsOwnFindings) {
  GroundTruth truth;
  truth.Add(MakeSite("a.c", 10, true));
  truth.Add(MakeSite("a.c", 20, false));
  AnalysisReport report;
  UnusedDefCandidate mine;
  mine.file = "a.c";
  mine.def_loc.line = 10;
  mine.checker = "double-overwrite";
  report.findings.push_back(mine);
  UnusedDefCandidate other;
  other.file = "a.c";
  other.def_loc.line = 20;
  other.checker = "unused-def";
  report.findings.push_back(other);
  ToolEval eval = EvaluateChecker(truth, "t", report, "double-overwrite");
  EXPECT_TRUE(eval.ok);
  EXPECT_EQ(eval.found, 1);
  EXPECT_EQ(eval.real, 1);
}

// --- SyntheticFile -----------------------------------------------------------------

TEST(SyntheticFile, RoundsBecomeCommits) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");

  SyntheticFile file("m.c");
  int r0 = file.AddRound(alice, 100, "create");
  int r1 = file.AddRound(bob, 200, "extend");
  int l1 = file.AddLine(r0, "int alpha_line;");
  int l2 = file.AddLine(r1, "int beta_line;");
  int l3 = file.AddLine(r0, "int gamma_line;");
  EXPECT_EQ(l1, 1);
  EXPECT_EQ(l2, 2);
  EXPECT_EQ(l3, 3);
  file.CommitTo(repo);

  EXPECT_EQ(repo.NumCommits(), 2);
  // Round 0's version lacks the bob line.
  EXPECT_EQ(repo.FileAt("m.c", 0).value(), "int alpha_line;\nint gamma_line;\n");
  EXPECT_EQ(repo.Head("m.c").value(), "int alpha_line;\nint beta_line;\nint gamma_line;\n");
  // Blame matches the round plan exactly.
  const auto& blame = repo.Blame("m.c");
  ASSERT_EQ(blame.size(), 3u);
  EXPECT_EQ(blame[0].author, alice);
  EXPECT_EQ(blame[1].author, bob);
  EXPECT_EQ(blame[2].author, alice);
}

TEST(SyntheticFile, EmptyRoundsSkipped) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  SyntheticFile file("m.c");
  int r0 = file.AddRound(alice, 100, "create");
  file.AddRound(alice, 200, "noop");  // no lines
  file.AddLine(r0, "int x;");
  file.CommitTo(repo);
  EXPECT_EQ(repo.NumCommits(), 1);
}

TEST(SyntheticFile, LineNumbersAreHeadPositions) {
  SyntheticFile file("m.c");
  int r0 = file.AddRound(0, 1, "r0");
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(file.AddLine(r0, "line " + std::to_string(i)), i);
  }
  EXPECT_EQ(file.NumLines(), 5);
  EXPECT_EQ(file.NumRounds(), 1);
}

}  // namespace
}  // namespace vc

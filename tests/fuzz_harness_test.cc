// Self-tests for the differential fuzzing harness (src/testing): generator
// determinism and parse validity, metamorphic transform safety, oracle
// verdicts, delta-debugging minimization, and the end-to-end campaign —
// including the acceptance demo that an intentionally injected detector bug
// is caught by the differential oracle and minimized to a tiny reproducer.

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/testing/fuzz.h"
#include "src/testing/minimizer.h"
#include "src/testing/mutator.h"
#include "src/testing/oracle.h"
#include "src/testing/testgen.h"

namespace vc {
namespace testing {
namespace {

std::string Render(const TestProgram& program) {
  std::ostringstream out;
  for (const SourceFile& file : program.files) {
    out << "=== " << file.path << "\n" << file.Content();
  }
  return out.str();
}

// A handcrafted program with one overwritten definition (x = 1 is dead) and
// one unused parameter — the finding shapes the injected fault drops.
TestProgram OverwriteProgram() {
  return ProgramFromSources({{"over.c",
                              "int compute(int a) {\n"
                              "  int x = 1;\n"
                              "  x = 2;\n"
                              "  return x;\n"
                              "}\n"}});
}

TEST(TestGen, SameSeedSameProgram) {
  TestProgram a = GenerateProgram(42);
  TestProgram b = GenerateProgram(42);
  EXPECT_EQ(Render(a), Render(b));
  EXPECT_GT(a.TotalLines(), 0);
}

TEST(TestGen, DifferentSeedsDiffer) {
  EXPECT_NE(Render(GenerateProgram(1)), Render(GenerateProgram(2)));
}

TEST(TestGen, ManySeedsParseCleanly) {
  OracleOptions options;
  options.enabled = {OracleKind::kCleanFrontend};
  OracleRunner runner(options);
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    TestProgram program = GenerateProgram(seed);
    OracleVerdict verdict = runner.Check(program);
    EXPECT_TRUE(verdict.Passed()) << "seed " << seed << ": "
                                  << (verdict.failures.empty()
                                          ? ""
                                          : verdict.failures.front().detail);
  }
}

TEST(TestGen, RespectsFileCountBounds) {
  GenOptions options;
  options.min_files = 2;
  options.max_files = 2;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    EXPECT_EQ(GenerateProgram(seed, options).files.size(), 2u);
  }
}

TEST(Mutator, TransformsAreDeterministic) {
  TestProgram program = GenerateProgram(7);
  ProtectedSlots none;
  for (Transform transform : AllTransforms()) {
    TestProgram a = ApplyTransform(program, transform, 99, none);
    TestProgram b = ApplyTransform(program, transform, 99, none);
    EXPECT_EQ(Render(a), Render(b)) << TransformName(transform);
  }
}

TEST(Mutator, PaddingNeverSaysUnused) {
  // "unused" in a comment is an unused_hints prune keyword; a pad line
  // containing it would change prune decisions and fail metamorphically for
  // the wrong reason.
  ProtectedSlots none;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    TestProgram padded =
        ApplyTransform(GenerateProgram(seed), Transform::kPadding, seed, none);
    for (const SourceFile& file : padded.files) {
      for (const std::string& line : file.lines) {
        EXPECT_EQ(line.find("unused"), std::string::npos) << line;
      }
    }
  }
}

TEST(Mutator, ReorderKeepsEveryLine) {
  // Reordering moves whole function spans; modulo inserted blank separators
  // nothing may be dropped or duplicated.
  ProtectedSlots none;
  TestProgram program = GenerateProgram(11);
  TestProgram shuffled =
      ApplyTransform(program, Transform::kReorderFunctions, 5, none);
  auto nonblank = [](const TestProgram& p) {
    std::vector<std::string> lines;
    for (const SourceFile& file : p.files) {
      for (const std::string& line : file.lines) {
        if (!line.empty()) {
          lines.push_back(line);
        }
      }
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  EXPECT_EQ(nonblank(program), nonblank(shuffled));
}

TEST(Mutator, ProtectedSlotsComeFromReport) {
  OracleRunner runner;
  AnalysisReport report = runner.Analyze(OverwriteProgram(), 1, false);
  ProtectedSlots slots = ProtectedSlots::FromReport(report);
  EXPECT_TRUE(slots.Contains("compute", "x"));
  EXPECT_FALSE(slots.Contains("compute", "nosuch"));
}

TEST(Mutator, ProgramFromSourcesRoundTrips) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"a.c", "int f() {\n  return 0;\n}\n"}};
  TestProgram program = ProgramFromSources(sources);
  ASSERT_EQ(program.files.size(), 1u);
  EXPECT_EQ(program.files[0].Content(), sources[0].second);
}

TEST(Oracle, CleanProgramPassesEverything) {
  OracleRunner runner;
  EXPECT_TRUE(runner.Check(OverwriteProgram()).Passed());
}

TEST(Oracle, InjectedFaultCaughtByJobsDeterminism) {
  OracleOptions options;
  options.parallel_fault = DropOverwrittenFindingsFault();
  OracleRunner runner(options);
  OracleVerdict verdict = runner.Check(OverwriteProgram());
  EXPECT_TRUE(verdict.Failed(OracleKind::kJobsDeterminism));
}

TEST(Oracle, BrokenSourceFailsCleanFrontend) {
  TestProgram broken = ProgramFromSources({{"bad.c", "int f( {\n"}});
  OracleOptions options;
  options.enabled = {OracleKind::kCleanFrontend};
  OracleVerdict verdict = OracleRunner(options).Check(broken);
  EXPECT_TRUE(verdict.Failed(OracleKind::kCleanFrontend));
}

TEST(Oracle, FingerprintSetNonEmptyForFindings) {
  OracleRunner runner;
  AnalysisReport report = runner.Analyze(OverwriteProgram(), 1, false);
  EXPECT_FALSE(OracleRunner::FingerprintSet(report).empty());
}

TEST(Oracle, FingerprintSetIsCheckerQualified) {
  // The metamorphic oracle compares checker-qualified fingerprints, so a
  // finding migrating between checkers is a divergence even when the raw
  // fingerprint happens to collide.
  OracleRunner runner;
  AnalysisReport report = runner.Analyze(OverwriteProgram(), 1, false);
  ASSERT_FALSE(report.findings.empty());
  std::set<std::string> expected;
  for (const auto& cand : report.findings) {
    EXPECT_FALSE(cand.checker.empty());
    expected.insert(cand.checker + ":" + cand.fingerprint);
  }
  EXPECT_EQ(OracleRunner::FingerprintSet(report), expected);
}

TEST(Oracle, CheckersOptionNarrowsTheAnalyzedRun) {
  OracleOptions options;
  options.checkers = {"unused-def"};
  OracleRunner runner(options);
  AnalysisReport report = runner.Analyze(OverwriteProgram(), 1, false);
  ASSERT_EQ(report.checkers, std::vector<std::string>{"unused-def"});
  EXPECT_TRUE(runner.Check(OverwriteProgram()).Passed());
}

TEST(Oracle, NamesRoundTrip) {
  for (OracleKind kind : AllOracles()) {
    auto parsed = OracleKindFromName(OracleKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(OracleKindFromName("bogus").has_value());
}

TEST(Minimizer, ShrinksToPredicateCore) {
  // Synthetic predicate: the reproducer must keep the MAGIC line. Everything
  // else is deletable, so ddmin should reach exactly one line.
  TestProgram program = ProgramFromSources(
      {{"a.c", "int a = 1;\nint b = 2;\nint MAGIC = 3;\nint c = 4;\n"},
       {"b.c", "int d = 5;\nint e = 6;\n"}});
  auto has_magic = [](const TestProgram& candidate) {
    for (const SourceFile& file : candidate.files) {
      for (const std::string& line : file.lines) {
        if (line.find("MAGIC") != std::string::npos) {
          return true;
        }
      }
    }
    return false;
  };
  MinimizeStats stats;
  TestProgram reduced = MinimizeProgram(program, has_magic, &stats);
  EXPECT_EQ(reduced.TotalLines(), 1);
  EXPECT_TRUE(has_magic(reduced));
  EXPECT_EQ(stats.initial_lines, 6);
  EXPECT_EQ(stats.final_lines, 1);
  EXPECT_GT(stats.predicate_runs, 0);
}

TEST(Minimizer, RespectsPredicateBudget) {
  std::vector<std::string> lines(64, "int x;");
  SourceFile file;
  file.path = "big.c";
  file.lines = lines;
  TestProgram program;
  program.files.push_back(file);
  MinimizeStats stats;
  MinimizeProgram(
      program, [](const TestProgram&) { return true; }, &stats,
      /*max_predicate_runs=*/10);
  EXPECT_LE(stats.predicate_runs, 10);
}

TEST(Minimizer, IsDeterministic) {
  TestProgram program = GenerateProgram(21);
  auto predicate = [](const TestProgram& candidate) {
    return candidate.TotalLines() >= 3;
  };
  TestProgram a = MinimizeProgram(program, predicate);
  TestProgram b = MinimizeProgram(program, predicate);
  EXPECT_EQ(Render(a), Render(b));
}

TEST(Fuzz, ProgramSeedsSpread) {
  std::set<uint64_t> seeds;
  for (int i = 0; i < 200; ++i) {
    seeds.insert(ProgramSeedFor(42, i));
  }
  EXPECT_EQ(seeds.size(), 200u);
  EXPECT_NE(ProgramSeedFor(1, 0), ProgramSeedFor(2, 0));
}

TEST(Fuzz, SmallCampaignRunsClean) {
  FuzzOptions options;
  options.seed = 42;
  options.iterations = 25;
  EXPECT_TRUE(RunFuzzCampaign(options).Clean());
}

TEST(Fuzz, CampaignIsDeterministic) {
  FuzzOptions options;
  options.seed = 9;
  options.iterations = 10;
  options.oracle.parallel_fault = DropOverwrittenFindingsFault();
  FuzzResult a = RunFuzzCampaign(options);
  FuzzResult b = RunFuzzCampaign(options);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].program_seed, b.failures[i].program_seed);
    EXPECT_EQ(Render(a.failures[i].reproducer), Render(b.failures[i].reproducer));
  }
}

// The acceptance demo: an intentionally injected detector bug (parallel runs
// drop overwritten-definition findings) is caught by the differential oracle
// and delta-debugged down to a reproducer of at most 25 lines that still
// exhibits the divergence.
TEST(Fuzz, InjectedBugCaughtAndMinimized) {
  FuzzOptions options;
  options.seed = 42;
  options.iterations = 10;
  options.oracle.parallel_fault = DropOverwrittenFindingsFault();
  FuzzResult result = RunFuzzCampaign(options);
  ASSERT_FALSE(result.failures.empty());

  const FuzzFailure& failure = result.failures.front();
  EXPECT_EQ(failure.oracle, OracleKind::kJobsDeterminism);
  EXPECT_LE(failure.reproducer.TotalLines(), 25);
  EXPECT_LT(failure.minimize_stats.final_lines, failure.minimize_stats.initial_lines);

  // The minimized program still reproduces: with the fault installed the
  // determinism oracle fails, without it the program is clean.
  OracleOptions faulty;
  faulty.parallel_fault = DropOverwrittenFindingsFault();
  EXPECT_TRUE(
      OracleRunner(faulty).Check(failure.reproducer).Failed(OracleKind::kJobsDeterminism));
  EXPECT_TRUE(OracleRunner().Check(failure.reproducer).Passed());
}

TEST(Fuzz, ReproducerDirectoryHasManifestAndSources) {
  std::string dir = ::testing::TempDir() + "vc_fuzz_repro_test";
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed = 42;
  options.iterations = 5;
  options.oracle.parallel_fault = DropOverwrittenFindingsFault();
  options.corpus_dir = dir;
  FuzzResult result = RunFuzzCampaign(options);
  ASSERT_FALSE(result.failures.empty());
  const FuzzFailure& failure = result.failures.front();
  ASSERT_FALSE(failure.reproducer_dir.empty());

  std::ifstream manifest(failure.reproducer_dir + "/MANIFEST.txt");
  ASSERT_TRUE(manifest.good());
  std::stringstream contents;
  contents << manifest.rdbuf();
  EXPECT_NE(contents.str().find("program_seed: " + std::to_string(failure.program_seed)),
            std::string::npos);
  EXPECT_NE(contents.str().find("replay: vc_fuzz --replay"), std::string::npos);
  for (const SourceFile& file : failure.reproducer.files) {
    EXPECT_TRUE(std::filesystem::exists(failure.reproducer_dir + "/" + file.path))
        << file.path;
  }

  // The manifest's program_seed regenerates the failing program exactly.
  TestProgram regenerated = GenerateProgram(failure.program_seed, options.gen);
  OracleOptions faulty;
  faulty.parallel_fault = DropOverwrittenFindingsFault();
  EXPECT_TRUE(
      OracleRunner(faulty).Check(regenerated).Failed(OracleKind::kJobsDeterminism));

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace testing
}  // namespace vc

// Incremental (per-commit) engine tests: each analyzed commit yields the
// COMPLETE finding set as of that commit (equal to a full run over the
// repository truncated there), re-parsing only touched files and re-running
// checkers only on the dirty function slice. The exhaustive differential
// battery lives in incremental_equivalence_test.cc; these cover the engine's
// API semantics and work accounting.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/core/analysis.h"
#include "src/core/incremental.h"

namespace vc {
namespace {

TEST(Incremental, CompleteReportMatchesFullRunAtCommit) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n"
      "int other(int y) {\n"
      "  int t = y * 2;\n"
      "  return t;\n"
      "}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  std::string v2 = v1;
  v2.replace(v2.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  CommitId c2 = repo.AddCommit(bob, 2, "tweak work", {{"a.c", v2}});

  IncrementalEngine engine{AnalysisOptions{}};
  IncrementalResult at_c1 = engine.AnalyzeCommit(repo, 0);
  EXPECT_TRUE(at_c1.findings().empty());
  IncrementalResult result = engine.AnalyzeCommit(repo, c2);

  ASSERT_EQ(result.findings().size(), 1u);
  EXPECT_EQ(result.findings()[0].function, "work");
  EXPECT_TRUE(result.findings()[0].cross_scope);
  EXPECT_GT(result.seconds, 0.0);

  AnalysisReport full = Analysis().RunOnRepository(repo.PrefixCopy(c2));
  EXPECT_EQ(result.report.ToCsv(), full.ToCsv());
  ASSERT_EQ(result.findings().size(), full.findings.size());
  EXPECT_EQ(result.findings()[0].fingerprint, full.findings[0].fingerprint);
}

TEST(Incremental, UsesBlameAtTheCommitNotHead) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  std::string v2 = v1;
  v2.replace(v2.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  CommitId c2 = repo.AddCommit(bob, 2, "tweak", {{"a.c", v2}});
  // A later commit rewrites everything under a new author; analyzing c2 must
  // still see alice/bob authorship (the engine's replica stops at c2).
  repo.AddCommit(repo.AddAuthor("carol"), 3, "rewrite",
                 {{"a.c", "int unrelated(int q) {\n  return q;\n}\n"}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  ASSERT_EQ(result.findings().size(), 1u);
  EXPECT_EQ(result.findings()[0].def_author, repo.FindAuthor("alice"));
  EXPECT_EQ(result.findings()[0].responsible_author, repo.FindAuthor("bob"));
}

TEST(Incremental, CleanCommitKeepsFindingsEmpty) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::string v1 = "int f(int x) {\n  return x + 1;\n}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  std::string v2 = v1 + "int g(int y) {\n  return y * 2;\n}\n";
  CommitId c2 = repo.AddCommit(alice, 2, "add g", {{"a.c", v2}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  EXPECT_TRUE(result.findings().empty());
  EXPECT_EQ(result.functions_total, 2);
}

TEST(Incremental, MultiFileCommitReportsWholeProject) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string a1 = "int fa(int x) {\n  return x;\n}\n";
  std::string b1 = "int fb(int x) {\n  return x;\n}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", a1}, {"b.c", b1}});
  std::string a2 = a1 + "int ga(int y) {\n  ext_log(y);\n  return y;\n}\n";
  std::string b2 = b1 + "int gb(int y) {\n  int t = y;\n  return t;\n}\n";
  CommitId c2 = repo.AddCommit(bob, 2, "extend both", {{"a.c", a2}, {"b.c", b2}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  EXPECT_EQ(result.files_changed, 2);
  EXPECT_EQ(result.files_reparsed, 2);
  EXPECT_EQ(result.functions_total, 4);
  // ga ignores a library return value: one cross-scope finding, and the
  // report covers the whole project, not just the commit's files.
  ASSERT_EQ(result.findings().size(), 1u);
  EXPECT_EQ(result.findings()[0].function, "ga");
}

TEST(Incremental, DirtySliceScopedToTheChangedFile) {
  // 40 files, none calling across files: a one-file commit re-parses that
  // file alone and re-runs checkers only on its functions.
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::map<std::string, std::string> files;
  for (int i = 0; i < 40; ++i) {
    std::string body;
    for (int j = 0; j < 40; ++j) {
      std::string t = std::to_string(i) + "_" + std::to_string(j);
      body += "int fn_" + t + "(int a, int b) {\n  int s_" + t + " = a + b;\n  return s_" + t +
              ";\n}\n";
    }
    files["f" + std::to_string(i) + ".c"] = body;
  }
  repo.AddCommit(alice, 1, "create all", files);
  std::string patched = files["f0.c"] + "int extra(int z) {\n  return z;\n}\n";
  CommitId c2 = repo.AddCommit(alice, 2, "small change", {{"f0.c", patched}});

  IncrementalEngine engine{AnalysisOptions{}};
  IncrementalResult warm = engine.AnalyzeCommit(repo, 0);
  EXPECT_EQ(warm.functions_dirty, warm.functions_total);  // cold start runs all

  IncrementalResult inc = engine.AnalyzeCommit(repo, c2);
  EXPECT_EQ(inc.files_changed, 1);
  EXPECT_EQ(inc.files_reparsed, 1);
  EXPECT_EQ(inc.functions_total, 40 * 40 + 1);
  EXPECT_EQ(inc.functions_dirty, 41);  // f0.c's functions only
  EXPECT_EQ(inc.cache.detect_carried, static_cast<uint64_t>(40 * 40 - 40));
  EXPECT_GT(inc.cache.DetectHitRate(), 0.0);
}

TEST(Incremental, FacadeReusesWarmEngineAcrossSequentialCommits) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::map<std::string, std::string> files;
  for (int i = 0; i < 5; ++i) {
    files["f" + std::to_string(i) + ".c"] =
        "int fn_" + std::to_string(i) + "(int a) {\n  return a;\n}\n";
  }
  repo.AddCommit(alice, 1, "create", files);
  CommitId c2 = repo.AddCommit(alice, 2, "touch one",
                               {{"f0.c", "int fn_0(int a) {\n  return a + 1;\n}\n"}});

  Analysis analysis;
  IncrementalResult first = analysis.RunOnCommit(repo, 0);
  EXPECT_EQ(first.files_reparsed, 5);
  IncrementalResult second = analysis.RunOnCommit(repo, c2);
  // The warm engine re-parses only the touched file and carries the rest.
  EXPECT_EQ(second.files_reparsed, 1);
  EXPECT_EQ(second.functions_total, 5);
  EXPECT_EQ(second.functions_dirty, 1);
  EXPECT_EQ(second.cache.detect_carried, 4u);
}

}  // namespace
}  // namespace vc

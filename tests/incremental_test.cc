// Incremental (per-commit) analysis tests: only functions overlapping the
// commit's changed lines are re-analyzed, findings match the full analysis on
// the affected scope, and historical blame is used.

#include <gtest/gtest.h>

#include "src/core/analysis.h"

namespace vc {
namespace {

TEST(Incremental, AnalyzesOnlyTouchedFunctions) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n"
      "int other(int y) {\n"
      "  int t = y * 2;\n"
      "  return t;\n"
      "}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  // Bob's commit inserts the overwrite inside work() only.
  std::string v2 = v1;
  v2.replace(v2.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  CommitId c2 = repo.AddCommit(bob, 2, "tweak work", {{"a.c", v2}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  EXPECT_EQ(result.files_analyzed, 1);
  EXPECT_EQ(result.functions_analyzed, 1);  // only work()
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].function, "work");
  EXPECT_TRUE(result.findings[0].cross_scope);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Incremental, CleanCommitYieldsNoFindings) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::string v1 = "int f(int x) {\n  return x + 1;\n}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  std::string v2 = v1 + "int g(int y) {\n  return y * 2;\n}\n";
  CommitId c2 = repo.AddCommit(alice, 2, "add g", {{"a.c", v2}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  EXPECT_EQ(result.functions_analyzed, 1);
  EXPECT_TRUE(result.findings.empty());
}

TEST(Incremental, UsesBlameAtTheCommitNotHead) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string v1 =
      "int helper(int x) {\n"
      "  return x + 1;\n"
      "}\n"
      "int work(int x) {\n"
      "  int ret = helper(x);\n"
      "  return ret;\n"
      "}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", v1}});
  std::string v2 = v1;
  v2.replace(v2.find("  return ret;"), 13, "  ret = helper(x + 2);\n  return ret;");
  CommitId c2 = repo.AddCommit(bob, 2, "tweak", {{"a.c", v2}});
  // A later commit rewrites everything under a new author; analyzing c2 must
  // still see alice/bob authorship.
  repo.AddCommit(repo.AddAuthor("carol"), 3, "rewrite", {{"a.c", "int unrelated(int q) {\n  return q;\n}\n"}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].def_author, repo.FindAuthor("alice"));
  EXPECT_EQ(result.findings[0].responsible_author, repo.FindAuthor("bob"));
}

TEST(Incremental, MultiFileCommit) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string a1 = "int fa(int x) {\n  return x;\n}\n";
  std::string b1 = "int fb(int x) {\n  return x;\n}\n";
  repo.AddCommit(alice, 1, "create", {{"a.c", a1}, {"b.c", b1}});
  std::string a2 = a1 + "int ga(int y) {\n  ext_log(y);\n  return y;\n}\n";
  std::string b2 = b1 + "int gb(int y) {\n  int t = y;\n  return t;\n}\n";
  CommitId c2 = repo.AddCommit(bob, 2, "extend both", {{"a.c", a2}, {"b.c", b2}});

  IncrementalResult result = Analysis().RunOnCommit(repo, c2);
  EXPECT_EQ(result.files_analyzed, 2);
  EXPECT_EQ(result.functions_analyzed, 2);
  // ga ignores a library return value: one cross-scope finding.
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].function, "ga");
}

TEST(Incremental, FasterThanFullAnalysisOnLargeRepo) {
  // Build a repo with many files; a one-line commit must analyze only one.
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  std::map<std::string, std::string> files;
  for (int i = 0; i < 40; ++i) {
    std::string body;
    for (int j = 0; j < 40; ++j) {
      std::string t = std::to_string(i) + "_" + std::to_string(j);
      body += "int fn_" + t + "(int a, int b) {\n  int s_" + t +
              " = a + b;\n  return s_" + t + ";\n}\n";
    }
    files["f" + std::to_string(i) + ".c"] = body;
  }
  repo.AddCommit(alice, 1, "create all", files);
  std::string patched = files["f0.c"] + "int extra(int z) {\n  return z;\n}\n";
  CommitId c2 = repo.AddCommit(alice, 2, "small change", {{"f0.c", patched}});

  IncrementalResult inc = Analysis().RunOnCommit(repo, c2);
  EXPECT_EQ(inc.files_analyzed, 1);
  EXPECT_EQ(inc.functions_analyzed, 1);

  Project full = Project::FromRepository(repo);
  AnalysisReport report = Analysis().Run(full, &repo);
  // The incremental run parses ~1/40th of the code; it must be faster.
  EXPECT_LT(inc.seconds, report.analysis_seconds);
}

}  // namespace
}  // namespace vc

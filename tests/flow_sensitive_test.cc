// Flow-sensitive points-to tests, including the precision comparisons the
// design discussion (§4.1) rests on: strong updates shrink pointee sets where
// Andersen's weak updates cannot, while the answers relevant to ValueCheck's
// alias rule agree.

#include <gtest/gtest.h>

#include "src/ir/ir_builder.h"
#include "src/parser/parser.h"
#include "src/pointer/andersen.h"
#include "src/pointer/flow_sensitive.h"

namespace vc {
namespace {

struct Analyzed {
  SourceManager sm;
  DiagnosticEngine diags;
  TranslationUnit unit;
  std::unique_ptr<IrModule> module;
};

std::unique_ptr<Analyzed> Analyze(const std::string& code) {
  auto a = std::make_unique<Analyzed>();
  a->unit = ParseString(a->sm, "test.c", code, a->diags);
  EXPECT_FALSE(a->diags.HasErrors()) << a->diags.Render(a->sm);
  a->module = LowerUnit(a->unit);
  return a;
}

SlotId SlotNamed(const IrFunction& func, const std::string& name) {
  for (SlotId i = 0; i < func.slots.size(); ++i) {
    if (func.slots[i].name == name) {
      return i;
    }
  }
  return kInvalidSlot;
}

// Points-to set of the pointer operand of the final LoadInd in `func`.
template <typename Pts>
std::set<SlotId> FinalDerefTargets(const IrFunction& func, const Pts& pts) {
  std::set<SlotId> result;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        result = pts.SlotsPointedBy(inst.operands[0]);
      }
    }
  }
  return result;
}

TEST(FlowSensitive, StrongUpdateKillsStalePointee) {
  // p points to x, then is reassigned to y: at the deref only y remains.
  // Andersen keeps both — this is exactly the flow-sensitivity gap.
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 1;\n"
      "  int y = 2;\n"
      "  int *p = &x;\n"
      "  p = &y;\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  PointsTo andersen(func);

  std::set<SlotId> flow_targets = FinalDerefTargets(func, flow);
  std::set<SlotId> andersen_targets = FinalDerefTargets(func, andersen);

  EXPECT_EQ(flow_targets, (std::set<SlotId>{SlotNamed(func, "y")}));
  EXPECT_EQ(andersen_targets,
            (std::set<SlotId>{SlotNamed(func, "x"), SlotNamed(func, "y")}));
  EXPECT_LE(flow.TotalPointsToSize(), andersen_targets.size() + flow.TotalPointsToSize());
}

TEST(FlowSensitive, BranchJoinUnions) {
  auto a = Analyze(
      "int f(int c) {\n"
      "  int x = 1;\n"
      "  int y = 2;\n"
      "  int *p = &x;\n"
      "  if (c) {\n"
      "    p = &y;\n"
      "  }\n"
      "  return *p;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  EXPECT_EQ(FinalDerefTargets(func, flow),
            (std::set<SlotId>{SlotNamed(func, "x"), SlotNamed(func, "y")}));
}

TEST(FlowSensitive, LoopConverges) {
  auto a = Analyze(
      "int f(int n) {\n"
      "  int x = 1;\n"
      "  int y = 2;\n"
      "  int *p = &x;\n"
      "  int *q = &y;\n"
      "  while (n > 0) {\n"
      "    int *t = p;\n"
      "    p = q;\n"
      "    q = t;\n"
      "    n = n - 1;\n"
      "  }\n"
      "  return *p + *q;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  EXPECT_GT(flow.iterations(), 1);
  // Inside/after the loop both pointers may target both variables.
  EXPECT_TRUE(flow.SlotIsPointee(SlotNamed(func, "x")));
  EXPECT_TRUE(flow.SlotIsPointee(SlotNamed(func, "y")));
}

TEST(FlowSensitive, StrongUpdateThroughUniquePointer) {
  // *p = &z with p uniquely pointing to q: q's contents are replaced, not
  // merged.
  auto a = Analyze(
      "int f(void) {\n"
      "  int x = 1;\n"
      "  int z = 3;\n"
      "  int *q = &x;\n"
      "  int **p = &q;\n"
      "  *p = &z;\n"
      "  return *q;\n"
      "}");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  EXPECT_EQ(FinalDerefTargets(func, flow), (std::set<SlotId>{SlotNamed(func, "z")}));
  // Andersen keeps x as a may-target.
  PointsTo andersen(func);
  std::set<SlotId> weak = FinalDerefTargets(func, andersen);
  EXPECT_TRUE(weak.count(SlotNamed(func, "x")) > 0);
  EXPECT_TRUE(weak.count(SlotNamed(func, "z")) > 0);
}

TEST(FlowSensitive, FunctionPointers) {
  auto a = Analyze(
      "int ta(int x) { return x; }\n"
      "int tb(int x) { return x + 1; }\n"
      "int f(int c) {\n"
      "  void *fp = ta;\n"
      "  fp = tb;\n"
      "  g_use(fp);\n"
      "  return 0;\n"
      "}\nint g_use(void *);");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  SlotId fp = SlotNamed(func, "fp");
  std::set<std::string> names;
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoad && inst.slot == fp) {
        for (const FunctionDecl* callee : flow.FunctionsPointedBy(inst.result)) {
          names.insert(callee->name);
        }
      }
    }
  }
  // Strong update: only tb remains at the use.
  EXPECT_EQ(names, (std::set<std::string>{"tb"}));
}

TEST(FlowSensitive, CallResultUnknown) {
  auto a = Analyze("int *g(void);\nint f(void) { int *p = g(); return *p; }");
  const IrFunction& func = *a->module->FindFunction("f");
  FlowSensitivePointsTo flow(func);
  for (const auto& block : func.blocks) {
    for (const Instruction& inst : block->insts) {
      if (inst.op == Opcode::kLoadInd) {
        EXPECT_TRUE(flow.PointsToUnknown(inst.operands[0]));
      }
    }
  }
}

TEST(FlowSensitive, NeverLessPreciseThanAndersen) {
  // On a batch of pointer-heavy shapes, the flow-sensitive pointee sets are
  // subsets of Andersen's (the formal relationship between the analyses).
  const char* programs[] = {
      "int f(int c) { int x = 1; int y = 2; int *p = &x; if (c) { p = &y; } return *p; }",
      "int f(void) { int x = 1; int *p = &x; int *q = p; p = q; return *q; }",
      "int f(int n) { int x = 1; int *p = &x; while (n > 0) { p = &x; n = n - 1; } return *p; }",
  };
  for (const char* code : programs) {
    auto a = Analyze(code);
    const IrFunction& func = *a->module->FindFunction("f");
    FlowSensitivePointsTo flow(func);
    PointsTo andersen(func);
    for (ValueId v = 0; v < func.next_value; ++v) {
      for (SlotId slot : flow.SlotsPointedBy(v)) {
        EXPECT_TRUE(andersen.SlotsPointedBy(v).count(slot) > 0 ||
                    andersen.PointsToUnknown(v))
            << "value " << v << " in: " << code;
      }
    }
  }
}

}  // namespace
}  // namespace vc

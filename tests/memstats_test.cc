// Memory-accounting substrate tests: the MemoryTracker's concurrent
// exactness contract (relaxed atomic sums commute, so 8 racing threads lose
// nothing — run under TSan in the sanitizer configs), RSS sampling, registry
// gauge publication, and the run-level attribution equality that the
// pipeline-facing tests in parallel_determinism_test.cc rely on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/analysis.h"
#include "src/support/memstats.h"
#include "src/support/metrics.h"

namespace vc {
namespace {

TEST(MemCategory, NamesAreStableSnakeCase) {
  EXPECT_STREQ(MemCategoryName(MemCategory::kAstNodes), "ast_nodes");
  EXPECT_STREQ(MemCategoryName(MemCategory::kIrInstructions), "ir_instructions");
  EXPECT_STREQ(MemCategoryName(MemCategory::kPointsToSets), "points_to_sets");
  EXPECT_STREQ(MemCategoryName(MemCategory::kInternedStrings), "interned_strings");
}

TEST(MemoryTracker, ConcurrentAddsAreExactAcrossEightThreads) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.ResetAll();
  tracker.Enable();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < kPerThread; ++i) {
        // Rotate categories so every slot sees contention from every thread.
        tracker.Add(static_cast<MemCategory>(i % kMemCategoryCount),
                    static_cast<uint64_t>(i % 7) + 1, 1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  uint64_t expected_bytes = 0;
  uint64_t expected_objects[kMemCategoryCount] = {};
  uint64_t expected_cat_bytes[kMemCategoryCount] = {};
  for (int i = 0; i < kPerThread; ++i) {
    int c = i % kMemCategoryCount;
    expected_cat_bytes[c] += static_cast<uint64_t>(i % 7) + 1;
    expected_objects[c] += 1;
  }
  for (int c = 0; c < kMemCategoryCount; ++c) {
    MemCount count = tracker.Get(static_cast<MemCategory>(c));
    EXPECT_EQ(count.bytes, expected_cat_bytes[c] * kThreads) << "category " << c;
    EXPECT_EQ(count.objects, expected_objects[c] * kThreads) << "category " << c;
    expected_bytes += expected_cat_bytes[c] * kThreads;
  }
  EXPECT_EQ(tracker.TotalTrackedBytes(), expected_bytes);

  tracker.ResetAll();
  tracker.Disable();
  EXPECT_EQ(tracker.TotalTrackedBytes(), 0u);
}

TEST(MemoryTracker, RssSampleKeepsHighWaterMark) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.ResetAll();
  tracker.SampleRss();
  uint64_t first = tracker.peak_rss_bytes();
  // A live process always has a nonzero peak RSS on Linux (VmHWM or
  // ru_maxrss); if both probes fail this is 0 and the expectation flags it.
  EXPECT_GT(first, 0u);
  tracker.SampleRss();
  EXPECT_GE(tracker.peak_rss_bytes(), first);  // monotone high-water mark
  tracker.ResetAll();
}

TEST(MemoryTracker, PublishRegistryGaugesExportsMemMetrics) {
  MemoryTracker& tracker = MemoryTracker::Global();
  tracker.ResetAll();
  tracker.Enable();
  tracker.Add(MemCategory::kAstNodes, 1234, 10);
  tracker.Add(MemCategory::kPointsToSets, 500, 5);
  tracker.SampleRss();
  tracker.PublishRegistryGauges();

  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("mem.ast_nodes.bytes").value(), 1234);
  EXPECT_EQ(registry.GetGauge("mem.ast_nodes.objects").value(), 10);
  EXPECT_EQ(registry.GetGauge("mem.points_to_sets.bytes").value(), 500);
  EXPECT_EQ(registry.GetGauge("mem.tracked_bytes").value(), 1234 + 500);
  EXPECT_GT(registry.GetGauge("mem.peak_rss_bytes").value(), 0);

  // The Prometheus exposition carries them (sanitized names).
  std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("vc_mem_ast_nodes_bytes 1234"), std::string::npos);
  EXPECT_NE(prom.find("vc_mem_tracked_bytes 1734"), std::string::npos);

  tracker.ResetAll();
  tracker.Disable();
}

TEST(ProcessPeakRss, ReturnsPlausibleValue) {
  uint64_t rss = ProcessPeakRssBytes();
  // More than 1 MB (any live process) and less than 1 TB (sanity).
  EXPECT_GT(rss, 1u << 20);
  EXPECT_LT(rss, uint64_t{1} << 40);
}

// Run-level attribution: the per-run MemoryStats assembled from slot-indexed
// sums must not depend on scheduling. This is the source-file variant of the
// repository-level test in parallel_determinism_test.cc, small enough to run
// under TSan quickly.
TEST(MemoryStats, SourceRunsAgreeAtJobs1And8) {
  std::vector<std::pair<std::string, std::string>> files;
  for (int i = 0; i < 16; ++i) {
    std::string name = "m" + std::to_string(i) + ".c";
    files.emplace_back(name,
                       "int f" + std::to_string(i) +
                           "(int a, int b) {\n"
                           "  int dead = a + b;\n"
                           "  dead = b;\n"
                           "  int *p = &a;\n"
                           "  return *p + dead;\n"
                           "}\n");
  }
  AnalysisOptions serial;
  serial.jobs = 1;
  serial.collect_metrics = true;
  AnalysisReport baseline = Analysis(serial).RunOnSources(files);
  ASSERT_TRUE(baseline.memory.collected);
  EXPECT_GT(baseline.memory.TrackedBytes(), 0u);

  AnalysisOptions parallel;
  parallel.jobs = 8;
  parallel.collect_metrics = true;
  AnalysisReport report = Analysis(parallel).RunOnSources(files);
  ASSERT_TRUE(report.memory.collected);
  for (int c = 0; c < kMemCategoryCount; ++c) {
    EXPECT_EQ(report.memory.categories[c].bytes, baseline.memory.categories[c].bytes)
        << "category " << c;
    EXPECT_EQ(report.memory.categories[c].objects, baseline.memory.categories[c].objects)
        << "category " << c;
  }
  EXPECT_EQ(report.memory.TrackedBytes(), baseline.memory.TrackedBytes());
  MetricsRegistry::Global().Disable();
  MemoryTracker::Global().Disable();
}

}  // namespace
}  // namespace vc

// Project and authorship-layer tests: function index across files, snapshot
// construction, line counting, and the AuthorshipAnalyzer in isolation.

#include <gtest/gtest.h>

#include "src/core/authorship.h"
#include "src/core/detector.h"
#include "src/core/project.h"
#include "src/core/analysis.h"

namespace vc {
namespace {

TEST(Project, FunctionIndexLinksCrossFileCalls) {
  Project project = Project::FromSources({
      {"lib.c", "int dev_status(int a) {\n  return a + 1;\n}\n"},
      {"user.c", "void use(int v) {\n  dev_status(v);\n}\n"},
  });
  const FunctionInfo* info = project.FindFunction("dev_status");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->InProject());
  EXPECT_EQ(project.sources().Path(info->def_file), "lib.c");
  ASSERT_EQ(info->call_sites.size(), 1u);
  EXPECT_EQ(project.sources().Path(info->call_sites[0].loc.file), "user.c");
  EXPECT_FALSE(info->call_sites[0].result_assigned);
}

TEST(Project, ExternCalleesIndexedWithoutDefinition) {
  Project project = Project::FromSources({
      {"a.c", "void f(int v) {\n  ext_log(v);\n}\n"},
      {"b.c", "void g(int v) {\n  ext_log(v + 1);\n}\n"},
  });
  const FunctionInfo* info = project.FindFunction("ext_log");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->InProject());
  EXPECT_EQ(info->call_sites.size(), 2u);
}

TEST(Project, FromRepositoryUsesHead) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  repo.AddCommit(a, 1, "v1", {{"f.c", "int one(void) {\n  return 1;\n}\n"}});
  repo.AddCommit(a, 2, "v2", {{"f.c", "int two(void) {\n  return 2;\n}\n"}});
  Project project = Project::FromRepository(repo);
  EXPECT_EQ(project.FindFunction("one"), nullptr);
  EXPECT_NE(project.FindFunction("two"), nullptr);
}

TEST(Project, FromRepositoryAtHistoricalCommit) {
  Repository repo;
  AuthorId a = repo.AddAuthor("a");
  CommitId c1 = repo.AddCommit(a, 1, "v1", {{"f.c", "int one(void) {\n  return 1;\n}\n"}});
  repo.AddCommit(a, 2, "v2", {{"f.c", "int two(void) {\n  return 2;\n}\n"}});
  Project project = Project::FromRepositoryAt(repo, c1);
  EXPECT_NE(project.FindFunction("one"), nullptr);
  EXPECT_EQ(project.FindFunction("two"), nullptr);
}

TEST(Project, TotalLinesSkipsBlank) {
  Project project = Project::FromSources({{"a.c", "int g_x;\n\n\nint g_y;\n"}});
  EXPECT_EQ(project.TotalLines(), 2);
}

TEST(Project, PreprocessingResultsStored) {
  Project project = Project::FromSources(
      {{"a.c", "int g_x;\n#if FEATURE\nint g_y;\n#endif\n"}});
  const PreprocessResult& pp = project.preprocessing(0);
  ASSERT_EQ(pp.regions.size(), 1u);
  EXPECT_EQ(pp.regions[0].condition, "FEATURE");
}

TEST(Project, ConfigControlsCompilation) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"a.c",
       "int g(int);\n"
       "int f(int x) {\n"
       "  int host = g(x);\n"
       "  int n = 0;\n"
       "#if USE_FEATURE\n"
       "  n = host + 1;\n"
       "#endif\n"
       "  return n;\n"
       "}\n"}};
  // Feature off: host's use is not compiled; one candidate.
  Project off = Project::FromSources(sources);
  EXPECT_EQ(DetectAll(off).size(), 1u);
  // Feature on: host is used; the candidate shifts to the now-overwritten
  // n = 0 initializer.
  Config config;
  config.Define("USE_FEATURE");
  Project on = Project::FromSources(sources, config);
  std::vector<UnusedDefCandidate> candidates = DetectAll(on);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].slot_name, "n");
}

// --- AuthorshipAnalyzer ------------------------------------------------------

TEST(Authorship, AuthorOfLocUsesBlame) {
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  repo.AddCommit(alice, 1, "v1", {{"f.c", "int g_a;\nint g_b;\n"}});
  repo.AddCommit(bob, 2, "v2", {{"f.c", "int g_a;\nint g_mid;\nint g_b;\n"}});
  Project project = Project::FromRepository(repo);
  AuthorshipAnalyzer analyzer(project, &repo);
  FileId file = project.sources().FindByPath("f.c");
  EXPECT_EQ(analyzer.AuthorOfLoc({file, 1, 1}), alice);
  EXPECT_EQ(analyzer.AuthorOfLoc({file, 2, 1}), bob);
  EXPECT_EQ(analyzer.AuthorOfLoc({file, 3, 1}), alice);
  EXPECT_EQ(analyzer.AuthorOfLoc({file, 99, 1}), kInvalidAuthor);
  EXPECT_EQ(analyzer.AuthorOfLoc(SourceLoc{}), kInvalidAuthor);
}

TEST(Authorship, NullRepoMeansUnknownAuthors) {
  Project project = Project::FromSources(
      {{"a.c", "int g(int);\nint f(int m) {\n  int r = g(m);\n  r = g(m + 1);\n  return r;\n}\n"}});
  AuthorshipAnalyzer analyzer(project, nullptr);
  std::vector<UnusedDefCandidate> candidates = DetectAll(project);
  analyzer.ClassifyAll(candidates);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(candidates[0].cross_scope);
  EXPECT_EQ(candidates[0].def_author, kInvalidAuthor);
}

TEST(Authorship, MixedOverwritersNotCrossScope) {
  // Two overwriters on different paths, one by the original author: the
  // "all successor paths by other developers" rule fails.
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");
  std::string v1 =
      "int g(int q) {\n"
      "  return q + 1;\n"
      "}\n"
      "int f(int m, int c) {\n"
      "  int r = g(m);\n"
      "  if (c) {\n"
      "    r = 1;\n"
      "  } else {\n"
      "    r = 2;\n"
      "  }\n"
      "  return r;\n"
      "}\n";
  // Alice wrote everything including the then-branch overwrite; bob rewrote
  // only the else-branch line.
  std::string v2 = v1;
  v2.replace(v2.find("    r = 2;"), 10, "    r = 2 + c;");
  repo.AddCommit(alice, 1, "v1", {{"f.c", v1}});
  repo.AddCommit(bob, 2, "v2", {{"f.c", v2}});
  AnalysisReport report = Analysis().RunOnRepository(repo);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.non_cross_scope, 1);
}

}  // namespace
}  // namespace vc

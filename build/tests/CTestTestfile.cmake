# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build/tests/pointer_test[1]_include.cmake")
include("/root/repo/build/tests/vcs_test[1]_include.cmake")
include("/root/repo/build/tests/familiarity_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/pruning_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/prelim_study_test[1]_include.cmake")
include("/root/repo/build/tests/switch_dowhile_test[1]_include.cmake")
include("/root/repo/build/tests/flow_sensitive_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/history_io_test[1]_include.cmake")
include("/root/repo/build/tests/project_test[1]_include.cmake")
include("/root/repo/build/tests/enum_typedef_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/preprocessor_property_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")

// Incremental analysis in a development loop (paper §8.6): simulate a series
// of commits and run the per-commit analysis a CI hook would run, printing
// findings and timings per commit versus a full re-analysis.
//
// Build & run:  ./build/examples/incremental_analysis

#include <cstdio>
#include <string>

#include "src/core/analysis.h"
#include "src/core/incremental.h"
#include "src/vcs/repository.h"

namespace {

// A small team working on a file server module over six commits; commit 4
// introduces a cross-scope unused definition.
struct Session {
  vc::Repository repo;
  std::vector<vc::CommitId> commits;
};

Session BuildSession() {
  using namespace vc;
  Session session;
  AuthorId dana = session.repo.AddAuthor("dana");
  AuthorId eli = session.repo.AddAuthor("eli");
  AuthorId fran = session.repo.AddAuthor("fran");

  std::string exports =
      "int parse_export(int spec) {\n"
      "  if (spec > 0) {\n"
      "    return spec;\n"
      "  }\n"
      "  return 0 - spec;\n"
      "}\n"
      "int mount_export(int spec) {\n"
      "  int id = parse_export(spec);\n"
      "  return id;\n"
      "}\n";
  session.commits.push_back(
      session.repo.AddCommit(dana, 1'700'000'000, "add export parsing", {{"exports.c", exports}}));

  std::string cache =
      "int cache_get(int key) {\n"
      "  return key * 3;\n"
      "}\n"
      "int cache_put(int key, int val) {\n"
      "  return key + val;\n"
      "}\n";
  session.commits.push_back(
      session.repo.AddCommit(eli, 1'700'100'000, "add attribute cache", {{"cache.c", cache}}));

  cache +=
      "int cache_refresh(int key) {\n"
      "  int cur = cache_get(key);\n"
      "  if (cur > 0) {\n"
      "    return cache_put(key, cur);\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  session.commits.push_back(session.repo.AddCommit(eli, 1'700'200'000, "add cache refresh",
                                                   {{"cache.c", cache}}));

  // Fran reworks mount_export and accidentally clobbers dana's parsed id
  // before it is used: the bug this session exists to catch.
  std::string exports_v2 = exports;
  exports_v2.replace(exports_v2.find("  return id;"), 12,
                     "  id = cache_get(spec);\n  return id;");
  session.commits.push_back(session.repo.AddCommit(fran, 1'700'300'000,
                                                   "route mounts through the cache",
                                                   {{"exports.c", exports_v2}}));

  // A clean follow-up commit.
  std::string main_c =
      "int dispatch(int op) {\n"
      "  int rc = op + 1;\n"
      "  return rc;\n"
      "}\n";
  session.commits.push_back(session.repo.AddCommit(dana, 1'700'400'000, "add dispatcher",
                                                   {{"main.c", main_c}}));
  return session;
}

}  // namespace

int main() {
  using namespace vc;
  Session session = BuildSession();

  std::printf("Per-commit incremental analysis (paper §8.6 workflow)\n\n");
  std::printf("%-8s %-36s %-6s %-6s %-8s %s\n", "commit", "message", "files", "dirty",
              "time", "findings at commit");

  // One facade, fed commits in order: its warm engine re-parses only each
  // commit's files and re-runs checkers only on the dirty function slice,
  // while every row still shows the complete finding set as of that commit.
  Analysis analysis;
  for (CommitId commit : session.commits) {
    IncrementalResult result = analysis.RunOnCommit(session.repo, commit);
    std::string findings;
    for (const UnusedDefCandidate& finding : result.findings()) {
      if (!findings.empty()) {
        findings += ", ";
      }
      findings += finding.function + ":" + std::to_string(finding.def_loc.line) + " '" +
                  finding.slot_name + "'";
    }
    const Commit& meta = session.repo.GetCommit(commit);
    std::printf("%-8d %-36s %-6d %-6d %6.2fms %s\n", commit, meta.message.c_str(),
                result.files_reparsed, result.functions_dirty, result.seconds * 1000.0,
                findings.empty() ? "-" : findings.c_str());
  }

  // Compare with a full analysis at head.
  Project project = Project::FromRepository(session.repo);
  AnalysisReport full = Analysis().Run(project, &session.repo);
  std::printf("\nFull analysis at head: %d finding(s) in %.2fms\n",
              static_cast<int>(full.findings.size()), full.analysis_seconds * 1000.0);
  for (const UnusedDefCandidate& finding : full.findings) {
    std::printf("  %s:%d  %s '%s' — introduced by %s over %s's definition\n",
                finding.file.c_str(), finding.def_loc.line, finding.function.c_str(),
                finding.slot_name.c_str(),
                session.repo.GetAuthor(finding.responsible_author).name.c_str(),
                session.repo.GetAuthor(finding.def_author).name.c_str());
  }
  return 0;
}

/* Example corpus: clean file — every definition is used. Exists so the
 * smoke corpus mixes clean and buggy translation units, like a real tree.
 */

int ring_mask(int capacity) {
  return capacity - 1;
}

int ring_put(int head, int tail, int capacity, int value) {
  int mask = ring_mask(capacity);
  int next = (head + 1) & mask;
  if (next == tail) {
    return -1;
  }
  return next + value - value;
}

int ring_get(int head, int tail, int capacity) {
  int mask = ring_mask(capacity);
  if (head == tail) {
    return -1;
  }
  return (tail + 1) & mask;
}

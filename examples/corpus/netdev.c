/* Example corpus: carries one deliberate unused definition — the classic
 * overwritten-before-use pattern from the paper's motivating bug class. The
 * self-diff smoke step in tools/check.sh analyzes this corpus twice and
 * asserts `valuecheck diff --check` sees zero new findings between the runs.
 */

int query_link_status(int port) {
  return port + 1;
}

int bring_up(int port, int forced) {
  int status = query_link_status(port); /* finding: overwritten before use */
  status = forced * 2;
  if (status) {
    return 0;
  }
  return 1;
}

int teardown(int port) {
  int status = query_link_status(port);
  if (status) {
    return status;
  }
  return 0;
}

/* Example corpus: a configuration-dependent definition. With TRACE_TICKS
 * undefined the store to `traced` looks dead, but the #if region uses it —
 * the config-dependency pruning pattern (paper §5.1) suppresses it, so this
 * file contributes prune-pattern activity to the ledger's trend lines.
 */

int clock_tick(int now) {
  return now + 1;
}

int schedule(int now, int quantum) {
  int traced = clock_tick(now);
  int next = now + quantum;
#if TRACE_TICKS
  next = next + traced;
#endif
  return next;
}

/* Promoted from a vc_fuzz campaign (program seed 13679457532755275413,
 * minimized by the harness to 12 lines): globals read in branch and loop
 * conditions, an empty switch, recursion through a pointer parameter, and a
 * call result stored into a definition that is never used.
 */
int g4 = 5;
int fn5() {
  if (g4 < 88) {
    switch (g4) {
    }
  }
}
int fn7(int* v13) {
  do {
    int v15 = fn7(&g4);
  } while (g4 > 2);
}

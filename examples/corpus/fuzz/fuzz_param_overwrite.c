/* Promoted from a vc_fuzz campaign (program seed 3779771651426294207,
 * minimized by the harness to 3 lines): a parameter assigned a fresh value
 * that nothing ever reads, plus a second parameter never touched at all.
 * Locks the smallest shape the injected-fault demo reduces to.
 */
int fn1(int v4, bool v5) {
  v4 = 27;
}

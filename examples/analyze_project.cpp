// End-to-end project analysis: synthesize an NFS-ganesha-profile application
// (multi-file, multi-author history, injected ground truth), run the full
// ValueCheck pipeline, print the report, and dump a CSV like the paper
// artifact's result/<APP>/detected.csv.
//
// Build & run:  ./build/examples/analyze_project [scale]
//   scale: optional population scale factor (default 1.0 = paper scale)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "src/corpus/eval.h"
#include "src/corpus/generator.h"
#include "src/corpus/profile.h"
#include "src/core/analysis.h"

int main(int argc, char** argv) {
  using namespace vc;

  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  ProjectProfile profile = NfsGaneshaProfile();
  if (scale != 1.0) {
    profile = profile.Scaled(scale);
  }

  std::printf("Synthesizing %s-profile application (scale %.2f)...\n", profile.name.c_str(),
              scale);
  GeneratedApp app = GenerateApp(profile);
  Project project = Project::FromRepository(app.repo);
  if (project.diags().HasErrors()) {
    std::fprintf(stderr, "generated code failed to parse:\n%s",
                 project.diags().Render(project.sources()).c_str());
    return 1;
  }
  std::printf("  %d files, %d lines, %d commits, %d authors\n\n",
              project.sources().NumFiles(), project.TotalLines(), app.repo.NumCommits(),
              app.repo.NumAuthors());

  AnalysisReport report = Analysis().Run(project, &app.repo);

  std::printf("Pipeline results (%.3fs):\n", report.analysis_seconds);
  std::printf("  unused definitions (all):        %d\n",
              static_cast<int>(report.raw_candidates.size()));
  std::printf("  cross-scope candidates:          %d\n", report.prune_stats.original);
  std::printf("  pruned: config=%d cursor=%d hints=%d peer=%d\n",
              report.prune_stats.config_dependency, report.prune_stats.cursor,
              report.prune_stats.unused_hints, report.prune_stats.peer_definition);
  std::printf("  reported findings:               %d\n\n",
              static_cast<int>(report.findings.size()));

  // Score against the synthesized ground truth.
  ToolEval eval = EvaluateLocations(app.truth, "ValueCheck", LocationsOf(report));
  std::printf("Against ground truth: %d reported, %d confirmed bugs, %.0f%% false positives\n\n",
              eval.found, eval.real, eval.FpRate() * 100.0);

  // Findings by kind.
  std::map<std::string, int> by_kind;
  for (const UnusedDefCandidate& finding : report.findings) {
    by_kind[CandidateKindName(finding.kind)]++;
  }
  std::printf("Findings by kind:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-20s %d\n", kind.c_str(), count);
  }

  std::printf("\nTop 5 by familiarity ranking:\n");
  for (const UnusedDefCandidate& finding : report.Top(5)) {
    std::printf("  %.2f  %s:%d  %s '%s'\n", finding.familiarity, finding.file.c_str(),
                finding.def_loc.line, finding.function.c_str(), finding.slot_name.c_str());
  }

  const char* csv_path = "nfs_ganesha_detected.csv";
  std::ofstream csv(csv_path);
  csv << report.ToCsv();
  std::printf("\nFull report written to %s\n", csv_path);
  return 0;
}

// Bug-triage workflow: the intended day-to-day use of ValueCheck's ranking.
//
// Generates a MySQL-profile application, runs the pipeline, and walks the
// review queue the way a developer would: top-K findings first, with the DOK
// familiarity explanation for why each one ranks where it does, then the
// precision curve showing how much of the reviewer's time the ranking saves.
//
// Build & run:  ./build/examples/bug_triage [top_k]

#include <cstdio>
#include <cstdlib>

#include "src/corpus/generator.h"
#include "src/corpus/profile.h"
#include "src/core/analysis.h"
#include "src/familiarity/dok_model.h"

int main(int argc, char** argv) {
  using namespace vc;

  int top_k = argc > 1 ? std::atoi(argv[1]) : 15;

  GeneratedApp app = GenerateApp(MysqlProfile());
  Project project = Project::FromRepository(app.repo);
  AnalysisReport report = Analysis().Run(project, &app.repo);

  std::printf("Review queue for %s: %d findings, showing top %d\n\n", app.name.c_str(),
              static_cast<int>(report.findings.size()), top_k);
  std::printf("%-4s %-6s %-28s %-24s %-9s %s\n", "#", "DOK", "location", "developer",
              "verdict", "why it ranks here");

  int rank = 0;
  int confirmed = 0;
  for (const UnusedDefCandidate& finding : report.Top(static_cast<size_t>(top_k))) {
    ++rank;
    const GtSite* site = app.truth.Match(finding.file, finding.def_loc.line);
    bool is_bug = site != nullptr && site->is_real_bug;
    confirmed += is_bug ? 1 : 0;

    const std::string& dev = app.repo.GetAuthor(finding.responsible_author).name;
    DokFeatures features = ComputeDokFeatures(app.repo, finding.responsible_author, finding.file);
    char why[128];
    std::snprintf(why, sizeof(why), "FA=%d DL=%d AC=%d in %s", features.first_authorship ? 1 : 0,
                  features.deliveries, features.acceptances, finding.file.c_str());
    char location[64];
    std::snprintf(location, sizeof(location), "%s:%d (%s)", finding.function.c_str(),
                  finding.def_loc.line, finding.slot_name.c_str());
    std::printf("%-4d %-6.2f %-28s %-24s %-9s %s\n", rank, finding.familiarity, location,
                dev.c_str(), is_bug ? "bug" : "benign", why);
  }
  std::printf("\nTop-%d precision: %.1f%%\n\n", top_k,
              100.0 * confirmed / (rank > 0 ? rank : 1));

  // Confusion matrix over the whole report.
  int tp = 0;
  int fp = 0;
  for (const UnusedDefCandidate& finding : report.findings) {
    const GtSite* site = app.truth.Match(finding.file, finding.def_loc.line);
    if (site != nullptr && site->is_real_bug) {
      ++tp;
    } else {
      ++fp;
    }
  }
  int undetected_bugs = app.truth.CountRealBugs() - tp;
  std::printf("Confusion matrix (vs ground truth):\n");
  std::printf("  reported & real bug (TP):   %d\n", tp);
  std::printf("  reported & benign   (FP):   %d\n", fp);
  std::printf("  real bug, unreported (FN):  %d  (same-author bugs + pruning losses)\n\n",
              undetected_bugs);

  // How much review effort the ranking saves: bugs found per findings read.
  std::printf("Precision at cutoffs: ");
  for (size_t cutoff : {10u, 20u, 40u, 60u, 99u}) {
    int real = 0;
    size_t n = 0;
    for (const UnusedDefCandidate& finding : report.Top(cutoff)) {
      const GtSite* site = app.truth.Match(finding.file, finding.def_loc.line);
      real += (site != nullptr && site->is_real_bug) ? 1 : 0;
      ++n;
    }
    if (n > 0) {
      std::printf("top-%zu=%.0f%% ", n, 100.0 * real / n);
    }
  }
  std::printf("\n");
  return 0;
}

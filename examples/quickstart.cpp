// Quickstart: run the full ValueCheck pipeline on a small two-developer
// project built in memory.
//
// The snippet reproduces the paper's Fig. 8 situation: Alice assigns the
// result of get_permset() to `ret` and checks it; Bob later inserts a second
// assignment, so Alice's definition is silently unused and the check now
// validates the wrong status. ValueCheck detects the cross-scope unused
// definition; a compiler warning or an AST-level checker would not (the later
// `if (ret)` makes the variable look used).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/analysis.h"
#include "src/vcs/repository.h"

int main() {
  using namespace vc;

  // 1. Build a tiny repository with two authors and two commits.
  Repository repo;
  AuthorId alice = repo.AddAuthor("alice");
  AuthorId bob = repo.AddAuthor("bob");

  const char* v1 =
      "int get_permset(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int calc_mask(int mode) {\n"
      "  return mode * 2;\n"
      "}\n"
      "int fsal_acl_posix(int entry, int mode) {\n"
      "  int ret = get_permset(entry);\n"
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return 1;\n"
      "}\n";

  const char* v2 =
      "int get_permset(int entry) {\n"
      "  return entry + 1;\n"
      "}\n"
      "int calc_mask(int mode) {\n"
      "  return mode * 2;\n"
      "}\n"
      "int fsal_acl_posix(int entry, int mode) {\n"
      "  int ret = get_permset(entry);\n"
      "  ret = calc_mask(mode);\n"  // Bob's change: ret's first value is dead
      "  if (ret) {\n"
      "    return 0;\n"
      "  }\n"
      "  return 1;\n"
      "}\n";

  repo.AddCommit(alice, /*timestamp=*/1'500'000'000, "add posix acl support",
                 {{"fsal/acl.c", v1}});
  repo.AddCommit(bob, /*timestamp=*/1'700'000'000, "recompute mask in acl build",
                 {{"fsal/acl.c", v2}});

  // 2. Run the pipeline: detect -> authorship -> prune -> rank.
  AnalysisReport report = Analysis().RunOnRepository(repo);

  // 3. Print the ranked findings.
  std::printf("ValueCheck quickstart\n");
  std::printf("  candidates before authorship filter: %d\n",
              static_cast<int>(report.raw_candidates.size()));
  std::printf("  cross-scope findings after pruning:  %d\n\n",
              static_cast<int>(report.findings.size()));
  for (const UnusedDefCandidate& finding : report.findings) {
    std::printf("  %s:%d  function %s, variable '%s'\n", finding.file.c_str(),
                finding.def_loc.line, finding.function.c_str(), finding.slot_name.c_str());
    std::printf("    kind: %s, cross-scope: %s\n", CandidateKindName(finding.kind),
                finding.cross_scope ? "yes" : "no");
    std::printf("    defined by %s, broken by %s (familiarity %.2f)\n",
                repo.GetAuthor(finding.def_author).name.c_str(),
                repo.GetAuthor(finding.responsible_author).name.c_str(), finding.familiarity);
    for (const SourceLoc& loc : finding.overwriter_locs) {
      std::printf("    overwritten at line %d\n", loc.line);
    }
  }
  return 0;
}

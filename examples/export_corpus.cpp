// Exports a synthesized application — source files, multi-author commit
// history, and ground truth — to disk, so the `valuecheck` CLI (or any other
// tool) can be exercised on a paper-scale corpus:
//
//   ./build/examples/export_corpus nfs out/         # or linux/mysql/openssl
//   ./build/tools/valuecheck --history=out/nfs-ganesha.vchist --top=10
//
// The export contains:
//   <name>.vchist        the full commit history (CLI history mode)
//   src/...              head snapshot of every file (CLI directory mode)
//   ground_truth.csv     every injected site with its labels

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/corpus/generator.h"
#include "src/corpus/profile.h"
#include "src/support/table_writer.h"
#include "src/vcs/history_io.h"

int main(int argc, char** argv) {
  using namespace vc;
  if (argc < 3) {
    std::fprintf(stderr, "usage: export_corpus <linux|nfs|mysql|openssl> <out-dir> [scale]\n");
    return 2;
  }
  std::string which = argv[1];
  std::filesystem::path out_dir = argv[2];
  double scale = argc > 3 ? std::atof(argv[3]) : 1.0;

  ProjectProfile profile;
  if (which == "linux") {
    profile = LinuxProfile();
  } else if (which == "nfs") {
    profile = NfsGaneshaProfile();
  } else if (which == "mysql") {
    profile = MysqlProfile();
  } else if (which == "openssl") {
    profile = OpensslProfile();
  } else {
    std::fprintf(stderr, "unknown profile '%s'\n", which.c_str());
    return 2;
  }
  if (scale != 1.0) {
    profile = profile.Scaled(scale);
  }

  GeneratedApp app = GenerateApp(profile);
  std::filesystem::create_directories(out_dir / "src");

  // 1. History.
  std::string hist_name = app.name;
  for (char& c : hist_name) {
    c = c == ' ' ? '-' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  std::filesystem::path hist_path = out_dir / (hist_name + ".vchist");
  {
    std::ofstream out(hist_path);
    out << SaveHistory(app.repo);
  }

  // 2. Head snapshot.
  int files = 0;
  for (const std::string& path : app.repo.ListFiles()) {
    std::filesystem::path dest = out_dir / "src" / path;
    std::filesystem::create_directories(dest.parent_path());
    std::ofstream out(dest);
    out << app.repo.Head(path).value();
    ++files;
  }

  // 3. Ground truth.
  TableWriter truth({"id", "category", "file", "line", "real_bug", "cross_scope",
                     "expect_pruned", "prune_reason", "component", "severity"});
  for (const GtSite& site : app.truth.sites()) {
    truth.AddRow({std::to_string(site.id), SiteCategoryName(site.category), site.file,
                  std::to_string(site.line), site.is_real_bug ? "yes" : "no",
                  site.expect_cross_scope ? "yes" : "no", site.expect_pruned ? "yes" : "no",
                  PruneReasonName(site.expect_prune_reason), site.component, site.severity});
  }
  truth.WriteCsv((out_dir / "ground_truth.csv").string());

  std::printf("exported %s (scale %.2f):\n", app.name.c_str(), scale);
  std::printf("  %s  (%d commits, %d authors)\n", hist_path.string().c_str(),
              app.repo.NumCommits(), app.repo.NumAuthors());
  std::printf("  %s/src/  (%d files)\n", out_dir.string().c_str(), files);
  std::printf("  %s/ground_truth.csv  (%d sites, %d real bugs)\n",
              out_dir.string().c_str(), static_cast<int>(app.truth.sites().size()),
              app.truth.CountRealBugs());
  std::printf("\ntry:  ./build/tools/valuecheck --history=%s --top=10\n",
              hist_path.string().c_str());
  return 0;
}

# Empty dependencies file for valuecheck.
# This may be replaced when dependencies are built.

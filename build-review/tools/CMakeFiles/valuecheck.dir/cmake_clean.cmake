file(REMOVE_RECURSE
  "CMakeFiles/valuecheck.dir/valuecheck_main.cc.o"
  "CMakeFiles/valuecheck.dir/valuecheck_main.cc.o.d"
  "valuecheck"
  "valuecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/valuecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vc_pointer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vc_pointer.dir/andersen.cc.o"
  "CMakeFiles/vc_pointer.dir/andersen.cc.o.d"
  "CMakeFiles/vc_pointer.dir/flow_sensitive.cc.o"
  "CMakeFiles/vc_pointer.dir/flow_sensitive.cc.o.d"
  "CMakeFiles/vc_pointer.dir/value_flow.cc.o"
  "CMakeFiles/vc_pointer.dir/value_flow.cc.o.d"
  "libvc_pointer.a"
  "libvc_pointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_pointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvc_pointer.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/vc_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/authorship.cc" "src/core/CMakeFiles/vc_core.dir/authorship.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/authorship.cc.o.d"
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/vc_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/detector.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/vc_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/project.cc" "src/core/CMakeFiles/vc_core.dir/project.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/project.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/vc_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/vc_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/ranking.cc.o.d"
  "/root/repo/src/core/report_formats.cc" "src/core/CMakeFiles/vc_core.dir/report_formats.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/report_formats.cc.o.d"
  "/root/repo/src/core/valuecheck.cc" "src/core/CMakeFiles/vc_core.dir/valuecheck.cc.o" "gcc" "src/core/CMakeFiles/vc_core.dir/valuecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/parser/CMakeFiles/vc_parser.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/vc_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dataflow/CMakeFiles/vc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pointer/CMakeFiles/vc_pointer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vcs/CMakeFiles/vc_vcs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/familiarity/CMakeFiles/vc_familiarity.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ast/CMakeFiles/vc_ast.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lexer/CMakeFiles/vc_lexer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

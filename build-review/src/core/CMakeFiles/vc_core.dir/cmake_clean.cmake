file(REMOVE_RECURSE
  "CMakeFiles/vc_core.dir/analysis.cc.o"
  "CMakeFiles/vc_core.dir/analysis.cc.o.d"
  "CMakeFiles/vc_core.dir/authorship.cc.o"
  "CMakeFiles/vc_core.dir/authorship.cc.o.d"
  "CMakeFiles/vc_core.dir/detector.cc.o"
  "CMakeFiles/vc_core.dir/detector.cc.o.d"
  "CMakeFiles/vc_core.dir/incremental.cc.o"
  "CMakeFiles/vc_core.dir/incremental.cc.o.d"
  "CMakeFiles/vc_core.dir/project.cc.o"
  "CMakeFiles/vc_core.dir/project.cc.o.d"
  "CMakeFiles/vc_core.dir/pruning.cc.o"
  "CMakeFiles/vc_core.dir/pruning.cc.o.d"
  "CMakeFiles/vc_core.dir/ranking.cc.o"
  "CMakeFiles/vc_core.dir/ranking.cc.o.d"
  "CMakeFiles/vc_core.dir/report_formats.cc.o"
  "CMakeFiles/vc_core.dir/report_formats.cc.o.d"
  "CMakeFiles/vc_core.dir/valuecheck.cc.o"
  "CMakeFiles/vc_core.dir/valuecheck.cc.o.d"
  "libvc_core.a"
  "libvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for vc_dataflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvc_dataflow.a"
)

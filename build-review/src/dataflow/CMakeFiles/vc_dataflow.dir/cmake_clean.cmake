file(REMOVE_RECURSE
  "CMakeFiles/vc_dataflow.dir/define_sets.cc.o"
  "CMakeFiles/vc_dataflow.dir/define_sets.cc.o.d"
  "CMakeFiles/vc_dataflow.dir/liveness.cc.o"
  "CMakeFiles/vc_dataflow.dir/liveness.cc.o.d"
  "libvc_dataflow.a"
  "libvc_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvc_parser.a"
)

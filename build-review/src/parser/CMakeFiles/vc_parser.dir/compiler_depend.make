# Empty compiler generated dependencies file for vc_parser.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vc_parser.dir/parser.cc.o"
  "CMakeFiles/vc_parser.dir/parser.cc.o.d"
  "libvc_parser.a"
  "libvc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vc_lexer.dir/lexer.cc.o"
  "CMakeFiles/vc_lexer.dir/lexer.cc.o.d"
  "CMakeFiles/vc_lexer.dir/preprocessor.cc.o"
  "CMakeFiles/vc_lexer.dir/preprocessor.cc.o.d"
  "libvc_lexer.a"
  "libvc_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lexer/lexer.cc" "src/lexer/CMakeFiles/vc_lexer.dir/lexer.cc.o" "gcc" "src/lexer/CMakeFiles/vc_lexer.dir/lexer.cc.o.d"
  "/root/repo/src/lexer/preprocessor.cc" "src/lexer/CMakeFiles/vc_lexer.dir/preprocessor.cc.o" "gcc" "src/lexer/CMakeFiles/vc_lexer.dir/preprocessor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

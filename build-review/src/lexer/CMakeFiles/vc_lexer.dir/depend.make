# Empty dependencies file for vc_lexer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvc_lexer.a"
)

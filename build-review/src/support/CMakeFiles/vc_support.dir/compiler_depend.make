# Empty compiler generated dependencies file for vc_support.
# This may be replaced when dependencies are built.

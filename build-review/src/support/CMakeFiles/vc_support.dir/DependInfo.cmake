
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/diagnostics.cc" "src/support/CMakeFiles/vc_support.dir/diagnostics.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/diagnostics.cc.o.d"
  "/root/repo/src/support/json_writer.cc" "src/support/CMakeFiles/vc_support.dir/json_writer.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/json_writer.cc.o.d"
  "/root/repo/src/support/logging.cc" "src/support/CMakeFiles/vc_support.dir/logging.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/logging.cc.o.d"
  "/root/repo/src/support/metrics.cc" "src/support/CMakeFiles/vc_support.dir/metrics.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/metrics.cc.o.d"
  "/root/repo/src/support/regression.cc" "src/support/CMakeFiles/vc_support.dir/regression.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/regression.cc.o.d"
  "/root/repo/src/support/source_manager.cc" "src/support/CMakeFiles/vc_support.dir/source_manager.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/source_manager.cc.o.d"
  "/root/repo/src/support/string_util.cc" "src/support/CMakeFiles/vc_support.dir/string_util.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/string_util.cc.o.d"
  "/root/repo/src/support/table_writer.cc" "src/support/CMakeFiles/vc_support.dir/table_writer.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/table_writer.cc.o.d"
  "/root/repo/src/support/thread_pool.cc" "src/support/CMakeFiles/vc_support.dir/thread_pool.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/thread_pool.cc.o.d"
  "/root/repo/src/support/trace.cc" "src/support/CMakeFiles/vc_support.dir/trace.cc.o" "gcc" "src/support/CMakeFiles/vc_support.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libvc_support.a"
)

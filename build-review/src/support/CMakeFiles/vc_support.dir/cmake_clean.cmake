file(REMOVE_RECURSE
  "CMakeFiles/vc_support.dir/diagnostics.cc.o"
  "CMakeFiles/vc_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/vc_support.dir/json_writer.cc.o"
  "CMakeFiles/vc_support.dir/json_writer.cc.o.d"
  "CMakeFiles/vc_support.dir/logging.cc.o"
  "CMakeFiles/vc_support.dir/logging.cc.o.d"
  "CMakeFiles/vc_support.dir/metrics.cc.o"
  "CMakeFiles/vc_support.dir/metrics.cc.o.d"
  "CMakeFiles/vc_support.dir/regression.cc.o"
  "CMakeFiles/vc_support.dir/regression.cc.o.d"
  "CMakeFiles/vc_support.dir/source_manager.cc.o"
  "CMakeFiles/vc_support.dir/source_manager.cc.o.d"
  "CMakeFiles/vc_support.dir/string_util.cc.o"
  "CMakeFiles/vc_support.dir/string_util.cc.o.d"
  "CMakeFiles/vc_support.dir/table_writer.cc.o"
  "CMakeFiles/vc_support.dir/table_writer.cc.o.d"
  "CMakeFiles/vc_support.dir/thread_pool.cc.o"
  "CMakeFiles/vc_support.dir/thread_pool.cc.o.d"
  "CMakeFiles/vc_support.dir/trace.cc.o"
  "CMakeFiles/vc_support.dir/trace.cc.o.d"
  "libvc_support.a"
  "libvc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

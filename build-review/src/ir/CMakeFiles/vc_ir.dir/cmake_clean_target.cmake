file(REMOVE_RECURSE
  "libvc_ir.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ir.cc" "src/ir/CMakeFiles/vc_ir.dir/ir.cc.o" "gcc" "src/ir/CMakeFiles/vc_ir.dir/ir.cc.o.d"
  "/root/repo/src/ir/ir_builder.cc" "src/ir/CMakeFiles/vc_ir.dir/ir_builder.cc.o" "gcc" "src/ir/CMakeFiles/vc_ir.dir/ir_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/ast/CMakeFiles/vc_ast.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lexer/CMakeFiles/vc_lexer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

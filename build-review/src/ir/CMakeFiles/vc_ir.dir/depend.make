# Empty dependencies file for vc_ir.
# This may be replaced when dependencies are built.

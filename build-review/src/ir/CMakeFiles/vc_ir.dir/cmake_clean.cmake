file(REMOVE_RECURSE
  "CMakeFiles/vc_ir.dir/ir.cc.o"
  "CMakeFiles/vc_ir.dir/ir.cc.o.d"
  "CMakeFiles/vc_ir.dir/ir_builder.cc.o"
  "CMakeFiles/vc_ir.dir/ir_builder.cc.o.d"
  "libvc_ir.a"
  "libvc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("lexer")
subdirs("ast")
subdirs("parser")
subdirs("ir")
subdirs("dataflow")
subdirs("pointer")
subdirs("vcs")
subdirs("familiarity")
subdirs("core")
subdirs("baselines")
subdirs("corpus")

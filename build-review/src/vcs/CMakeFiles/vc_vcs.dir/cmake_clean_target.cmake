file(REMOVE_RECURSE
  "libvc_vcs.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcs/diff.cc" "src/vcs/CMakeFiles/vc_vcs.dir/diff.cc.o" "gcc" "src/vcs/CMakeFiles/vc_vcs.dir/diff.cc.o.d"
  "/root/repo/src/vcs/history_io.cc" "src/vcs/CMakeFiles/vc_vcs.dir/history_io.cc.o" "gcc" "src/vcs/CMakeFiles/vc_vcs.dir/history_io.cc.o.d"
  "/root/repo/src/vcs/repository.cc" "src/vcs/CMakeFiles/vc_vcs.dir/repository.cc.o" "gcc" "src/vcs/CMakeFiles/vc_vcs.dir/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

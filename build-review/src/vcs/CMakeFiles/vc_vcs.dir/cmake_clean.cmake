file(REMOVE_RECURSE
  "CMakeFiles/vc_vcs.dir/diff.cc.o"
  "CMakeFiles/vc_vcs.dir/diff.cc.o.d"
  "CMakeFiles/vc_vcs.dir/history_io.cc.o"
  "CMakeFiles/vc_vcs.dir/history_io.cc.o.d"
  "CMakeFiles/vc_vcs.dir/repository.cc.o"
  "CMakeFiles/vc_vcs.dir/repository.cc.o.d"
  "libvc_vcs.a"
  "libvc_vcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_vcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

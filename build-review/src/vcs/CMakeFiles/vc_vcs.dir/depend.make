# Empty dependencies file for vc_vcs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvc_familiarity.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/familiarity/dok_model.cc" "src/familiarity/CMakeFiles/vc_familiarity.dir/dok_model.cc.o" "gcc" "src/familiarity/CMakeFiles/vc_familiarity.dir/dok_model.cc.o.d"
  "/root/repo/src/familiarity/ea_model.cc" "src/familiarity/CMakeFiles/vc_familiarity.dir/ea_model.cc.o" "gcc" "src/familiarity/CMakeFiles/vc_familiarity.dir/ea_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/vcs/CMakeFiles/vc_vcs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/vc_familiarity.dir/dok_model.cc.o"
  "CMakeFiles/vc_familiarity.dir/dok_model.cc.o.d"
  "CMakeFiles/vc_familiarity.dir/ea_model.cc.o"
  "CMakeFiles/vc_familiarity.dir/ea_model.cc.o.d"
  "libvc_familiarity.a"
  "libvc_familiarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_familiarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vc_familiarity.
# This may be replaced when dependencies are built.

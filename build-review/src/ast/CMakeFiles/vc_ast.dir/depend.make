# Empty dependencies file for vc_ast.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvc_ast.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vc_ast.dir/ast_printer.cc.o"
  "CMakeFiles/vc_ast.dir/ast_printer.cc.o.d"
  "CMakeFiles/vc_ast.dir/type.cc.o"
  "CMakeFiles/vc_ast.dir/type.cc.o.d"
  "CMakeFiles/vc_ast.dir/walk.cc.o"
  "CMakeFiles/vc_ast.dir/walk.cc.o.d"
  "libvc_ast.a"
  "libvc_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast_printer.cc" "src/ast/CMakeFiles/vc_ast.dir/ast_printer.cc.o" "gcc" "src/ast/CMakeFiles/vc_ast.dir/ast_printer.cc.o.d"
  "/root/repo/src/ast/type.cc" "src/ast/CMakeFiles/vc_ast.dir/type.cc.o" "gcc" "src/ast/CMakeFiles/vc_ast.dir/type.cc.o.d"
  "/root/repo/src/ast/walk.cc" "src/ast/CMakeFiles/vc_ast.dir/walk.cc.o" "gcc" "src/ast/CMakeFiles/vc_ast.dir/walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lexer/CMakeFiles/vc_lexer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

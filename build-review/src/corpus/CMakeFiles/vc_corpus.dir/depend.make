# Empty dependencies file for vc_corpus.
# This may be replaced when dependencies are built.

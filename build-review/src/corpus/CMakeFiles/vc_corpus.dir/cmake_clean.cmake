file(REMOVE_RECURSE
  "CMakeFiles/vc_corpus.dir/eval.cc.o"
  "CMakeFiles/vc_corpus.dir/eval.cc.o.d"
  "CMakeFiles/vc_corpus.dir/generator.cc.o"
  "CMakeFiles/vc_corpus.dir/generator.cc.o.d"
  "CMakeFiles/vc_corpus.dir/ground_truth.cc.o"
  "CMakeFiles/vc_corpus.dir/ground_truth.cc.o.d"
  "CMakeFiles/vc_corpus.dir/prelim_study.cc.o"
  "CMakeFiles/vc_corpus.dir/prelim_study.cc.o.d"
  "CMakeFiles/vc_corpus.dir/profile.cc.o"
  "CMakeFiles/vc_corpus.dir/profile.cc.o.d"
  "CMakeFiles/vc_corpus.dir/synthetic_file.cc.o"
  "CMakeFiles/vc_corpus.dir/synthetic_file.cc.o.d"
  "libvc_corpus.a"
  "libvc_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

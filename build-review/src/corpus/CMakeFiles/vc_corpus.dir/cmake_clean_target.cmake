file(REMOVE_RECURSE
  "libvc_corpus.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vc_baselines.dir/clang_unused.cc.o"
  "CMakeFiles/vc_baselines.dir/clang_unused.cc.o.d"
  "CMakeFiles/vc_baselines.dir/coverity_unused.cc.o"
  "CMakeFiles/vc_baselines.dir/coverity_unused.cc.o.d"
  "CMakeFiles/vc_baselines.dir/infer_unused.cc.o"
  "CMakeFiles/vc_baselines.dir/infer_unused.cc.o.d"
  "CMakeFiles/vc_baselines.dir/smatch_unused.cc.o"
  "CMakeFiles/vc_baselines.dir/smatch_unused.cc.o.d"
  "libvc_baselines.a"
  "libvc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

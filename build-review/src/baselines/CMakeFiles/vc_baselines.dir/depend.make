# Empty dependencies file for vc_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvc_baselines.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/clang_unused.cc" "src/baselines/CMakeFiles/vc_baselines.dir/clang_unused.cc.o" "gcc" "src/baselines/CMakeFiles/vc_baselines.dir/clang_unused.cc.o.d"
  "/root/repo/src/baselines/coverity_unused.cc" "src/baselines/CMakeFiles/vc_baselines.dir/coverity_unused.cc.o" "gcc" "src/baselines/CMakeFiles/vc_baselines.dir/coverity_unused.cc.o.d"
  "/root/repo/src/baselines/infer_unused.cc" "src/baselines/CMakeFiles/vc_baselines.dir/infer_unused.cc.o" "gcc" "src/baselines/CMakeFiles/vc_baselines.dir/infer_unused.cc.o.d"
  "/root/repo/src/baselines/smatch_unused.cc" "src/baselines/CMakeFiles/vc_baselines.dir/smatch_unused.cc.o" "gcc" "src/baselines/CMakeFiles/vc_baselines.dir/smatch_unused.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/vc_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ast/CMakeFiles/vc_ast.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/parser/CMakeFiles/vc_parser.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dataflow/CMakeFiles/vc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pointer/CMakeFiles/vc_pointer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/ir/CMakeFiles/vc_ir.dir/DependInfo.cmake"
  "/root/repo/build-review/src/lexer/CMakeFiles/vc_lexer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/familiarity/CMakeFiles/vc_familiarity.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vcs/CMakeFiles/vc_vcs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build-review/tests/support_test[1]_include.cmake")
include("/root/repo/build-review/tests/metrics_test[1]_include.cmake")
include("/root/repo/build-review/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_determinism_test[1]_include.cmake")
include("/root/repo/build-review/tests/lexer_test[1]_include.cmake")
include("/root/repo/build-review/tests/parser_test[1]_include.cmake")
include("/root/repo/build-review/tests/ir_test[1]_include.cmake")
include("/root/repo/build-review/tests/dataflow_test[1]_include.cmake")
include("/root/repo/build-review/tests/pointer_test[1]_include.cmake")
include("/root/repo/build-review/tests/vcs_test[1]_include.cmake")
include("/root/repo/build-review/tests/familiarity_test[1]_include.cmake")
include("/root/repo/build-review/tests/detector_test[1]_include.cmake")
include("/root/repo/build-review/tests/pruning_test[1]_include.cmake")
include("/root/repo/build-review/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-review/tests/incremental_test[1]_include.cmake")
include("/root/repo/build-review/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/prelim_study_test[1]_include.cmake")
include("/root/repo/build-review/tests/switch_dowhile_test[1]_include.cmake")
include("/root/repo/build-review/tests/flow_sensitive_test[1]_include.cmake")
include("/root/repo/build-review/tests/formats_test[1]_include.cmake")
include("/root/repo/build-review/tests/history_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/project_test[1]_include.cmake")
include("/root/repo/build-review/tests/enum_typedef_test[1]_include.cmake")
include("/root/repo/build-review/tests/eval_test[1]_include.cmake")
include("/root/repo/build-review/tests/preprocessor_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/cli_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/project_test.dir/project_test.cc.o"
  "CMakeFiles/project_test.dir/project_test.cc.o.d"
  "project_test"
  "project_test.pdb"
  "project_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

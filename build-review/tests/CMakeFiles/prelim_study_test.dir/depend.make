# Empty dependencies file for prelim_study_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prelim_study_test.dir/prelim_study_test.cc.o"
  "CMakeFiles/prelim_study_test.dir/prelim_study_test.cc.o.d"
  "prelim_study_test"
  "prelim_study_test.pdb"
  "prelim_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prelim_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/preprocessor_property_test.dir/preprocessor_property_test.cc.o"
  "CMakeFiles/preprocessor_property_test.dir/preprocessor_property_test.cc.o.d"
  "preprocessor_property_test"
  "preprocessor_property_test.pdb"
  "preprocessor_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preprocessor_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for preprocessor_property_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/history_io_test.dir/history_io_test.cc.o"
  "CMakeFiles/history_io_test.dir/history_io_test.cc.o.d"
  "history_io_test"
  "history_io_test.pdb"
  "history_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for enum_typedef_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/enum_typedef_test.dir/enum_typedef_test.cc.o"
  "CMakeFiles/enum_typedef_test.dir/enum_typedef_test.cc.o.d"
  "enum_typedef_test"
  "enum_typedef_test.pdb"
  "enum_typedef_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enum_typedef_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/flow_sensitive_test.dir/flow_sensitive_test.cc.o"
  "CMakeFiles/flow_sensitive_test.dir/flow_sensitive_test.cc.o.d"
  "flow_sensitive_test"
  "flow_sensitive_test.pdb"
  "flow_sensitive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_sensitive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for flow_sensitive_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for vcs_test.
# This may be replaced when dependencies are built.

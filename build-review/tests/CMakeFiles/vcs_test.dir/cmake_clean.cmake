file(REMOVE_RECURSE
  "CMakeFiles/vcs_test.dir/vcs_test.cc.o"
  "CMakeFiles/vcs_test.dir/vcs_test.cc.o.d"
  "vcs_test"
  "vcs_test.pdb"
  "vcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

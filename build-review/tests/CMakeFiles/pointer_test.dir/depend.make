# Empty dependencies file for pointer_test.
# This may be replaced when dependencies are built.

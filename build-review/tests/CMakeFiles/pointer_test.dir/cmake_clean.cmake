file(REMOVE_RECURSE
  "CMakeFiles/pointer_test.dir/pointer_test.cc.o"
  "CMakeFiles/pointer_test.dir/pointer_test.cc.o.d"
  "pointer_test"
  "pointer_test.pdb"
  "pointer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/switch_dowhile_test.dir/switch_dowhile_test.cc.o"
  "CMakeFiles/switch_dowhile_test.dir/switch_dowhile_test.cc.o.d"
  "switch_dowhile_test"
  "switch_dowhile_test.pdb"
  "switch_dowhile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_dowhile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for switch_dowhile_test.
# This may be replaced when dependencies are built.

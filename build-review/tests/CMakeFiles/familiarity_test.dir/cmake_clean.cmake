file(REMOVE_RECURSE
  "CMakeFiles/familiarity_test.dir/familiarity_test.cc.o"
  "CMakeFiles/familiarity_test.dir/familiarity_test.cc.o.d"
  "familiarity_test"
  "familiarity_test.pdb"
  "familiarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/familiarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for familiarity_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for analyze_project.
# This may be replaced when dependencies are built.

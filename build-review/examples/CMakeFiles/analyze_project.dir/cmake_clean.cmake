file(REMOVE_RECURSE
  "CMakeFiles/analyze_project.dir/analyze_project.cpp.o"
  "CMakeFiles/analyze_project.dir/analyze_project.cpp.o.d"
  "analyze_project"
  "analyze_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

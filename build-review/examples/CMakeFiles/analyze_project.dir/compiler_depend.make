# Empty compiler generated dependencies file for analyze_project.
# This may be replaced when dependencies are built.

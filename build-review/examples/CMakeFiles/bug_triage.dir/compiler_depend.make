# Empty compiler generated dependencies file for bug_triage.
# This may be replaced when dependencies are built.

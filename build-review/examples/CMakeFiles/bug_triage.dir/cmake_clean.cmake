file(REMOVE_RECURSE
  "CMakeFiles/bug_triage.dir/bug_triage.cpp.o"
  "CMakeFiles/bug_triage.dir/bug_triage.cpp.o.d"
  "bug_triage"
  "bug_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bug_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/incremental_analysis.dir/incremental_analysis.cpp.o"
  "CMakeFiles/incremental_analysis.dir/incremental_analysis.cpp.o.d"
  "incremental_analysis"
  "incremental_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

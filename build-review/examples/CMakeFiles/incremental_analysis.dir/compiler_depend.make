# Empty compiler generated dependencies file for incremental_analysis.
# This may be replaced when dependencies are built.

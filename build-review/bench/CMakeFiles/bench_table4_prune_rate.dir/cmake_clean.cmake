file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_prune_rate.dir/bench_table4_prune_rate.cc.o"
  "CMakeFiles/bench_table4_prune_rate.dir/bench_table4_prune_rate.cc.o.d"
  "bench_table4_prune_rate"
  "bench_table4_prune_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_prune_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table4_prune_rate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_scalability.dir/bench_table7_scalability.cc.o"
  "CMakeFiles/bench_table7_scalability.dir/bench_table7_scalability.cc.o.d"
  "bench_table7_scalability"
  "bench_table7_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stale.dir/bench_ablation_stale.cc.o"
  "CMakeFiles/bench_ablation_stale.dir/bench_ablation_stale.cc.o.d"
  "bench_ablation_stale"
  "bench_ablation_stale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

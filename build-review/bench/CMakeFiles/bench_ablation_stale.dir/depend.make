# Empty dependencies file for bench_ablation_stale.
# This may be replaced when dependencies are built.

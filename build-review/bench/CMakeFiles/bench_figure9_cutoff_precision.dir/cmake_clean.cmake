file(REMOVE_RECURSE
  "CMakeFiles/bench_figure9_cutoff_precision.dir/bench_figure9_cutoff_precision.cc.o"
  "CMakeFiles/bench_figure9_cutoff_precision.dir/bench_figure9_cutoff_precision.cc.o.d"
  "bench_figure9_cutoff_precision"
  "bench_figure9_cutoff_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_cutoff_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

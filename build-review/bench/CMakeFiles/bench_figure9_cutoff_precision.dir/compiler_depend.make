# Empty compiler generated dependencies file for bench_figure9_cutoff_precision.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_figure7_categorization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_categorization.dir/bench_figure7_categorization.cc.o"
  "CMakeFiles/bench_figure7_categorization.dir/bench_figure7_categorization.cc.o.d"
  "bench_figure7_categorization"
  "bench_figure7_categorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_categorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table2_detected_bugs.
# This may be replaced when dependencies are built.

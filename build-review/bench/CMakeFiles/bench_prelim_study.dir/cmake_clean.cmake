file(REMOVE_RECURSE
  "CMakeFiles/bench_prelim_study.dir/bench_prelim_study.cc.o"
  "CMakeFiles/bench_prelim_study.dir/bench_prelim_study.cc.o.d"
  "bench_prelim_study"
  "bench_prelim_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelim_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_prelim_study.
# This may be replaced when dependencies are built.

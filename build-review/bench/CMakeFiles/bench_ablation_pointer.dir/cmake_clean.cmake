file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pointer.dir/bench_ablation_pointer.cc.o"
  "CMakeFiles/bench_ablation_pointer.dir/bench_ablation_pointer.cc.o.d"
  "bench_ablation_pointer"
  "bench_ablation_pointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_pointer.
# This may be replaced when dependencies are built.
